//! Cross-crate integration tests for Theorem 2 (§3): weighted
//! flow-time plus energy under speed scaling with weight-budget
//! rejection.

use online_sched_rejection::prelude::*;
use osr_baselines::energyflow_alone_lower_bound;
use osr_core::energyflow::check_energyflow_dual;
use osr_workload::WeightSpec;

fn weighted_instance(n: usize, m: usize, seed: u64) -> Instance {
    let mut w = FlowWorkload::standard(n, m, seed);
    w.weights = WeightSpec::Uniform { lo: 1.0, hi: 12.0 };
    w.generate(InstanceKind::FlowEnergy)
}

#[test]
fn weight_budget_holds_for_all_eps_and_alpha() {
    let inst = weighted_instance(600, 3, 42);
    let total = inst.total_weight();
    for eps in [0.1, 0.25, 0.5, 1.0] {
        for alpha in [1.5, 2.0, 3.0] {
            let sched = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha)).unwrap();
            let out = sched.run(&inst);
            let report = validate_log(&inst, &out.log, &ValidationConfig::flow_energy());
            assert!(report.is_valid(), "{:?}", report.errors.first());
            let m = Metrics::compute(&inst, &out.log, alpha);
            assert!(
                m.flow.rejected_weight <= eps * total + 1e-9,
                "eps={eps}, alpha={alpha}: {} > {}",
                m.flow.rejected_weight,
                eps * total
            );
        }
    }
}

#[test]
fn objective_behaves_monotonically_in_the_budget() {
    // More rejection freedom can only help this algorithm family on a
    // congested heavy workload (not a theorem — a sanity property of
    // the implementation on this seed; the bound itself is monotone).
    let inst = weighted_instance(500, 2, 7);
    let alpha = 2.5;
    let obj = |eps: f64| {
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha))
            .unwrap()
            .run(&inst);
        Metrics::compute(&inst, &out.log, alpha).weighted_flow_plus_energy()
    };
    let tight = obj(0.05);
    let loose = obj(0.8);
    assert!(
        loose <= tight * 1.5,
        "large budget should not catastrophically lose: {loose} vs {tight}"
    );
}

#[test]
fn speeds_follow_the_gamma_weight_law() {
    let inst = weighted_instance(300, 2, 11);
    let sched = EnergyFlowScheduler::new(EnergyFlowParams::new(0.3, 2.0)).unwrap();
    let gamma = sched.gamma();
    let out = sched.run(&inst);
    // Every recorded speed must be γ·(something)^{1/α} with the
    // "something" at least the job's own weight (its queue contained at
    // least itself at start).
    for (id, e) in out.log.executions() {
        let w = inst.job(id).weight;
        assert!(
            e.speed >= gamma * w.powf(0.5) - 1e-9,
            "{id}: speed {} below the self-weight floor",
            e.speed
        );
    }
}

#[test]
fn dual_audit_passes_end_to_end() {
    let inst = weighted_instance(120, 2, 23);
    for &(eps, alpha) in &[(0.25, 2.0), (0.5, 3.0)] {
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha))
            .unwrap()
            .run(&inst);
        let audit = check_energyflow_dual(&inst, &out, usize::MAX, 40);
        assert!(
            audit.is_feasible(),
            "eps={eps}, alpha={alpha}: {:?}",
            audit.violations.first()
        );
    }
}

#[test]
fn ratio_against_alone_cost_is_moderate() {
    // On stable random workloads the measured ratio (an over-estimate)
    // should sit well below the worst-case curve. Keep slack generous —
    // this guards against regressions, not constants.
    let inst = weighted_instance(800, 4, 99);
    let alpha = 2.0;
    let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.25, alpha))
        .unwrap()
        .run(&inst);
    let m = Metrics::compute(&inst, &out.log, alpha);
    let lb = energyflow_alone_lower_bound(&inst, alpha);
    let ratio = m.weighted_flow_plus_energy() / lb;
    let bound = bounds::energyflow_competitive_bound(0.25, alpha);
    assert!(
        ratio < bound,
        "ratio {ratio} above worst-case bound {bound}?!"
    );
}

#[test]
fn rejection_rule_only_fires_against_running_jobs() {
    let inst = weighted_instance(400, 2, 55);
    let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.15, 2.0))
        .unwrap()
        .run(&inst);
    for (_, rej) in out.log.rejections() {
        assert!(
            rej.partial.is_some(),
            "§3 rejection always interrupts a running job"
        );
    }
}
