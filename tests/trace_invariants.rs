//! Deep behavioural tests: replay the §2 scheduler's decision trace and
//! verify the rejection rules fired *exactly* as the paper specifies —
//! not just that budgets hold, but that every individual rejection has
//! the right cause, counter value and victim.

use online_sched_rejection::prelude::*;
use osr_core::Thresholds;
use osr_model::RejectReason;
use osr_sim::DecisionEvent;
use osr_workload::{ArrivalSpec, SizeSpec};

fn traced_run(inst: &Instance, eps: f64) -> (osr_core::FlowOutcome, Thresholds) {
    let sched = FlowScheduler::with_eps(eps).unwrap();
    let th = sched.thresholds();
    (sched.run(inst), th)
}

fn stress_instance(seed: u64) -> Instance {
    let mut w = FlowWorkload::standard(500, 3, seed);
    w.arrivals = ArrivalSpec::Bursty {
        burst: 30,
        within: 0.02,
        gap: 8.0,
    };
    w.sizes = SizeSpec::Bimodal {
        short: 1.0,
        long: 60.0,
        p_long: 0.1,
    };
    w.generate(InstanceKind::FlowTime)
}

/// Rule 1: a job rejected while running must have seen exactly `⌈1/ε⌉`
/// dispatches to its machine strictly inside its execution window.
#[test]
fn rule1_rejections_fire_at_exactly_the_threshold() {
    let inst = stress_instance(7);
    let (out, th) = traced_run(&inst, 0.25);
    let events = out.trace.events();

    let mut checked = 0;
    for e in events {
        let DecisionEvent::Reject {
            time,
            job,
            machine,
            reason,
            counter,
        } = e
        else {
            continue;
        };
        if *reason != RejectReason::RuleOne {
            continue;
        }
        assert_eq!(
            *counter, th.rule1_at as f64,
            "recorded counter must equal ⌈1/ε⌉"
        );
        // Find the victim's start on that machine.
        let start = events
            .iter()
            .find_map(|ev| match ev {
                DecisionEvent::Start {
                    time: t,
                    job: j,
                    machine: m,
                    ..
                } if j == job && m == machine => Some(*t),
                _ => None,
            })
            .expect("rule-1 victim must have started");
        // Count dispatches to that machine during (start, time].
        let dispatched = events
            .iter()
            .filter(|ev| match ev {
                DecisionEvent::Dispatch {
                    time: t,
                    machine: m,
                    ..
                } => m == machine && *t > start && *t <= *time,
                _ => false,
            })
            .count() as u64;
        assert_eq!(
            dispatched, th.rule1_at,
            "{job}: saw {dispatched} dispatches during its run, threshold {}",
            th.rule1_at
        );
        checked += 1;
    }
    assert!(checked > 0, "workload must trigger Rule 1 rejections");
}

/// Rule 2: rejections occur exactly every `1 + ⌈1/ε⌉` dispatches per
/// machine (counter resets on firing), and the victim is never running.
#[test]
fn rule2_cadence_matches_the_counter_semantics() {
    let inst = stress_instance(11);
    let (out, th) = traced_run(&inst, 0.25);
    let m = inst.machines();

    let mut checked = 0;
    for mi in 0..m {
        // Replay this machine's dispatch/reject stream.
        let mut c = 0u64;
        for e in out.trace.events() {
            match e {
                DecisionEvent::Dispatch { machine, .. } if machine.idx() == mi => {
                    c += 1;
                }
                DecisionEvent::Reject {
                    machine,
                    reason,
                    counter,
                    ..
                } if machine.idx() == mi && *reason == RejectReason::RuleTwo => {
                    assert_eq!(
                        c, th.rule2_at,
                        "m{mi}: Rule 2 fired after {c} dispatches, expected {}",
                        th.rule2_at
                    );
                    assert_eq!(*counter, th.rule2_at as f64);
                    c = 0;
                    checked += 1;
                }
                _ => {}
            }
        }
        // Between firings the counter never exceeds the threshold.
        assert!(c < th.rule2_at, "m{mi}: counter {c} left above threshold");
    }
    assert!(checked > 0, "workload must trigger Rule 2 rejections");
}

/// Rule 2 victims are the largest pending job at the firing instant:
/// no job that is still pending at that moment on that machine may have
/// a strictly larger processing time (ties broken by release/id).
#[test]
fn rule2_victim_is_the_largest_pending() {
    let inst = stress_instance(13);
    let (out, _) = traced_run(&inst, 0.25);
    let events = out.trace.events();

    // Pending reconstruction: dispatched, not started, not completed,
    // not rejected, at a given event index, per machine.
    let mut checked = 0;
    for (k, e) in events.iter().enumerate() {
        let DecisionEvent::Reject {
            job,
            machine,
            reason,
            ..
        } = e
        else {
            continue;
        };
        if *reason != RejectReason::RuleTwo {
            continue;
        }
        let mut pending: Vec<JobId> = Vec::new();
        for prev in &events[..k] {
            match prev {
                DecisionEvent::Dispatch {
                    job: j, machine: m, ..
                } if m == machine => {
                    pending.push(*j);
                }
                DecisionEvent::Start {
                    job: j, machine: m, ..
                } if m == machine => {
                    pending.retain(|x| x != j);
                }
                DecisionEvent::Reject {
                    job: j, machine: m, ..
                } if m == machine => {
                    pending.retain(|x| x != j);
                }
                _ => {}
            }
        }
        assert!(pending.contains(job), "victim {job} must be pending");
        let p_victim = inst.job(*job).size_on(*machine);
        for other in &pending {
            let p_other = inst.job(*other).size_on(*machine);
            assert!(
                p_other <= p_victim + 1e-9,
                "{other} (p={p_other}) was pending and larger than victim {job} (p={p_victim})"
            );
        }
        checked += 1;
    }
    assert!(checked > 0);
}

/// Work conservation: every Start happens either at the job's own
/// dispatch instant (idle machine) or at a completion/rejection instant
/// on the same machine — machines never sit idle with pending work.
#[test]
fn starts_are_work_conserving() {
    let inst = stress_instance(17);
    let (out, _) = traced_run(&inst, 0.3);
    let events = out.trace.events();

    for e in events {
        let DecisionEvent::Start {
            time, job, machine, ..
        } = e
        else {
            continue;
        };
        let at_own_dispatch = events.iter().any(|ev| {
            matches!(ev, DecisionEvent::Dispatch { time: t, job: j, .. }
                if j == job && (t - time).abs() < 1e-9)
        });
        let at_machine_release = events.iter().any(|ev| match ev {
            DecisionEvent::Complete {
                time: t,
                machine: m,
                ..
            } => m == machine && (t - time).abs() < 1e-9,
            DecisionEvent::Reject {
                time: t,
                machine: m,
                reason,
                ..
            } => m == machine && *reason == RejectReason::RuleOne && (t - time).abs() < 1e-9,
            _ => false,
        });
        assert!(
            at_own_dispatch || at_machine_release,
            "{job} started at {time} with no releasing event"
        );
    }
}

/// The dispatch-time λ recorded in the trace matches λ_j / (ε/(1+ε))
/// stored in the dual record — the two bookkeeping paths agree.
#[test]
fn trace_lambda_agrees_with_dual_lambda() {
    let inst = stress_instance(19);
    let eps = 0.4;
    let (out, th) = traced_run(&inst, eps);
    for e in out.trace.events() {
        if let DecisionEvent::Dispatch { job, lambda, .. } = e {
            let expected = th.lambda_scale() * lambda;
            let stored = out.dual.lambda[job.idx()];
            assert!(
                (expected - stored).abs() <= 1e-9 * (1.0 + stored.abs()),
                "{job}: trace λ {lambda} vs dual λ {stored}"
            );
        }
    }
}
