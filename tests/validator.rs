//! Integration tests of the independent validation layer: corruptions
//! of *real* scheduler output must be caught. This is what makes every
//! experiment number trustworthy — metrics are only computed on logs
//! that pass these checks.

use online_sched_rejection::prelude::*;
use osr_model::{Execution, PartialRun, RejectReason, Rejection};

fn real_log() -> (Instance, osr_model::FinishedLog) {
    let inst = FlowWorkload::standard(60, 2, 3).generate(InstanceKind::FlowTime);
    let out = FlowScheduler::with_eps(0.3).unwrap().run(&inst);
    (inst, out.log)
}

/// Rebuilds a log with one job's fate replaced.
fn with_fate(
    inst: &Instance,
    log: &osr_model::FinishedLog,
    victim: JobId,
    fate: osr_model::JobFate,
) -> osr_model::FinishedLog {
    let mut new = ScheduleLog::new(inst.machines(), inst.len());
    for (id, f) in log.iter() {
        let f = if id == victim { fate } else { *f };
        match f {
            osr_model::JobFate::Completed(e) => new.complete(id, e),
            osr_model::JobFate::Rejected(r) => new.reject(id, r),
        }
    }
    new.finish().unwrap()
}

#[test]
fn clean_log_validates() {
    let (inst, log) = real_log();
    let report = validate_log(&inst, &log, &ValidationConfig::flow_time());
    assert!(report.is_valid());
    assert_eq!(report.completed + report.rejected, inst.len());
}

#[test]
fn early_start_corruption_caught() {
    let (inst, log) = real_log();
    let (victim, exec) = log.executions().next().map(|(i, e)| (i, *e)).unwrap();
    let bad = Execution {
        start: inst.job(victim).release - 1.0,
        ..exec
    };
    let corrupted = with_fate(&inst, &log, victim, osr_model::JobFate::Completed(bad));
    // Shift completion to keep the volume plausible — the release check
    // must fire on its own.
    let report = validate_log(&inst, &corrupted, &ValidationConfig::flow_time());
    assert!(!report.is_valid());
}

#[test]
fn shortened_execution_caught() {
    let (inst, log) = real_log();
    let (victim, exec) = log.executions().next().map(|(i, e)| (i, *e)).unwrap();
    let bad = Execution {
        completion: exec.completion - 0.5 * exec.duration(),
        ..exec
    };
    let corrupted = with_fate(&inst, &log, victim, osr_model::JobFate::Completed(bad));
    let report = validate_log(&inst, &corrupted, &ValidationConfig::flow_time());
    assert!(report.errors.iter().any(|e| e.message.contains("volume")));
}

#[test]
fn teleported_machine_caught() {
    let (inst, log) = real_log();
    let (victim, exec) = log.executions().next().map(|(i, e)| (i, *e)).unwrap();
    let other = MachineId((exec.machine.0 + 1) % inst.machines() as u32);
    // Moving to another machine generally breaks volume conservation
    // (unrelated sizes) and may overlap — either way it must not pass.
    let bad = Execution {
        machine: other,
        ..exec
    };
    let corrupted = with_fate(&inst, &log, victim, osr_model::JobFate::Completed(bad));
    let report = validate_log(&inst, &corrupted, &ValidationConfig::flow_time());
    assert!(!report.is_valid());
}

#[test]
fn phantom_rejection_with_bad_partial_caught() {
    let (inst, log) = real_log();
    let (victim, exec) = log.executions().next().map(|(i, e)| (i, *e)).unwrap();
    let bad = Rejection {
        time: exec.start + 0.1,
        reason: RejectReason::RuleOne,
        partial: Some(PartialRun {
            machine: exec.machine,
            start: exec.start,
            end: exec.start + 0.2, // ends after the claimed rejection
            speed: 1.0,
        }),
    };
    let corrupted = with_fate(&inst, &log, victim, osr_model::JobFate::Rejected(bad));
    let report = validate_log(&inst, &corrupted, &ValidationConfig::flow_time());
    assert!(report
        .errors
        .iter()
        .any(|e| e.message.contains("non-preemption")));
}

#[test]
fn speed_forgery_caught_in_unit_speed_mode() {
    let (inst, log) = real_log();
    let (victim, exec) = log.executions().next().map(|(i, e)| (i, *e)).unwrap();
    // Double speed, halve duration: volume conserves, but §2 demands
    // unit speeds.
    let bad = Execution {
        completion: exec.start + exec.duration() / 2.0,
        speed: 2.0,
        ..exec
    };
    let corrupted = with_fate(&inst, &log, victim, osr_model::JobFate::Completed(bad));
    let report = validate_log(&inst, &corrupted, &ValidationConfig::flow_time());
    assert!(report
        .errors
        .iter()
        .any(|e| e.message.contains("unit speed")));
}

#[test]
fn energy_rejections_rejected_by_config() {
    let inst = EnergyWorkload::standard(30, 1, 9).generate();
    let out = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
        .unwrap()
        .run(&inst);
    // Forge a rejection into the (rejection-free) §4 log.
    let victim = JobId(0);
    let mut new = ScheduleLog::new(inst.machines(), inst.len());
    for (id, f) in out.log.iter() {
        if id == victim {
            new.reject(
                id,
                Rejection {
                    time: inst.job(id).release,
                    reason: RejectReason::Other,
                    partial: None,
                },
            );
        } else {
            match f {
                osr_model::JobFate::Completed(e) => new.complete(id, *e),
                osr_model::JobFate::Rejected(r) => new.reject(id, *r),
            }
        }
    }
    let corrupted = new.finish().unwrap();
    let report = validate_log(&inst, &corrupted, &ValidationConfig::energy());
    assert!(report
        .errors
        .iter()
        .any(|e| e.message.contains("forbidden")));
}
