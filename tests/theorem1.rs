//! Cross-crate integration tests for Theorem 1 (§2): the flow-time
//! algorithm's guarantees hold end-to-end — generated workload →
//! scheduler → independent validator → metrics → certified bounds.

use online_sched_rejection::prelude::*;
use osr_core::flowtime::check_dual_feasibility;
use osr_workload::{ArrivalSpec, MachineSpec, SizeSpec};

fn run_and_validate(inst: &Instance, eps: f64) -> (osr_core::FlowOutcome, Metrics) {
    let out = FlowScheduler::with_eps(eps).unwrap().run(inst);
    let report = validate_log(inst, &out.log, &ValidationConfig::flow_time());
    assert!(report.is_valid(), "eps={eps}: {:?}", report.errors.first());
    let m = Metrics::compute(inst, &out.log, 2.0);
    (out, m)
}

#[test]
fn rejection_budget_holds_across_workload_shapes() {
    let shapes: Vec<(&str, FlowWorkload)> = vec![
        ("standard", FlowWorkload::standard(800, 4, 1)),
        ("all-at-once", {
            let mut w = FlowWorkload::standard(400, 2, 2);
            w.arrivals = ArrivalSpec::AllAtOnce;
            w
        }),
        ("restricted", {
            let mut w = FlowWorkload::standard(600, 6, 3);
            w.machine_model = MachineSpec::Restricted { avg_eligible: 2.0 };
            w
        }),
        ("heavy-tail", {
            let mut w = FlowWorkload::standard(600, 3, 4);
            w.sizes = SizeSpec::BoundedPareto {
                shape: 1.1,
                lo: 1.0,
                hi: 500.0,
            };
            w
        }),
    ];
    for (name, spec) in shapes {
        let inst = spec.generate(InstanceKind::FlowTime);
        for eps in [0.1, 0.3, 0.7, 1.0] {
            let (_, m) = run_and_validate(&inst, eps);
            let budget = bounds::flowtime_rejection_budget(eps);
            assert!(
                m.flow.rejected_fraction() <= budget + 1e-9,
                "{name}/eps={eps}: {} > {budget}",
                m.flow.rejected_fraction()
            );
        }
    }
}

#[test]
fn certified_ratio_below_theorem_bound_on_standard_workloads() {
    for seed in [10u64, 20, 30] {
        let inst = FlowWorkload::standard(1000, 4, seed).generate(InstanceKind::FlowTime);
        for eps in [0.2, 0.5] {
            let (out, m) = run_and_validate(&inst, eps);
            let lb = flow_lower_bound(&inst, Some(out.dual.objective()));
            let ratio = m.flow.flow_all / lb.value;
            let bound = bounds::flowtime_competitive_bound(eps);
            assert!(
                ratio <= bound,
                "seed={seed}, eps={eps}: certified ratio {ratio} above bound {bound}"
            );
        }
    }
}

#[test]
fn dual_is_feasible_end_to_end() {
    let inst = FlowWorkload::standard(300, 3, 77).generate(InstanceKind::FlowTime);
    for eps in [0.25, 1.0] {
        let (out, _) = run_and_validate(&inst, eps);
        let audit = check_dual_feasibility(&inst, &out.dual, usize::MAX);
        assert!(
            audit.is_feasible(),
            "eps={eps}: {:?}",
            audit.violations.first()
        );
        assert!(audit.min_margin >= -1e-7);
    }
}

#[test]
fn deterministic_across_runs_and_backends() {
    let inst = FlowWorkload::standard(500, 3, 5).generate(InstanceKind::FlowTime);
    let a = FlowScheduler::with_eps(0.3).unwrap().run(&inst);
    let b = FlowScheduler::with_eps(0.3).unwrap().run(&inst);
    assert_eq!(a.log, b.log, "same input must give the same schedule");

    let mut pn = osr_core::FlowParams::new(0.3);
    pn.backend = QueueBackend::Naive;
    let c = FlowScheduler::new(pn).unwrap().run(&inst);
    assert_eq!(a.log, c.log, "backends must agree exactly");
}

#[test]
fn io_roundtrip_preserves_schedules() {
    // Serialize the instance, parse it back, and verify the scheduler
    // produces the identical schedule — the I/O layer is faithful.
    let inst = FlowWorkload::standard(200, 2, 8).generate(InstanceKind::FlowTime);
    let text = osr_model::io::instance_to_string(&inst);
    let back = osr_model::io::instance_from_str(&text).unwrap();
    assert_eq!(inst, back);
    let a = FlowScheduler::with_eps(0.4).unwrap().run(&inst);
    let b = FlowScheduler::with_eps(0.4).unwrap().run(&back);
    assert_eq!(a.log, b.log);
}

#[test]
fn exact_opt_confirms_the_bound_on_tiny_instances() {
    use osr_baselines::optimal_flow;
    for seed in 0..8u64 {
        let mut w = FlowWorkload::standard(7, 2, 500 + seed);
        w.sizes = SizeSpec::Uniform { lo: 1.0, hi: 9.0 };
        let inst = w.generate(InstanceKind::FlowTime);
        let opt = optimal_flow(&inst);
        for eps in [0.5, 1.0] {
            let (_, m) = run_and_validate(&inst, eps);
            let bound = bounds::flowtime_competitive_bound(eps);
            assert!(
                m.flow.flow_all <= bound * opt + 1e-9,
                "seed={seed}, eps={eps}: {} > {bound}×{opt}",
                m.flow.flow_all
            );
        }
    }
}

#[test]
fn rejected_jobs_have_consistent_records() {
    let mut w = FlowWorkload::standard(500, 2, 13);
    w.sizes = SizeSpec::Bimodal {
        short: 1.0,
        long: 200.0,
        p_long: 0.1,
    };
    let inst = w.generate(InstanceKind::FlowTime);
    let (out, m) = run_and_validate(&inst, 0.2);
    assert!(
        m.flow.rejected > 0,
        "this workload should trigger rejections"
    );
    for (id, rej) in out.log.rejections() {
        let job = inst.job(id);
        assert!(rej.time >= job.release);
        match rej.reason {
            osr_model::RejectReason::RuleOne => {
                let p = rej.partial.expect("Rule 1 interrupts a running job");
                assert!(p.end > p.start, "{id}: empty partial run");
            }
            osr_model::RejectReason::RuleTwo => {
                assert!(
                    rej.partial.is_none(),
                    "{id}: Rule 2 rejects pending jobs only"
                );
            }
            other => panic!("unexpected reason {other}"),
        }
    }
}

#[test]
fn empty_and_singleton_instances_handled() {
    // Zero jobs: every scheduler completes trivially.
    let empty = InstanceBuilder::new(2, InstanceKind::FlowTime)
        .build()
        .unwrap();
    let out = FlowScheduler::with_eps(0.5).unwrap().run(&empty);
    assert_eq!(out.log.len(), 0);
    assert_eq!(out.dual.objective(), 0.0);

    // One job: no rejection possible under any eps (thresholds ≥ 1
    // dispatch beyond the running job).
    let one = InstanceBuilder::new(1, InstanceKind::FlowTime)
        .job(0.0, vec![5.0])
        .build()
        .unwrap();
    for eps in [0.1, 1.0] {
        let out = FlowScheduler::with_eps(eps).unwrap().run(&one);
        assert_eq!(out.log.rejected_count(), 0, "eps={eps}");
    }
}
