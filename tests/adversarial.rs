//! Cross-crate integration tests for the lower-bound constructions
//! (Lemmas 1 and 2): the adversaries actually hurt the policies they
//! target, and the paper's algorithm escapes Lemma 1.

use online_sched_rejection::prelude::*;
use osr_core::energymin::EnergyMinOnline;
use osr_workload::adversarial::{
    lemma1_adversary_flow, lemma1_big_jobs, lemma1_full_instance, lemma2_run, long_job_trap,
};

fn immediate_ratio(eps: f64, l: f64) -> (f64, f64) {
    let imm = ImmediateRejectScheduler::above_mean(eps, 3.0);
    let phase1 = lemma1_big_jobs(eps, l);
    let (log1, _) = imm.run(&phase1);
    let first_start = log1
        .executions()
        .map(|(_, e)| e.start)
        .fold(f64::INFINITY, f64::min);
    let full = lemma1_full_instance(eps, l, first_start);
    let adv = lemma1_adversary_flow(eps, l, first_start);

    let (imm_log, _) = imm.run(&full);
    let report = validate_log(&full, &imm_log, &ValidationConfig::flow_time());
    assert!(report.is_valid());
    let imm_m = Metrics::compute(&full, &imm_log, 2.0);

    let spaa = FlowScheduler::with_eps(eps).unwrap().run(&full);
    let spaa_m = Metrics::compute(&full, &spaa.log, 2.0);

    (imm_m.flow.flow_all / adv, spaa_m.flow.flow_all / adv)
}

#[test]
fn lemma1_ratio_grows_linearly_in_sqrt_delta() {
    let (imm_small, spaa_small) = immediate_ratio(0.5, 8.0);
    let (imm_large, spaa_large) = immediate_ratio(0.5, 32.0);
    // Immediate rejection: ratio scales ~linearly with L (=·√Δ).
    assert!(
        imm_large >= imm_small * 3.0,
        "expected ~4x growth, got {imm_small} → {imm_large}"
    );
    // The SPAA'18 algorithm stays bounded (no growth beyond noise).
    assert!(
        spaa_large <= spaa_small * 2.0 + 0.5,
        "spaa ratio should stay flat: {spaa_small} → {spaa_large}"
    );
}

#[test]
fn long_job_trap_separates_rejection_from_greedy() {
    let inst = long_job_trap(100.0, 200, 0.5);
    let spaa = FlowScheduler::with_eps(0.2).unwrap().run(&inst);
    let spaa_flow = Metrics::compute(&inst, &spaa.log, 2.0).flow.flow_all;
    let (fifo_log, _) = GreedyScheduler::ect_fifo().run(&inst);
    let fifo_flow = Metrics::compute(&inst, &fifo_log, 2.0).flow.flow_served;
    assert!(
        spaa_flow * 5.0 < fifo_flow,
        "rejection must win big on the trap: {spaa_flow} vs {fifo_flow}"
    );
}

#[test]
fn lemma2_ratio_grows_with_alpha() {
    let ratio = |alpha: f64| {
        let mut online = EnergyMinOnline::new(EnergyMinParams::new(alpha), 1).unwrap();
        let run = lemma2_run(alpha, |job| {
            let a = online.assign(job);
            (a.start, a.completion)
        });
        online.total_energy() / run.adversary_energy
    };
    let r3 = ratio(3.0);
    let r6 = ratio(6.0);
    assert!(
        r6 > r3 * 2.0,
        "adversary should bite harder as alpha grows: {r3} → {r6}"
    );
    assert!(r6 > 1.0, "the adversary must actually beat the algorithm");
    // And the algorithm never exceeds its own guarantee.
    assert!(r6 <= bounds::energymin_competitive_bound(6.0));
}

#[test]
fn lemma2_jobs_replay_as_a_valid_instance() {
    let mut online = EnergyMinOnline::new(EnergyMinParams::new(3.0), 1).unwrap();
    let run = lemma2_run(3.0, |job| {
        let a = online.assign(job);
        (a.start, a.completion)
    });
    let inst = run.instance();
    // Replaying the reconstructed instance through the batch scheduler
    // must produce a valid (deadline-feasible) schedule.
    let out = EnergyMinScheduler::new(EnergyMinParams::new(3.0))
        .unwrap()
        .run(&inst);
    let report = validate_log(&inst, &out.log, &ValidationConfig::energy());
    assert!(report.is_valid(), "{:?}", report.errors.first());
}
