//! Cross-crate integration tests for Theorem 3 (§4): deadline-feasible
//! energy minimization via the configuration-LP greedy.

use online_sched_rejection::prelude::*;
use osr_baselines::energy_lower_bound;
use osr_core::energymin::per_job_energy_lower_bound;

#[test]
fn deadlines_met_on_every_slack_regime() {
    for (min_slack, max_slack) in [(1.05, 1.3), (1.5, 2.5), (3.0, 6.0)] {
        let mut w = EnergyWorkload::standard(150, 2, 17);
        w.min_slack = min_slack;
        w.max_slack = max_slack;
        let inst = w.generate();
        for alpha in [1.5, 2.0, 3.0] {
            let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
                .unwrap()
                .run(&inst);
            let report = validate_log(&inst, &out.log, &ValidationConfig::energy());
            assert!(
                report.is_valid(),
                "slack [{min_slack},{max_slack}], alpha={alpha}: {:?}",
                report.errors.first()
            );
        }
    }
}

#[test]
fn energy_within_alpha_alpha_of_yds_on_single_machine() {
    let inst = EnergyWorkload::standard(100, 1, 31).generate();
    for alpha in [2.0, 3.0] {
        let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
            .unwrap()
            .run(&inst);
        let lb = yds_energy(&inst, alpha);
        assert!(lb > 0.0);
        let ratio = out.total_energy / lb;
        let bound = bounds::energymin_competitive_bound(alpha);
        assert!(
            ratio <= bound + 1e-9,
            "alpha={alpha}: ratio {ratio} above alpha^alpha {bound}"
        );
        assert!(ratio >= 1.0 - 1e-9, "cannot beat the preemptive optimum");
    }
}

#[test]
fn certified_dual_bound_is_consistent() {
    let inst = EnergyWorkload::standard(120, 2, 41).generate();
    let alpha = 2.0;
    let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
        .unwrap()
        .run(&inst);
    // Dual objective identity and bound direction.
    let lb = out.certified_lower_bound();
    assert!((out.dual_objective() - lb).abs() < 1e-6 * (1.0 + lb));
    assert!(lb <= out.total_energy + 1e-9);
    // And the per-job bound is a valid, independent lower bound that
    // the greedy's energy must respect.
    let per_job = per_job_energy_lower_bound(&inst, alpha);
    assert!(out.total_energy >= per_job - 1e-9);
}

#[test]
fn greedy_beats_avr_or_close_on_random_workloads() {
    // AVR fixes start=release, speed=density; the greedy optimizes both
    // — it should never lose by much and usually wins.
    let inst = EnergyWorkload::standard(200, 2, 53).generate();
    let alpha = 3.0;
    let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
        .unwrap()
        .run(&inst);
    let (_, _, avr) = AvrScheduler { alpha }.run(&inst);
    assert!(
        out.total_energy <= avr * 1.1,
        "greedy {} much worse than AVR {avr}",
        out.total_energy
    );
}

#[test]
fn marginals_telescope_to_total_energy() {
    let inst = EnergyWorkload::standard(80, 3, 67).generate();
    let out = EnergyMinScheduler::new(EnergyMinParams::new(2.5))
        .unwrap()
        .run(&inst);
    let marg_sum: f64 = out.assignments.iter().map(|a| a.marginal).sum();
    assert!(
        (marg_sum - out.total_energy).abs() < 1e-6 * (1.0 + out.total_energy),
        "marginal telescope broken: {marg_sum} vs {}",
        out.total_energy
    );
}

#[test]
fn multi_machine_energy_within_alpha_alpha_of_pooled_bound() {
    let inst = EnergyWorkload::standard(120, 3, 83).generate();
    for alpha in [2.0, 3.0] {
        let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
            .unwrap()
            .run(&inst);
        let lb = energy_lower_bound(&inst, alpha);
        assert!(lb > 0.0);
        let ratio = out.total_energy / lb;
        let bound = bounds::energymin_competitive_bound(alpha);
        assert!(
            ratio <= bound + 1e-9,
            "alpha={alpha}, m=3: ratio {ratio} above alpha^alpha {bound}"
        );
    }
}

#[test]
fn deterministic_assignments() {
    let inst = EnergyWorkload::standard(100, 2, 71).generate();
    let a = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
        .unwrap()
        .run(&inst);
    let b = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
        .unwrap()
        .run(&inst);
    assert_eq!(a.assignments, b.assignments);
}
