//! Pruned-vs-linear dispatch equivalence: the tournament-index argmin
//! (`DispatchIndex::Pruned`) must be **bit-identical** to the linear
//! scan on arbitrary instances — machine choices, λ values, schedules,
//! and dual variables — with the lowest-index tie-break locked.
//!
//! The generated instances are deliberately **tie-heavy**: machine
//! counts at or above `PRUNED_MIN_MACHINES` (so the index actually
//! engages), sizes drawn from a tiny value set, and a biased coin that
//! makes whole jobs identical across machines — the regime where an
//! argmin with a sloppy tie-break would diverge immediately.
//!
//! A second generator family produces **restricted and rack-affinity**
//! instances — sparse eligibility rows, whole racks of `∞`, and a
//! fraction of everywhere-ineligible jobs — exactly the workloads the
//! mask-guided tournament descent (PR 4) changes the search path on,
//! so pruned-vs-linear bit-identity stays locked where it matters
//! most.

//! PR 9 extends every generator pair to straddle the **kernel** toggle
//! too: the pruned side runs the chunked `[f64;4]` hot-loop kernels,
//! the linear side the scalar oracle, so a tie-break or summation
//! regression in either layer breaks bit-identity here.

use online_sched_rejection::prelude::*;
use osr_core::{DispatchIndex, KernelMode, PRUNED_MIN_MACHINES};
use osr_model::RejectReason;
use proptest::prelude::*;

/// A tie-heavy flow-time instance: m ≥ PRUNED_MIN_MACHINES machines,
/// sizes from {1, 2, 3} (half the jobs identical on every machine).
fn tie_heavy_instance() -> impl Strategy<Value = Instance> {
    (8usize..=24, 20usize..=160, any::<u64>()).prop_map(|(m, n, seed)| {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut b = InstanceBuilder::new(m, InstanceKind::FlowTime);
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 3) as f64 / 2.0; // frequent identical releases
            let base = 1.0 + (next() % 3) as f64;
            let identical = next() % 2 == 0;
            let sizes: Vec<f64> = (0..m)
                .map(|_| {
                    if identical {
                        base
                    } else if next() % 7 == 0 {
                        f64::INFINITY // restricted assignment
                    } else {
                        1.0 + (next() % 3) as f64
                    }
                })
                .collect();
            // Guarantee at least one finite machine per job.
            let mut sizes = sizes;
            if sizes.iter().all(|p| !p.is_finite()) {
                sizes[0] = base;
            }
            b = b.job(t, sizes);
        }
        b.build().unwrap()
    })
}

/// A restricted/rack-affinity instance: sparse eligibility rows with a
/// ~1/8 share of **everywhere-ineligible** jobs. Even seeds build
/// round-robin affinity racks (eligible iff `i % groups == rack`, so
/// whole subtree ranges of the tournament tree are empty for each
/// job); odd seeds build iid restricted rows (~1/4 eligibility).
fn eligibility_instance() -> impl Strategy<Value = Instance> {
    (8usize..=32, 16usize..=120, 2usize..=8, any::<u64>()).prop_map(|(m, n, groups, seed)| {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let affinity = seed % 2 == 0;
        let mut b = InstanceBuilder::new(m, InstanceKind::FlowTime);
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 3) as f64 / 2.0;
            let base = 1.0 + (next() % 3) as f64;
            let sizes: Vec<f64> = if next() % 8 == 0 {
                // Everywhere-ineligible: every scheduler must reject it
                // at arrival, under either dispatch strategy.
                vec![f64::INFINITY; m]
            } else if affinity {
                let rack = (next() % groups as u64) as usize;
                (0..m)
                    .map(|i| {
                        if i % groups == rack {
                            base
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect()
            } else {
                (0..m)
                    .map(|_| {
                        if next() % 4 == 0 {
                            base + (next() % 3) as f64
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect()
            };
            b = b.job(t, sizes);
        }
        b.build().unwrap()
    })
}

fn flow_with(
    inst: &Instance,
    eps: f64,
    dispatch: DispatchIndex,
    kern: KernelMode,
) -> osr_core::FlowOutcome {
    let mut params = osr_core::FlowParams::new(eps);
    params.dispatch = dispatch;
    params.kernels = kern;
    osr_core::FlowScheduler::new(params).unwrap().run(inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pruned_argmin_is_bit_identical_to_linear(
        inst in tie_heavy_instance(),
        eps in 0.1f64..1.0,
    ) {
        let a = flow_with(&inst, eps, DispatchIndex::Pruned, KernelMode::Chunked);
        let b = flow_with(&inst, eps, DispatchIndex::Linear, KernelMode::Scalar);
        // Same machine choice and λ for every job (machine_of pins the
        // argmin index; lambda pins the value), hence the same schedule
        // and dual solution, bit for bit.
        prop_assert_eq!(&a.dual.machine_of, &b.dual.machine_of);
        prop_assert_eq!(&a.dual.lambda, &b.dual.lambda);
        prop_assert_eq!(&a.dual.c_tilde, &b.dual.c_tilde);
        prop_assert_eq!(&a.log, &b.log);
        // Isolate the kernel toggle on the index path: same dispatch
        // strategy, scalar oracle kernels.
        let c = flow_with(&inst, eps, DispatchIndex::Pruned, KernelMode::Scalar);
        prop_assert_eq!(&a.dual.lambda, &c.dual.lambda);
        prop_assert_eq!(&a.log, &c.log);
    }

    #[test]
    fn masked_descent_is_bit_identical_on_restricted_and_affinity(
        inst in eligibility_instance(),
        eps in 0.1f64..1.0,
    ) {
        let a = flow_with(&inst, eps, DispatchIndex::Pruned, KernelMode::Chunked);
        let b = flow_with(&inst, eps, DispatchIndex::Linear, KernelMode::Scalar);
        prop_assert_eq!(&a.dual.machine_of, &b.dual.machine_of);
        prop_assert_eq!(&a.dual.lambda, &b.dual.lambda);
        prop_assert_eq!(&a.dual.c_tilde, &b.dual.c_tilde);
        prop_assert_eq!(&a.log, &b.log);
        let c = flow_with(&inst, eps, DispatchIndex::Pruned, KernelMode::Scalar);
        prop_assert_eq!(&a.log, &c.log);
        // Everywhere-ineligible jobs are rejected identically — at
        // arrival, by both strategies — never scheduled, never panicked
        // on.
        for job in inst.jobs() {
            if !job.has_eligible() {
                let rej = a.log.fate(job.id).rejection().expect("ineligible rejected");
                prop_assert_eq!(rej.reason, RejectReason::Ineligible);
                prop_assert_eq!(rej.time, job.release);
            }
        }
    }

    #[test]
    fn weighted_and_energy_agree_on_restricted_and_affinity(
        inst in eligibility_instance(),
        eps in 0.1f64..1.0,
    ) {
        let mut wp = osr_core::flowtime::WeightedFlowParams::new(eps);
        wp.dispatch = DispatchIndex::Pruned;
        wp.kernels = KernelMode::Chunked;
        let mut wl = osr_core::flowtime::WeightedFlowParams::new(eps);
        wl.dispatch = DispatchIndex::Linear;
        wl.kernels = KernelMode::Scalar;
        let a = osr_core::flowtime::WeightedFlowScheduler::new(wp).unwrap().run(&inst);
        let b = osr_core::flowtime::WeightedFlowScheduler::new(wl).unwrap().run(&inst);
        prop_assert_eq!(a.log, b.log);

        let mut ep = osr_core::EnergyFlowParams::new(eps, 2.2);
        ep.dispatch = DispatchIndex::Pruned;
        ep.kernels = KernelMode::Chunked;
        let mut el = osr_core::EnergyFlowParams::new(eps, 2.2);
        el.dispatch = DispatchIndex::Linear;
        el.kernels = KernelMode::Scalar;
        let a = osr_core::EnergyFlowScheduler::new(ep).unwrap().run(&inst);
        let b = osr_core::EnergyFlowScheduler::new(el).unwrap().run(&inst);
        prop_assert_eq!(a.log, b.log);
        prop_assert_eq!(a.sum_lambda(), b.sum_lambda());
    }

    #[test]
    fn weighted_and_energy_schedulers_agree_too(
        m in 8usize..=16,
        n in 10usize..=80,
        seed in any::<u64>(),
        eps in 0.1f64..1.0,
    ) {
        let mut w = FlowWorkload::standard(n, m, seed);
        w.weights = osr_workload::WeightSpec::Uniform { lo: 0.5, hi: 8.0 };
        let inst = w.generate(InstanceKind::FlowEnergy);

        let mut wp = osr_core::flowtime::WeightedFlowParams::new(eps);
        wp.dispatch = DispatchIndex::Pruned;
        wp.kernels = KernelMode::Chunked;
        let mut wl = osr_core::flowtime::WeightedFlowParams::new(eps);
        wl.dispatch = DispatchIndex::Linear;
        wl.kernels = KernelMode::Scalar;
        let a = osr_core::flowtime::WeightedFlowScheduler::new(wp).unwrap().run(&inst);
        let b = osr_core::flowtime::WeightedFlowScheduler::new(wl).unwrap().run(&inst);
        prop_assert_eq!(a.log, b.log);

        let mut ep = osr_core::EnergyFlowParams::new(eps, 2.2);
        ep.dispatch = DispatchIndex::Pruned;
        ep.kernels = KernelMode::Chunked;
        let mut el = osr_core::EnergyFlowParams::new(eps, 2.2);
        el.dispatch = DispatchIndex::Linear;
        el.kernels = KernelMode::Scalar;
        let a = osr_core::EnergyFlowScheduler::new(ep).unwrap().run(&inst);
        let b = osr_core::EnergyFlowScheduler::new(el).unwrap().run(&inst);
        prop_assert_eq!(a.log, b.log);
        prop_assert_eq!(a.sum_lambda(), b.sum_lambda());
    }
}

/// The tie-break contract, pinned as a plain unit test: with every
/// machine idle and the job identical everywhere, all `λ_ij` tie
/// exactly and the dispatch must pick machine 0 — then, as machine 0's
/// queue grows, the argmin must move to machine 1, never to an
/// arbitrary equal-λ machine.
#[test]
fn lowest_index_tie_break_is_locked() {
    let m = PRUNED_MIN_MACHINES; // smallest m where the index engages
    let mut b = InstanceBuilder::new(m, InstanceKind::FlowTime);
    // A burst of identical jobs at t = 0.
    for _ in 0..4 {
        b = b.job(0.0, vec![5.0; PRUNED_MIN_MACHINES]);
    }
    let inst = b.build().unwrap();
    for dispatch in [DispatchIndex::Pruned, DispatchIndex::Linear] {
        let mut params = osr_core::FlowParams::with_rules(0.5, false, false);
        params.dispatch = dispatch;
        let out = osr_core::FlowScheduler::new(params).unwrap().run(&inst);
        // j0 ties everywhere → machine 0; it starts immediately, so j1
        // ties everywhere again (pending queues all empty) → machine 0;
        // j2 then sees one pending job on machine 0 (λ strictly larger
        // there) → machine 1; j3 likewise → machine 1 busy+pending …
        let mi: Vec<u32> = (0..4).map(|k| out.dual.machine_of[k as usize]).collect();
        assert_eq!(mi[0], 0, "{dispatch:?}");
        assert_eq!(mi[1], 0, "{dispatch:?}");
        assert_eq!(mi[2], 1, "{dispatch:?}");
        let rep = validate_log(&inst, &out.log, &ValidationConfig::flow_time());
        assert!(rep.is_valid());
    }
}
