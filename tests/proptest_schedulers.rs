//! Property-based cross-crate tests: for *arbitrary* generated
//! instances, every scheduler in the workspace produces a valid
//! schedule, respects its budget, and the metric identities hold.

use online_sched_rejection::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random flow-time instance.
fn flow_instance() -> impl Strategy<Value = Instance> {
    (1usize..=3, 1usize..=30, any::<u64>()).prop_map(|(m, n, seed)| {
        FlowWorkload::standard(n, m, seed).generate(InstanceKind::FlowTime)
    })
}

/// Strategy: a small random weighted instance.
fn weighted_instance() -> impl Strategy<Value = Instance> {
    (1usize..=3, 1usize..=25, any::<u64>()).prop_map(|(m, n, seed)| {
        let mut w = FlowWorkload::standard(n, m, seed);
        w.weights = osr_workload::WeightSpec::Uniform { lo: 0.5, hi: 10.0 };
        w.generate(InstanceKind::FlowEnergy)
    })
}

/// Strategy: a small random deadline instance.
fn deadline_instance() -> impl Strategy<Value = Instance> {
    (1usize..=2, 1usize..=20, any::<u64>())
        .prop_map(|(m, n, seed)| EnergyWorkload::standard(n, m, seed).generate())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flow_scheduler_always_valid_and_within_budget(
        inst in flow_instance(),
        eps in 0.05f64..1.0,
    ) {
        let out = FlowScheduler::with_eps(eps).unwrap().run(&inst);
        let report = validate_log(&inst, &out.log, &ValidationConfig::flow_time());
        prop_assert!(report.is_valid(), "{:?}", report.errors.first());
        let m = Metrics::compute(&inst, &out.log, 2.0);
        prop_assert!(m.flow.rejected_fraction() <= 2.0 * eps + 1e-9);
        // Metric identities.
        prop_assert!(m.flow.flow_all + 1e-9 >= m.flow.flow_served);
        prop_assert!(m.flow.completed + m.flow.rejected == inst.len());
        // Dual bookkeeping is complete and ordered.
        for j in 0..inst.len() {
            prop_assert!(out.dual.exit[j].is_finite());
            prop_assert!(out.dual.c_tilde[j] + 1e-9 >= out.dual.exit[j]);
            prop_assert!(out.dual.lambda[j] >= 0.0);
        }
    }

    #[test]
    fn energyflow_scheduler_always_valid_and_within_weight_budget(
        inst in weighted_instance(),
        eps in 0.05f64..1.0,
        alpha in 1.2f64..3.5,
    ) {
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha))
            .unwrap()
            .run(&inst);
        let report = validate_log(&inst, &out.log, &ValidationConfig::flow_energy());
        prop_assert!(report.is_valid(), "{:?}", report.errors.first());
        let m = Metrics::compute(&inst, &out.log, alpha);
        prop_assert!(m.flow.rejected_weight <= eps * inst.total_weight() + 1e-9);
    }

    #[test]
    fn energymin_scheduler_always_meets_deadlines(
        inst in deadline_instance(),
        alpha in 1.2f64..3.5,
    ) {
        let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha)).unwrap().run(&inst);
        let report = validate_log(&inst, &out.log, &ValidationConfig::energy());
        prop_assert!(report.is_valid(), "{:?}", report.errors.first());
        prop_assert!(out.total_energy >= 0.0);
        prop_assert!(out.certified_lower_bound() <= out.total_energy + 1e-9);
    }

    #[test]
    fn baselines_always_produce_valid_schedules(inst in flow_instance()) {
        for mut sched in [GreedyScheduler::ect_spt(), GreedyScheduler::ect_fifo()] {
            let log = sched.schedule(&inst);
            let report = validate_log(&inst, &log, &ValidationConfig::flow_time());
            prop_assert!(report.is_valid(), "{}: {:?}", sched.name(), report.errors.first());
            prop_assert_eq!(log.rejected_count(), 0);
        }
        let (log, _) = ImmediateRejectScheduler::above_mean(0.3, 4.0).run(&inst);
        let report = validate_log(&inst, &log, &ValidationConfig::flow_time());
        prop_assert!(report.is_valid());
        let (log, _) = SpeedAugScheduler::new(0.3, 0.3).unwrap().run(&inst);
        let report = validate_log(&inst, &log, &ValidationConfig::flow_energy());
        prop_assert!(report.is_valid());
    }

    #[test]
    fn certified_lb_never_exceeds_any_serving_schedule(inst in flow_instance()) {
        // The greedy serves all jobs, so its flow upper-bounds OPT;
        // the certified LB must stay below it.
        let out = FlowScheduler::with_eps(0.3).unwrap().run(&inst);
        let lb = flow_lower_bound(&inst, Some(out.dual.objective()));
        let (glog, _) = GreedyScheduler::ect_spt().run(&inst);
        let greedy_flow = Metrics::compute(&inst, &glog, 2.0).flow.flow_served;
        prop_assert!(
            lb.value <= greedy_flow + 1e-6,
            "LB {} exceeds a feasible schedule's cost {}",
            lb.value,
            greedy_flow
        );
    }

    #[test]
    fn srpt_lower_bounds_single_machine_schedules(
        n in 1usize..25,
        seed in any::<u64>(),
    ) {
        let inst = FlowWorkload::standard(n, 1, seed).generate(InstanceKind::FlowTime);
        let srpt = srpt_flow(&inst);
        let (glog, _) = GreedyScheduler::ect_spt().run(&inst);
        let greedy_flow = Metrics::compute(&inst, &glog, 2.0).flow.flow_served;
        prop_assert!(srpt <= greedy_flow + 1e-6);
    }

    #[test]
    fn tiny_exact_opt_is_consistent(
        n in 1usize..7,
        m in 1usize..3,
        seed in any::<u64>(),
    ) {
        let inst = FlowWorkload::standard(n, m, seed).generate(InstanceKind::FlowTime);
        let opt = optimal_flow(&inst);
        // OPT ≥ trivial LB, and OPT ≤ greedy (a feasible schedule).
        prop_assert!(opt + 1e-9 >= inst.total_min_size());
        let (glog, _) = GreedyScheduler::ect_spt().run(&inst);
        let greedy_flow = Metrics::compute(&inst, &glog, 2.0).flow.flow_served;
        prop_assert!(opt <= greedy_flow + 1e-6);
        if m == 1 {
            prop_assert!(opt + 1e-9 >= srpt_flow(&inst));
        }
    }
}
