//! §3 scenario: weighted jobs on speed-scalable machines
//! (`P(s) = s^α`) — the scheduler balances weighted responsiveness
//! against the energy bill, and spends its ε-weight rejection budget
//! on the jobs that would wreck both.
//!
//! ```text
//! cargo run --release --example speed_scaling_energy
//! ```

use online_sched_rejection::prelude::*;
use osr_baselines::energyflow_alone_lower_bound;
use osr_workload::{SizeSpec, WeightSpec};

fn main() {
    let alpha = 2.5;
    let mut spec = FlowWorkload::standard(1500, 4, 7);
    spec.weights = WeightSpec::Uniform { lo: 1.0, hi: 10.0 };
    spec.sizes = SizeSpec::Bimodal {
        short: 2.0,
        long: 90.0,
        p_long: 0.06,
    };
    let instance = spec.generate(InstanceKind::FlowEnergy);
    let lb = energyflow_alone_lower_bound(&instance, alpha);
    println!(
        "{} weighted jobs, total weight {:.0}, alpha = {alpha}, alone-cost LB = {:.0}",
        instance.len(),
        instance.total_weight(),
        lb
    );

    println!(
        "\n{:>6} {:>7} {:>14} {:>12} {:>12} {:>10}",
        "eps", "gamma", "weighted flow", "energy", "objective", "w-rejected"
    );
    for eps in [0.1, 0.25, 0.5, 1.0] {
        let sched = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha)).unwrap();
        let gamma = sched.gamma();
        let out = sched.run(&instance);
        let report = validate_log(&instance, &out.log, &ValidationConfig::flow_energy());
        assert!(report.is_valid());
        let m = Metrics::compute(&instance, &out.log, alpha);
        println!(
            "{:>6.2} {:>7.3} {:>14.0} {:>12.0} {:>12.0} {:>9.1}%",
            eps,
            gamma,
            m.flow.weighted_flow_served,
            m.energy.total(),
            m.weighted_flow_plus_energy(),
            100.0 * m.flow.rejected_weight_fraction(),
        );
    }

    // Ablation: what does the rejection rule buy?
    let with = EnergyFlowScheduler::new(EnergyFlowParams::new(0.25, alpha)).unwrap();
    let without = EnergyFlowScheduler::new(EnergyFlowParams {
        reject: false,
        ..EnergyFlowParams::new(0.25, alpha)
    })
    .unwrap();
    let obj_with =
        Metrics::compute(&instance, &with.run(&instance).log, alpha).weighted_flow_plus_energy();
    let obj_without =
        Metrics::compute(&instance, &without.run(&instance).log, alpha).weighted_flow_plus_energy();
    println!(
        "\nrejection off: objective {:.0}; rejection on: {:.0} ({:.1}x)",
        obj_without,
        obj_with,
        obj_without / obj_with
    );
    println!(
        "Theorem 2 bound at eps=0.25: {:.1}x the optimum (measured {:.2}x vs the alone-cost LB)",
        bounds::energyflow_competitive_bound(0.25, alpha),
        obj_with / lb
    );
}
