//! §4 scenario: hard-deadline jobs on speed-scalable machines — the
//! configuration-LP greedy picks each job's machine, start and speed
//! once, minimizing marginal energy, and never misses a deadline.
//! Compared against the AVR heuristic and the YDS preemptive optimum.
//!
//! ```text
//! cargo run --release --example deadline_energy
//! ```

use online_sched_rejection::prelude::*;
use osr_baselines::energy_lower_bound;

fn main() {
    let alpha = 3.0; // cube-root rule: dynamic power ≈ s³

    // Single machine first: YDS gives the exact preemptive optimum.
    let inst1 = EnergyWorkload::standard(120, 1, 99).generate();
    let greedy = EnergyMinScheduler::new(EnergyMinParams::new(alpha)).unwrap();
    let out = greedy.run(&inst1);
    let report = validate_log(&inst1, &out.log, &ValidationConfig::energy());
    assert!(report.is_valid(), "deadline missed or invalid schedule");
    let yds = yds_energy(&inst1, alpha);
    let (_, _, avr_energy) = AvrScheduler { alpha }.run(&inst1);
    println!("single machine, {} jobs, alpha = {alpha}", inst1.len());
    println!("  YDS preemptive optimum (lower bound) : {yds:>10.2}");
    println!(
        "  SPAA'18 greedy                       : {:>10.2} ({:.2}x)",
        out.total_energy,
        out.total_energy / yds
    );
    println!(
        "  AVR heuristic                        : {avr_energy:>10.2} ({:.2}x)",
        avr_energy / yds
    );
    println!(
        "  Theorem-3 guarantee                  : {:>10.2}x",
        bounds::energymin_competitive_bound(alpha)
    );
    println!(
        "  certified dual lower bound           : {:>10.2}",
        out.certified_lower_bound()
    );

    // Multi-machine: the greedy spreads deadline pressure.
    let inst4 = EnergyWorkload::standard(400, 4, 100).generate();
    let out4 = greedy.run(&inst4);
    let report4 = validate_log(&inst4, &out4.log, &ValidationConfig::energy());
    assert!(report4.is_valid());
    let lb4 = energy_lower_bound(&inst4, alpha);
    let (_, _, avr4) = AvrScheduler { alpha }.run(&inst4);
    println!("\n4 machines, {} jobs:", inst4.len());
    println!("  pooled-YDS ∨ per-job lower bound : {lb4:>10.2}");
    println!(
        "  SPAA'18 greedy      : {:>10.2} ({:.2}x)",
        out4.total_energy,
        out4.total_energy / lb4
    );
    println!(
        "  AVR heuristic       : {:>10.2} ({:.2}x)",
        avr4,
        avr4 / lb4
    );

    // Peek at one machine's committed speed profile.
    let profile = &outcome_profile(&out4);
    println!("\nmachine-0 speed profile breakpoints (first 10):");
    for (k, t) in profile.iter().take(10).enumerate() {
        println!("  [{k}] t = {t:>8.2}  speed = {:.3}", speed_of(&out4, *t));
    }
}

/// Breakpoint times of machine 0, reconstructed from the log.
fn outcome_profile(out: &osr_core::energymin::EnergyMinOutcome) -> Vec<f64> {
    let mut prof = osr_core::energymin::SpeedProfile::new();
    for (_, e) in out.log.executions() {
        if e.machine.idx() == 0 {
            prof.add(e.start, e.completion, e.speed);
        }
    }
    prof.breakpoints().collect()
}

/// Machine-0 speed at `t`, reconstructed from the log.
fn speed_of(out: &osr_core::energymin::EnergyMinOutcome, t: f64) -> f64 {
    let mut prof = osr_core::energymin::SpeedProfile::new();
    for (_, e) in out.log.executions() {
        if e.machine.idx() == 0 {
            prof.add(e.start, e.completion, e.speed);
        }
    }
    prof.speed_at(t)
}
