//! Quickstart: schedule a handful of jobs on two unrelated machines
//! with the SPAA'18 rejection algorithm, inspect the schedule, metrics
//! and the certified lower bound.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use online_sched_rejection::prelude::*;

fn main() {
    // Two machines; p_ij differs per machine (unrelated model). A long
    // job lands first, then a burst of short ones — the scenario where
    // non-preemptive schedulers traditionally die and rejection saves
    // the day.
    let mut builder = InstanceBuilder::new(2, InstanceKind::FlowTime).job(0.0, vec![25.0, 30.0]);
    for k in 0..10 {
        let t = 1.0 + k as f64 * 0.5;
        builder = builder.job(t, vec![1.0 + (k % 3) as f64, 2.0 + (k % 2) as f64]);
    }
    let instance = builder.build().expect("valid instance");

    // ε = 0.25: reject at most a 2ε = 50% fraction in the worst case;
    // Theorem 1 then guarantees a 2((1+ε)/ε)² = 50-competitive schedule.
    let eps = 0.25;
    let scheduler = FlowScheduler::with_eps(eps).expect("valid eps");
    let outcome = scheduler.run(&instance);

    // Independent validation: the log satisfies every model invariant.
    let report = validate_log(&instance, &outcome.log, &ValidationConfig::flow_time());
    assert!(
        report.is_valid(),
        "algorithm produced an invalid schedule!?"
    );

    println!(
        "== schedule ==\n{}",
        render_gantt(&instance, &outcome.log, 72)
    );

    let metrics = Metrics::compute(&instance, &outcome.log, 2.0);
    println!("completed jobs : {}", metrics.flow.completed);
    println!(
        "rejected jobs  : {} (budget: {:.0}% of {})",
        metrics.flow.rejected,
        100.0 * bounds::flowtime_rejection_budget(eps),
        instance.len()
    );
    println!(
        "total flow-time: {:.2} (incl. rejected until rejection: {:.2})",
        metrics.flow.flow_served, metrics.flow.flow_all
    );

    // The run certifies a lower bound on ANY non-preemptive schedule's
    // flow-time via its feasible dual solution.
    let lb = flow_lower_bound(&instance, Some(outcome.dual.objective()));
    println!(
        "certified OPT lower bound: {:.2} (dual/2 = {:.2}, trivial = {:.2})",
        lb.value, lb.dual_half, lb.trivial
    );
    println!(
        "observed ratio {:.2} vs Theorem-1 bound {:.2}",
        metrics.flow.flow_all / lb.value,
        bounds::flowtime_competitive_bound(eps)
    );

    // What happened to the long job?
    for (id, rej) in outcome.log.rejections() {
        println!("rejected {id} at t={:.1} by {}", rej.time, rej.reason);
    }
}
