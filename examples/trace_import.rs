//! Importing an external trace and scheduling it.
//!
//! Real cluster traces reduce to `release size [weight]` rows; this
//! example builds one inline (in practice: read a file), expands it to
//! an unrelated 4-machine instance, and compares the paper's algorithm
//! with the weighted extension and greedy on it.
//!
//! ```text
//! cargo run --release --example trace_import
//! ```

use online_sched_rejection::prelude::*;
use osr_core::flowtime::WeightedFlowScheduler;
use osr_workload::{MachineSpec, TraceImport};

fn main() {
    // A synthetic "trace file": bursty interactive jobs (weight 8),
    // steady batch jobs (weight 1), one huge compaction job.
    let mut trace = String::from("# release size weight\n");
    for k in 0..200 {
        let t = k as f64 * 0.7;
        trace.push_str(&format!("{t} 1.5 8\n")); // interactive
        if k % 4 == 0 {
            trace.push_str(&format!("{} 6 1\n", t + 0.2)); // batch
        }
        if k == 30 {
            trace.push_str(&format!("{} 300 1\n", t + 0.1)); // compaction
        }
    }

    let importer = TraceImport {
        machines: 4,
        machine_model: MachineSpec::Unrelated {
            lo_factor: 1.0,
            hi_factor: 3.0,
        },
        seed: 7,
    };
    let instance = importer.parse(&trace).expect("well-formed trace");
    println!(
        "imported {} jobs ({}) onto {} machines, size ratio Δ = {:.0}\n",
        instance.len(),
        instance.kind(),
        instance.machines(),
        instance.size_ratio()
    );

    println!(
        "{:<26} {:>14} {:>14} {:>9}",
        "policy", "flow (served)", "weighted flow", "rejected"
    );
    let eps = 0.2;

    let out = FlowScheduler::with_eps(eps).unwrap().run(&instance);
    assert!(validate_log(&instance, &out.log, &ValidationConfig::flow_time()).is_valid());
    let m = Metrics::compute(&instance, &out.log, 2.0);
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>9}",
        "spaa18 flow (unweighted)",
        m.flow.flow_served,
        m.flow.weighted_flow_served,
        m.flow.rejected
    );

    let wout = WeightedFlowScheduler::with_eps(eps).unwrap().run(&instance);
    assert!(validate_log(&instance, &wout.log, &ValidationConfig::flow_time()).is_valid());
    let wm = Metrics::compute(&instance, &wout.log, 2.0);
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>9}",
        "wflow extension", wm.flow.flow_served, wm.flow.weighted_flow_served, wm.flow.rejected
    );

    let (glog, _) = GreedyScheduler::ect_spt().run(&instance);
    let gm = Metrics::compute(&instance, &glog, 2.0);
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>9}",
        "greedy ECT+SPT", gm.flow.flow_served, gm.flow.weighted_flow_served, 0
    );

    println!(
        "\nThe compaction job is the trap: greedy commits a machine to it while\n\
         interactive jobs pile up; both rejection schedulers drop it (or shed a\n\
         few batch jobs) and keep the weighted flow an order of magnitude lower."
    );
}
