//! The lower-bound constructions, live: Lemma 1's flood breaks
//! immediate-rejection policies while hindsight rejection shrugs it
//! off, and Lemma 2's adaptive deadline chain squeezes the §4 greedy.
//!
//! ```text
//! cargo run --release --example adversarial_showdown
//! ```

use online_sched_rejection::prelude::*;
use osr_core::energymin::EnergyMinOnline;
use osr_workload::adversarial::{
    lemma1_adversary_flow, lemma1_big_jobs, lemma1_full_instance, lemma2_run,
};

fn main() {
    println!("=== Lemma 1: the cost of deciding rejections immediately ===\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>14}",
        "L", "Delta", "immediate", "spaa18", "imm/sqrt(D)"
    );
    let eps = 0.5;
    for l in [5.0, 10.0, 20.0, 40.0] {
        // Phase 1: watch where the immediate policy commits.
        let phase1 = lemma1_big_jobs(eps, l);
        let imm = ImmediateRejectScheduler::above_mean(eps, 3.0);
        let (log1, _) = imm.run(&phase1);
        let first_start = log1
            .executions()
            .map(|(_, e)| e.start)
            .fold(f64::INFINITY, f64::min);

        // Phase 2: the adversary floods behind the commitment.
        let full = lemma1_full_instance(eps, l, first_start);
        let adv = lemma1_adversary_flow(eps, l, first_start);

        let (imm_log, _) = imm.run(&full);
        let imm_ratio = Metrics::compute(&full, &imm_log, 2.0).flow.flow_all / adv;

        let spaa = FlowScheduler::with_eps(eps).unwrap().run(&full);
        let spaa_ratio = Metrics::compute(&full, &spaa.log, 2.0).flow.flow_all / adv;

        println!(
            "{l:>6.0} {:>8.0} {imm_ratio:>12.2} {spaa_ratio:>12.2} {:>14.3}",
            l * l,
            imm_ratio / l
        );
    }
    println!("\nThe immediate policy's column grows ~linearly in L = sqrt(Delta);");
    println!("the SPAA'18 column stays flat — Rule 1 revokes the bad commitment.\n");

    println!("=== Lemma 2: the adaptive deadline chain vs the section-4 greedy ===\n");
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "alpha", "rounds", "alg energy", "adv energy", "ratio", "(a/9)^a", "a^a"
    );
    for alpha in [2.0, 3.0, 4.0, 6.0] {
        let mut online = EnergyMinOnline::new(EnergyMinParams::new(alpha), 1).unwrap();
        let run = lemma2_run(alpha, |job| {
            let a = online.assign(job);
            (a.start, a.completion)
        });
        let alg = online.total_energy();
        println!(
            "{alpha:>6.1} {:>7} {alg:>12.2} {:>12.2} {:>8.2} {:>12.4} {:>10.1}",
            run.rounds,
            run.adversary_energy,
            alg / run.adversary_energy,
            bounds::energymin_lower_bound(alpha),
            bounds::energymin_competitive_bound(alpha),
        );
    }
    println!("\nEach released job nests inside the previous execution window, forcing");
    println!("overlap on the algorithm while the adversary runs everything at speed 1.");
}
