//! Datacenter scenario: a heterogeneous cluster (related speed tiers +
//! restricted placement) absorbing a diurnal, heavy-tailed job stream.
//! Compares the SPAA'18 rejection scheduler against no-rejection
//! greedy dispatch — the paper's motivating comparison, on a workload
//! shaped like the introduction's "desktops, servers and data centers".
//!
//! ```text
//! cargo run --release --example datacenter_flow
//! ```

use online_sched_rejection::prelude::*;
use osr_workload::{ArrivalSpec, MachineSpec, SizeSpec};

fn main() {
    let machines = 12;
    let n = 4000;

    // Heavy-tailed service times (bounded Pareto), bursty arrivals, a
    // cluster with 1–4× speed spread.
    let mut spec = FlowWorkload::standard(n, machines, 2024);
    spec.arrivals = ArrivalSpec::Bursty {
        burst: 50,
        within: 0.02,
        gap: 12.0,
    };
    spec.sizes = SizeSpec::BoundedPareto {
        shape: 1.3,
        lo: 0.5,
        hi: 300.0,
    };
    spec.machine_model = MachineSpec::RelatedSpeeds { max_factor: 4.0 };
    let instance = spec.generate(InstanceKind::FlowTime);
    println!(
        "cluster: {machines} machines, {} jobs, size ratio Δ = {:.0}",
        instance.len(),
        instance.size_ratio()
    );

    // The paper's algorithm across the ε spectrum.
    println!(
        "\n{:>6} {:>12} {:>12} {:>10} {:>10}",
        "eps", "flow(served)", "p99 flow", "rejected", "ratio/LB"
    );
    for eps in [0.1, 0.2, 0.4] {
        let out = FlowScheduler::with_eps(eps).unwrap().run(&instance);
        let report = validate_log(&instance, &out.log, &ValidationConfig::flow_time());
        assert!(report.is_valid());
        let m = Metrics::compute(&instance, &out.log, 2.0);
        let stats = SummaryStats::flows(&instance, &out.log);
        let lb = flow_lower_bound(&instance, Some(out.dual.objective()));
        println!(
            "{:>6.2} {:>12.0} {:>12.1} {:>10} {:>10.2}",
            eps,
            m.flow.flow_served,
            stats.p99,
            m.flow.rejected,
            m.flow.flow_all / lb.value
        );
    }

    // The no-rejection comparators on the same stream.
    println!("\nbaselines (serve everything):");
    for (name, mut sched) in [
        ("greedy ECT+SPT", GreedyScheduler::ect_spt()),
        ("greedy ECT+FIFO", GreedyScheduler::ect_fifo()),
    ] {
        let log = sched.schedule(&instance);
        let report = validate_log(&instance, &log, &ValidationConfig::flow_time());
        assert!(report.is_valid());
        let m = Metrics::compute(&instance, &log, 2.0);
        let stats = SummaryStats::flows(&instance, &log);
        println!(
            "  {name:<16} flow = {:>12.0}   p99 = {:>10.1}   max = {:>10.1}",
            m.flow.flow_served, stats.p99, stats.max
        );
    }

    println!(
        "\nTakeaway: a few percent of rejections buys an order of magnitude on the tail —\n\
         exactly the trade Theorem 1 formalizes."
    );
}
