//! End-to-end check of the parallel-harness determinism contract: for
//! any `--jobs` value the experiment tables (and hence the CSV
//! artifacts) are byte-identical, because every replicate is
//! self-seeded and results are collected in input order.
//!
//! `scale` is exempt (wall-clock columns) and excluded here.

use osr_bench::Table;

fn csv_dump(tables: &[Table]) -> String {
    tables
        .iter()
        .map(Table::to_csv)
        .collect::<Vec<_>>()
        .join("\n---\n")
}

fn with_jobs(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()?;
    Ok(())
}

#[test]
fn quick_tables_are_byte_identical_across_worker_counts() {
    // The timing-exempt experiment aside, every experiment must honor
    // the contract; run the cheapest representative subset covering all
    // fan-out shapes (seeds, cross products, workloads, sweeps).
    // `m_scale` is covered through its quick-mode fingerprint table
    // (its timing table exists only in full mode, precisely so the
    // quick output stays byte-identical here and in the CI diffs).
    let subset = [
        "t1_ratio",
        "dual_feasibility",
        "load_sweep",
        "rule_ablation",
        "m_scale",
    ];
    let experiments: Vec<_> = osr_bench::all_experiments()
        .into_iter()
        .filter(|(id, _, _)| subset.contains(id))
        .collect();
    assert_eq!(
        experiments.len(),
        subset.len(),
        "experiment registry changed"
    );

    with_jobs(1).unwrap();
    let serial: Vec<String> = experiments
        .iter()
        .map(|(_, _, run)| csv_dump(&run(true)))
        .collect();

    for jobs in [2, 8] {
        with_jobs(jobs).unwrap();
        for ((id, _, run), expected) in experiments.iter().zip(&serial) {
            let parallel = csv_dump(&run(true));
            assert_eq!(
                &parallel, expected,
                "{id}: --jobs {jobs} output diverged from serial"
            );
        }
    }

    // Leave the pool on auto for whatever test runs next in-process.
    with_jobs(0).unwrap();
}
