//! §4 strategy-search throughput: assignment cost as a function of the
//! candidate-grid resolution (speeds × starts) — the discretization
//! knob the paper trades against the `(1+ε)` loss.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osr_core::energymin::{EnergyMinParams, EnergyMinScheduler};
use osr_workload::EnergyWorkload;

fn search_cost(c: &mut Criterion) {
    let inst = EnergyWorkload::standard(150, 2, 5).generate();
    let mut group = c.benchmark_group("energymin_grid");
    for &(speeds, starts) in &[(4usize, 4usize), (8, 8), (16, 16), (32, 32)] {
        let params = EnergyMinParams {
            alpha: 2.0,
            speed_ratio: 1.25,
            max_speeds: speeds,
            start_grid: starts,
        };
        group.bench_with_input(
            BenchmarkId::new("grid", format!("{speeds}x{starts}")),
            &inst,
            |b, inst| {
                let sched = EnergyMinScheduler::new(params).unwrap();
                b.iter(|| sched.run(inst).total_energy);
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = search_cost
}
criterion_main!(benches);
