//! Event-queue backend microbenchmark: `osr_sim::EventQueue` on its
//! `std::collections::BinaryHeap` backend vs the `osr_dstruct`
//! pairing-heap backend, at 10³ / 10⁵ / 10⁶ events, on the push/pop
//! burst pattern event-driven schedulers produce. Both backends honor
//! the identical (time, FIFO) ordering contract, so this is a pure
//! like-for-like throughput comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use osr_sim::{EventBackend, EventQueue};

/// Deterministic pseudo-times.
fn times(n: usize) -> Vec<f64> {
    let mut s = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1_000_000) as f64 / 1000.0
        })
        .collect()
}

/// Push/pop bursts of 8 — the scheduler pattern — then drain.
fn drive(backend: EventBackend, ts: &[f64]) -> usize {
    let mut q = EventQueue::with_backend(backend);
    let mut popped = 0usize;
    for chunk in ts.chunks(8) {
        for &t in chunk {
            q.push(t, ());
        }
        for _ in 0..4 {
            if q.pop().is_some() {
                popped += 1;
            }
        }
    }
    while q.pop().is_some() {
        popped += 1;
    }
    popped
}

fn queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_backends");
    for &n in &[1_000usize, 100_000, 1_000_000] {
        let ts = times(n);
        group.throughput(Throughput::Elements(n as u64));
        for (label, backend) in [
            ("binary_heap", EventBackend::BinaryHeap),
            ("pairing_heap", EventBackend::PairingHeap),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &ts, |b, ts| {
                b.iter(|| drive(backend, ts));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = queues
}
criterion_main!(benches);
