//! Event-queue backend microbenchmark: the `std::collections::BinaryHeap`
//! behind `osr_sim::EventQueue` vs the `osr_dstruct::PairingHeap`, on
//! the push/pop burst pattern event-driven schedulers produce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osr_dstruct::{PairingHeap, TotalF64};
use osr_sim::EventQueue;

/// Deterministic pseudo-times.
fn times(n: usize) -> Vec<f64> {
    let mut s = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1_000_000) as f64 / 1000.0
        })
        .collect()
}

fn queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_backends");
    for &n in &[10_000usize, 100_000] {
        let ts = times(n);
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Push/pop bursts of 8 — the scheduler pattern.
                let mut popped = 0usize;
                for chunk in ts.chunks(8) {
                    for &t in chunk {
                        q.push(t, ());
                    }
                    for _ in 0..4 {
                        if q.pop().is_some() {
                            popped += 1;
                        }
                    }
                }
                while q.pop().is_some() {
                    popped += 1;
                }
                popped
            });
        });
        group.bench_with_input(BenchmarkId::new("pairing_heap", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q: PairingHeap<(TotalF64, u64)> = PairingHeap::new();
                let mut seq = 0u64;
                let mut popped = 0usize;
                for chunk in ts.chunks(8) {
                    for &t in chunk {
                        q.push((TotalF64(t), seq));
                        seq += 1;
                    }
                    for _ in 0..4 {
                        if q.pop().is_some() {
                            popped += 1;
                        }
                    }
                }
                while q.pop().is_some() {
                    popped += 1;
                }
                popped
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = queues
}
criterion_main!(benches);
