//! EXP-SCALE (part 1): end-to-end throughput of the §2 scheduler as
//! the instance grows — the dispatcher should scale near-linearly
//! thanks to the `O(log n)` treap queries behind `λ_ij`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use osr_core::{FlowParams, FlowScheduler};
use osr_model::InstanceKind;
use osr_workload::FlowWorkload;

fn dispatch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_scheduler_scaling");
    for &n in &[1_000usize, 5_000, 20_000, 50_000] {
        let inst = FlowWorkload::standard(n, 8, 42).generate(InstanceKind::FlowTime);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("treap", n), &inst, |b, inst| {
            let sched = FlowScheduler::new(FlowParams::new(0.25)).unwrap();
            b.iter(|| sched.run(inst).log.rejected_count());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = dispatch_scaling
}
criterion_main!(benches);
