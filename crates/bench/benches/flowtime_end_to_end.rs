//! Runtime comparison of the §2 algorithm against the greedy baselines
//! (policy cost of the dual-fitting dispatch vs plain ECT) — the
//! "price of the theory" in wall-clock terms.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use osr_baselines::GreedyScheduler;
use osr_core::{FlowParams, FlowScheduler};
use osr_model::InstanceKind;
use osr_sim::OnlineScheduler;
use osr_workload::FlowWorkload;

fn end_to_end(c: &mut Criterion) {
    let n = 10_000usize;
    let inst = FlowWorkload::standard(n, 4, 9).generate(InstanceKind::FlowTime);
    let mut group = c.benchmark_group("flowtime_policies");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("spaa18_eps0.25", |b| {
        let sched = FlowScheduler::new(FlowParams::new(0.25)).unwrap();
        b.iter(|| sched.run(&inst).log.rejected_count());
    });
    group.bench_function("greedy_ect_spt", |b| {
        b.iter(|| {
            let mut g = GreedyScheduler::ect_spt();
            g.schedule(&inst).rejected_count()
        });
    });
    group.bench_function("greedy_ect_fifo", |b| {
        b.iter(|| {
            let mut g = GreedyScheduler::ect_fifo();
            g.schedule(&inst).rejected_count()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = end_to_end
}
criterion_main!(benches);
