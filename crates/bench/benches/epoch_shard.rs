//! EPOCH-SHARD (PR 7): the epoch-sharded event driver vs the serial
//! loop, end to end on the full §2 scheduler.
//!
//! Arrivals come in 512-job batches so each driver epoch actually
//! crosses the parallel fan-out threshold (256 batched arrivals);
//! rack-affinity masks make every arrival exercise the cross-shard
//! candidate reconciliation (round-robin racks scatter each job's
//! eligible set over all shards). `shards = 1` is the serial oracle
//! path; `shards = 8` runs the sharded phase-1 candidate search.
//!
//! **Read the recorded numbers with the host in mind**: on a
//! single-core container the rayon pool degrades to serial execution,
//! so `sharded8/serial` measures pure sharding overhead (bookkeeping,
//! per-shard index slices, the epoch barrier), not speedup. BENCH.md's
//! PR 7 section records both that overhead ratio and what the epoch
//! batching alone buys. The byte-identity contract is what CI gates
//! (shard ablation diff + the `shard_equivalence` proptests); the
//! speedup claim needs a multi-core host to evaluate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osr_core::{FlowParams, FlowScheduler};
use osr_model::InstanceKind;
use osr_workload::{ArrivalSpec, FlowWorkload, MachineSpec};

fn epoch_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_shard");
    for &(m, n) in &[(1_024usize, 8_192usize), (4_096, 20_480)] {
        let mut w = FlowWorkload::standard(n, m, 77);
        w.machine_model = MachineSpec::Affinity {
            groups: 64,
            drop_prob: 0.0,
        };
        w.arrivals = ArrivalSpec::Batch {
            per_batch: 512,
            gap: 8.0,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        for shards in [1usize, 8] {
            let mut params = FlowParams::new(0.25);
            params.shards = shards;
            let label = if shards == 1 { "serial" } else { "sharded8" };
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_m{m}"), n),
                &inst,
                |b, inst| {
                    let sched = FlowScheduler::new(params).unwrap();
                    b.iter(|| sched.run(inst).log.rejected_count());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, epoch_shard);
criterion_main!(benches);
