//! SERVE-JOURNAL (PR 10): the write-ahead journal's per-event cost on
//! the serve ingest path, isolated from network and parser overhead.
//!
//! Both benches drive the same 64-arrival / 8-advance stream through a
//! `FlowSession` (m = 6, the CI serve fixture's scale) and finish it;
//! `replay_journaled_m6` wraps the session in [`JournaledSession`], so
//! the delta is exactly the durability tax: one encoded record + one
//! buffered write + **one fsync per ingest call**, plus the cadence-32
//! snapshot sidecar. The fsync dominates and is environment-dependent
//! (tmpfs vs disk vs container overlay), so the recorded ratio is a
//! coarse trajectory row, not a precise constant — bench_check gates it
//! with the widened 50% tolerance and the honest framing in BENCH.md.

use criterion::{criterion_group, criterion_main, Criterion};
use osr_core::{fingerprint, Arrival, FlowParams, FlowSession, JournaledSession, ServeSession};
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 — deterministic job sizes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

const M: usize = 6;

/// Feeds 8 batches of 8 arrivals (with an advance after each batch)
/// and finishes the session, returning the log length as the
/// optimizer-proof result.
fn drive(mut sess: Box<dyn ServeSession>) -> usize {
    let mut t = 0.0_f64;
    for batch_i in 0..8u64 {
        let batch: Vec<Arrival> = (0..8u64)
            .map(|k| {
                let r = mix(batch_i * 8 + k);
                t += (r & 0xFF) as f64 / 512.0;
                Arrival {
                    release: t,
                    weight: 1.0 + (r >> 8 & 3) as f64,
                    sizes: (0..M)
                        .map(|i| 0.5 + (mix(r ^ (i as u64) << 32) % 500) as f64 / 125.0)
                        .collect(),
                }
            })
            .collect();
        sess.arrive_batch(batch).expect("valid batch");
        sess.advance(t).expect("monotone advance");
    }
    sess.finish().expect("finish").len()
}

fn serve_journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_journal");
    group.bench_function("replay_plain_m6", |b| {
        b.iter(|| {
            drive(Box::new(
                FlowSession::new(FlowParams::new(0.25), M).expect("valid params"),
            ))
        })
    });
    static SEQ: AtomicU64 = AtomicU64::new(0);
    group.bench_function("replay_journaled_m6", |b| {
        b.iter(|| {
            let path = std::env::temp_dir().join(format!(
                "osr-bench-journal-{}-{}.journal",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let inner = Box::new(FlowSession::new(FlowParams::new(0.25), M).expect("valid params"));
            let js = JournaledSession::create(inner, &path, fingerprint("flow:0.25", M, &[]), 32)
                .expect("fresh journal");
            let n = drive(Box::new(js));
            let mut snap = path.as_os_str().to_owned();
            snap.push(".snap");
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(std::path::PathBuf::from(snap)).ok();
            n
        })
    });
    group.finish();
}

criterion_group!(benches, serve_journal);
criterion_main!(benches);
