//! EXP-SCALE (part 2): the data-structure ablation DESIGN.md calls out
//! — the full §2 algorithm with the `O(log n)` treap backend vs the
//! `O(n)` sorted-vector backend, on a single hot machine (worst case
//! for queue length), plus raw structure microbenchmarks.
//!
//! The raw group also runs the **arena vs boxed** treap head-to-head:
//! the superseded `Box`-per-node implementation is kept in
//! `osr_dstruct::treap_boxed` precisely so this bench can keep
//! quantifying what the allocation-free arena buys (see BENCH.md for
//! recorded baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osr_core::dispatch::rebuild_capacity_index;
use osr_core::{DispatchIndex, FlowParams, FlowScheduler, QueueBackend};
use osr_dstruct::{
    AggTreap, BoxedAggTreap, MachineIndex, MachineStats, MaskView, NaiveAggQueue, NodeStats,
    Propagation, SearchMode,
};
use osr_model::{EligMask, InstanceKind, Job, OnlineSet};
use osr_workload::{ArrivalSpec, FlowWorkload, MachineSpec};

fn backend_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_backend_end_to_end");
    for &n in &[2_000usize, 10_000] {
        // Single machine + all-at-once arrivals = maximal queue length.
        let mut w = FlowWorkload::standard(n, 1, 7);
        w.arrivals = ArrivalSpec::Batch {
            per_batch: n / 4,
            gap: 5.0,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        for backend in [QueueBackend::Treap, QueueBackend::Naive] {
            let mut params = FlowParams::new(0.25);
            params.backend = backend;
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}"), n),
                &inst,
                |b, inst| {
                    let sched = FlowScheduler::new(params).unwrap();
                    b.iter(|| sched.run(inst).log.rejected_count());
                },
            );
        }
    }
    group.finish();
}

/// The machine-count sweep of the dispatch argmin: full §2 scheduler
/// on identical machines with Poisson arrivals ∝ m, pruned
/// (tournament-index) vs linear dispatch. Linear is capped at
/// m ≤ 1024 — beyond that its `n·m` exact `λ_ij` evaluations take the
/// suite from seconds to minutes (the `m_scale` experiment records the
/// full-mode numbers).
fn dispatch_m_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_m_sweep");
    for &(m, n) in &[
        (4usize, 2_000usize),
        (64, 2_000),
        (1_024, 4_096),
        (16_384, 2_048),
    ] {
        let mut w = FlowWorkload::standard(n, m, 42);
        w.machine_model = MachineSpec::Identical;
        let inst = w.generate(InstanceKind::FlowTime);
        for dispatch in [DispatchIndex::Pruned, DispatchIndex::Linear] {
            if dispatch == DispatchIndex::Linear && m > 1_024 {
                continue;
            }
            let mut params = FlowParams::new(0.25);
            params.dispatch = dispatch;
            let label = match dispatch {
                DispatchIndex::Pruned => "pruned",
                DispatchIndex::Linear => "linear",
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_m{m}"), n),
                &inst,
                |b, inst| {
                    let sched = FlowScheduler::new(params).unwrap();
                    b.iter(|| sched.run(inst).log.rejected_count());
                },
            );
        }
    }
    group.finish();
}

/// The PR 4 affinity m-sweep: full §2 scheduler on **rack-affinity**
/// workloads (each job eligible on m/groups machines, round-robin
/// racks, 2% everywhere-ineligible arrivals) — the regime where the
/// PR 2/3 index was eligibility-blind and descended into racks full of
/// `∞` entries. Pruned (mask-guided) vs linear; linear capped at
/// m ≤ 1024 like the dense sweep.
fn dispatch_affinity_m_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_affinity_m_sweep");
    // The m = 64 row is the PR 5 target: SearchMode::Flat territory,
    // where the recorded 0.82× came from paying O(log m) ancestor
    // maintenance per mutation for ancestors the flat search never
    // reads — now a single leaf-row write.
    for &(m, n, groups) in &[
        (64usize, 2_048usize, 16usize),
        (1_024, 4_096, 16),
        (16_384, 2_048, 64),
    ] {
        let mut w = FlowWorkload::standard(n, m, 42);
        w.machine_model = MachineSpec::Affinity {
            groups,
            drop_prob: 0.02,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        for dispatch in [DispatchIndex::Pruned, DispatchIndex::Linear] {
            if dispatch == DispatchIndex::Linear && m > 1_024 {
                continue;
            }
            let mut params = FlowParams::new(0.25);
            params.dispatch = dispatch;
            let label = match dispatch {
                DispatchIndex::Pruned => "pruned",
                DispatchIndex::Linear => "linear",
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_m{m}_g{groups}"), n),
                &inst,
                |b, inst| {
                    let sched = FlowScheduler::new(params).unwrap();
                    b.iter(|| sched.run(inst).log.rejected_count());
                },
            );
        }
    }
    group.finish();
}

/// The isolated PR 4 ablation: the tournament search with vs without
/// the eligibility mask, on affinity-shaped state. Every machine's
/// queue is busy (as under a real affinity workload, where each rack
/// serves its own jobs), bounds are flow-shaped, and each searched job
/// is eligible on one round-robin rack. The **blind** variant is
/// exactly the pre-PR-4 closure shape — leaf bound `∞` / eval `None`
/// on ineligible machines, nothing telling the descent which subtrees
/// are empty — so the ratio against the **masked** variant is the
/// isolated cost of eligibility-blindness (gated by `bench_check`).
fn masked_descent(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_descent");
    for &(m, groups) in &[(1_024usize, 16usize), (16_384, 64)] {
        let mut ix = MachineIndex::with_mode(m, SearchMode::Heap);
        for i in 0..m {
            ix.update(
                i,
                MachineStats {
                    count: 1 + (i % 3) as u64,
                    wsum: 4.0 + (i % 5) as f64,
                    min_size: 1.0 + (i % 7) as f64 * 0.25,
                },
            );
        }
        // One mask per rack (machine `i` eligible iff
        // `i % groups == g`), built through the production constructor
        // so the bench measures exactly the mask shape the schedulers
        // hand the search.
        let masks: Vec<EligMask> = (0..groups)
            .map(|g| {
                let sizes: Vec<f64> = (0..m)
                    .map(|i| if i % groups == g { 1.0 } else { f64::INFINITY })
                    .collect();
                EligMask::from_sizes(&sizes)
            })
            .collect();

        // Flow-shaped bound from subtree stats (the §2 expression with
        // p̂ = 2, 1/ε = 4) and an exact λ proxy sitting above it —
        // queues are busy everywhere, so bounds alone prune little and
        // the blind search must discover every rack's `∞`s leaf by
        // leaf.
        let (p, inv_eps) = (2.0f64, 4.0f64);
        let ns_bound = move |s: &NodeStats| {
            let prefix_empty = inv_eps * p + p + (s.min_count as f64) * p;
            let prefix_nonempty = inv_eps * p + (s.min_size + p);
            prefix_empty.min(prefix_nonempty)
        };
        let leaf_bound = move |s: &MachineStats| {
            let prefix_empty = inv_eps * p + p + (s.count as f64) * p;
            let prefix_nonempty = inv_eps * p + (s.min_size + p);
            prefix_empty.min(prefix_nonempty)
        };
        let exact = move |i: usize| {
            let count = 1.0 + (i % 3) as f64;
            inv_eps * p + ((1.0 + (i % 7) as f64 * 0.25) + p) + count * p + (i % 11) as f64 * 0.01
        };

        fn view(mask: &EligMask) -> MaskView<'_> {
            let (words, summary) = mask.word_layers().expect("rack masks are restricted");
            MaskView::Words { words, summary }
        }

        // Sanity once, outside the timed loops: both variants agree on
        // every rack.
        for (g, mask) in masks.iter().enumerate() {
            let blind = ix.search(
                |s, _, _| ns_bound(s),
                |i, s| {
                    if i % groups == g {
                        leaf_bound(s)
                    } else {
                        f64::INFINITY
                    }
                },
                |i| (i % groups == g).then(|| exact(i)),
            );
            let masked = ix.search_masked(
                view(mask),
                |s, _, _| ns_bound(s),
                |_, s| leaf_bound(s),
                |i| (i % groups == g).then(|| exact(i)),
            );
            assert_eq!(blind, masked, "m={m} g={g}");
        }

        group.bench_function(format!("blind_m{m}_g{groups}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for g in 0..groups {
                    let r = ix.search(
                        |s, _, _| ns_bound(s),
                        |i, s| {
                            if i % groups == g {
                                leaf_bound(s)
                            } else {
                                f64::INFINITY
                            }
                        },
                        |i| (i % groups == g).then(|| exact(i)),
                    );
                    acc += r.expect("rack is non-empty").1;
                }
                acc
            });
        });
        group.bench_function(format!("masked_m{m}_g{groups}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for (g, mask) in masks.iter().enumerate() {
                    let r = ix.search_masked(
                        view(mask),
                        |s, _, _| ns_bound(s),
                        |_, s| leaf_bound(s),
                        |i| (i % groups == g).then(|| exact(i)),
                    );
                    acc += r.expect("rack is non-empty").1;
                }
                acc
            });
        });
    }
    group.finish();
}

/// The PR 5 update-side ablation: eager vs lazy ancestor propagation
/// under the dispatch loop's real mutation pattern — a run of `r`
/// queue mutations on one machine (completions/starts between two
/// dispatches), then one argmin search. Eager pays `r` full `O(log m)`
/// ancestor rebuilds whose intermediate values are dead writes; lazy
/// pays `r` leaf-row stores plus one batched repair sweep at the
/// search. Heap mode is forced even at m = 64 so both variants
/// actually maintain ancestors (flat mode has none at all and would
/// trivialize the comparison).
fn update_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_churn");
    for &m in &[64usize, 1_024, 16_384] {
        for &ratio in &[1usize, 8, 64] {
            for (label, prop) in [("eager", Propagation::Eager), ("lazy", Propagation::Lazy)] {
                group.bench_function(format!("{label}_m{m}_r{ratio}"), |b| {
                    let mut ix = MachineIndex::with_config(m, SearchMode::Heap, prop);
                    // Busy queues everywhere except machine 0, which
                    // stays idle — the search's bounds prune hard (the
                    // common many-idle-machines regime), so the
                    // per-iteration cost is dominated by the mutation
                    // side under ablation, not by exact evaluations.
                    for i in 1..m {
                        ix.update(
                            i,
                            MachineStats {
                                count: 3 + (i % 3) as u64,
                                wsum: 14.0 + (i % 5) as f64,
                                min_size: 3.0 + (i % 7) as f64 * 0.25,
                            },
                        );
                    }
                    let mut hot = 1usize;
                    let mut tick = 0u64;
                    b.iter(|| {
                        // `ratio` queue mutations on the hot machine —
                        // the run of completions/starts between two
                        // dispatches, each a dead ancestor write under
                        // eager propagation…
                        for _ in 0..ratio {
                            tick = tick.wrapping_add(1);
                            ix.update(
                                hot,
                                MachineStats {
                                    count: 3 + tick % 4,
                                    wsum: 12.0 + (tick % 9) as f64,
                                    min_size: 3.0 + (tick % 5) as f64 * 0.5,
                                },
                            );
                        }
                        hot = 1 + (hot % (m - 1));
                        // …then one dispatch search (idle machines
                        // bound to 1.0, busy to 5.0: the descent walks
                        // one root-to-leaf path and stops — flow's
                        // empty-queue fast path shape).
                        ix.search(
                            |s, _, _| if s.min_count == 0 { 1.0 } else { 5.0 },
                            |_, s| if s.count == 0 { 1.0 } else { 5.0 },
                            |i| Some(if i == 0 { 1.0 } else { 5.0 }),
                        )
                    });
                });
            }
        }
    }
    group.finish();
}

/// The PR 5 bound-tightening ablation: global vs rack-local `p̂` in the
/// subtree bounds of the masked heap descent, on strided rack-affinity
/// masks with *heterogeneous* sizes across each rack (the regime where
/// the global p̂ advertises every subtree at the rack's single cheapest
/// machine and the descent exactly-probes rack members the rack-local
/// minima would have priced out). Eligible counts sit above the sparse
/// bit-walk threshold so the true mask-guided descent runs. Uses the
/// production `Job` caches (`Job::rack_p_hat`) end to end.
fn rack_phat(c: &mut Criterion) {
    let mut group = c.benchmark_group("rack_phat");
    for &(m, groups) in &[(4_096usize, 16usize), (16_384, 64)] {
        let mut ix = MachineIndex::with_config(m, SearchMode::Heap, Propagation::Lazy);
        for i in 0..m {
            ix.update(
                i,
                MachineStats {
                    count: 1 + (i % 3) as u64,
                    wsum: 4.0 + (i % 5) as f64,
                    min_size: 1.0 + (i % 7) as f64 * 0.25,
                },
            );
        }
        // One job per rack, sizes varying across the rack's machines
        // (cheap near the front, expensive toward the back) — the
        // production constructor derives mask + global p̂ + rack p̂.
        let jobs: Vec<Job> = (0..groups)
            .map(|g| {
                let sizes: Vec<f64> = (0..m)
                    .map(|i| {
                        if i % groups == g {
                            1.0 + (i as f64 / m as f64) * 40.0
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect();
                Job::new(g as u32, 0.0, sizes)
            })
            .collect();
        let inv_eps = 4.0f64;

        let exact = move |job: &Job, i: usize| {
            let p = job.sizes[i];
            let min_size = 1.0 + (i % 7) as f64 * 0.25;
            let count = 1.0 + (i % 3) as f64;
            inv_eps * p + (min_size + p) + count * p
        };

        // Sanity once, outside the timed loops: both bound variants
        // return the same argmin on every rack (rack-local minima only
        // tighten sound bounds, they cannot move the answer).
        for job in &jobs {
            let mut results = Vec::new();
            for rack_local in [false, true] {
                let (words, summary) = job.elig().word_layers().unwrap();
                let ph_global = job.p_hat();
                let rack = job.rack_p_hat().unwrap();
                let r = ix.search_masked(
                    MaskView::Words { words, summary },
                    |s, lo, span| {
                        let ph = if rack_local {
                            rack.range_min(lo, span)
                        } else {
                            ph_global
                        };
                        let a = inv_eps * ph + ph + (s.min_count as f64) * ph;
                        a.min(inv_eps * ph + (s.min_size + ph))
                    },
                    |i, s| {
                        let p = job.sizes[i];
                        let a = inv_eps * p + p + (s.count as f64) * p;
                        a.min(inv_eps * p + (s.min_size + p))
                    },
                    |i| job.sizes[i].is_finite().then(|| exact(job, i)),
                );
                results.push(r);
            }
            assert_eq!(results[0], results[1], "m={m} job={}", job.id);
        }

        for (label, rack_local) in [("global", false), ("rack", true)] {
            group.bench_function(format!("{label}_m{m}_g{groups}"), |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for job in &jobs {
                        let (words, summary) = job.elig().word_layers().unwrap();
                        let ph_global = job.p_hat();
                        let rack = job.rack_p_hat().unwrap();
                        let r = ix.search_masked(
                            MaskView::Words { words, summary },
                            |s, lo, span| {
                                let ph = if rack_local {
                                    rack.range_min(lo, span)
                                } else {
                                    ph_global
                                };
                                let a = inv_eps * ph + ph + (s.min_count as f64) * ph;
                                a.min(inv_eps * ph + (s.min_size + ph))
                            },
                            |i, s| {
                                let p = job.sizes[i];
                                let a = inv_eps * p + p + (s.count as f64) * p;
                                a.min(inv_eps * p + (s.min_size + p))
                            },
                            |i| job.sizes[i].is_finite().then(|| exact(job, i)),
                        );
                        acc += r.expect("rack is non-empty").1;
                    }
                    acc
                });
            });
        }
    }
    group.finish();
}

/// The PR 6 elastic-pool resize ablation: absorbing a rack-sized
/// capacity incident (8 machines crash, the pool runs degraded, the
/// rack rejoins) with the **incremental** tombstone/join path vs the
/// **rebuild-from-scratch oracle** of `CapacityIndexMode::Rebuild`,
/// which reconstructs the whole index after *every* capacity event —
/// exactly what `sync_capacity_index` does per event in the
/// schedulers. A dispatch search runs after each burst (degraded and
/// recovered), so both variants pay the search they exist to serve.
/// The oracle's job is bit-identical answers (CI diffs the CSVs);
/// this group prices what the incremental path saves.
fn elastic_resize(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastic_resize");
    let m = 1_024usize;
    let rack = 8usize;
    let stats = |i: usize| MachineStats {
        count: 3 + (i % 3) as u64,
        wsum: 14.0 + (i % 5) as f64,
        min_size: 3.0 + (i % 7) as f64 * 0.25,
    };
    fn probe(ix: &mut MachineIndex) -> Option<(usize, f64)> {
        // Busy-everywhere bounds: the descent does real comparisons on
        // every level (tombstoned leaves are skipped by the search).
        ix.search(
            |s, _, _| 1.0 + s.min_size,
            |_, s| 1.0 + s.min_size,
            |i| Some(1.0 + 3.0 + (i % 7) as f64 * 0.25 + (i % 11) as f64 * 0.01),
        )
    }

    // Sanity once, outside the timed loops: after an incremental
    // crash+rejoin cycle the index answers exactly like the oracle.
    {
        let mut ix = MachineIndex::new(m);
        let mut online = OnlineSet::all_online(m);
        for i in 0..m {
            ix.update(i, stats(i));
        }
        for i in 128..128 + rack {
            ix.tombstone(i);
            online.set_offline(i);
        }
        let mut oracle = rebuild_capacity_index(m, &online, stats);
        assert_eq!(
            probe(&mut ix),
            probe(&mut oracle),
            "degraded index diverged"
        );
        for i in 128..128 + rack {
            ix.join(i, stats(i));
            online.set_online(i);
        }
        let mut oracle = rebuild_capacity_index(m, &online, stats);
        assert_eq!(
            probe(&mut ix),
            probe(&mut oracle),
            "recovered index diverged"
        );
    }

    group.bench_function(format!("incremental_m{m}"), |b| {
        let mut ix = MachineIndex::new(m);
        for i in 0..m {
            ix.update(i, stats(i));
        }
        let mut base = 0usize;
        b.iter(|| {
            // 8 crashes, a degraded search, 8 rejoins, a recovered
            // search — one full incident absorbed in place.
            for i in base..base + rack {
                ix.tombstone(i);
            }
            let degraded = probe(&mut ix);
            for i in base..base + rack {
                ix.join(i, stats(i));
            }
            base = (base + rack) % (m - rack);
            (degraded, probe(&mut ix))
        });
    });

    group.bench_function(format!("rebuild_m{m}"), |b| {
        let mut online = OnlineSet::all_online(m);
        let mut ix = rebuild_capacity_index(m, &online, stats);
        let mut base = 0usize;
        b.iter(|| {
            // The same incident, but the oracle rebuilds after every
            // one of the 16 events — the per-event contract of
            // `CapacityIndexMode::Rebuild`.
            for i in base..base + rack {
                online.set_offline(i);
                ix = rebuild_capacity_index(m, &online, stats);
            }
            let degraded = probe(&mut ix);
            for i in base..base + rack {
                online.set_online(i);
                ix = rebuild_capacity_index(m, &online, stats);
            }
            base = (base + rack) % (m - rack);
            (degraded, probe(&mut ix))
        });
    });
    group.finish();
}

/// The PR 9 kernel ablation: the four chunked `[T;4]` hot-loop
/// kernels against their scalar oracle twins, isolated from the
/// schedulers, at the three pool sizes the acceptance gate names.
/// Each pair runs the *same* inputs through `KernelMode::Chunked` and
/// `KernelMode::Scalar`; the scalar twin is the bit-exact oracle the
/// equivalence suites pin, so the only degree of freedom here is
/// speed. Honest expectations (recorded in BENCH.md "PR 9"):
/// `flat_scan` and `dirty_sweep` are the real lane wins; `agg_pass`
/// is dependency-serialized in both modes (treap parent-child chains)
/// and sits at ≈ 1×; `mask_walk` chunks only the word-math half
/// around the inherently serial set-bit walk.
fn kernel_ablation(c: &mut Criterion) {
    use osr_dstruct::kernel::{
        agg_fix4, bound_min4, intersect_words4, node_fix4, popcount_capped4, summarize_words4,
        walk_set_bits, AggFix, AggRow, KernelMode, LANES,
    };
    let mut group = c.benchmark_group("kernel_ablation");
    for &m in &[64usize, 1_024, 16_384] {
        let rows: Vec<MachineStats> = (0..m)
            .map(|i| MachineStats {
                count: 1 + (i % 3) as u64,
                wsum: 4.0 + (i % 5) as f64,
                min_size: 1.0 + (i % 7) as f64 * 0.25,
            })
            .collect();
        let (p, inv_eps) = (2.0f64, 4.0f64);
        for (label, mode) in [
            ("chunked", KernelMode::Chunked),
            ("scalar", KernelMode::Scalar),
        ] {
            // 1. The flat bound scan: fused per-leaf dispatch-bound
            // evaluate + running argmin over the leaf-row table — the
            // SearchMode::Flat hot loop of `search_masked_rows`.
            group.bench_function(format!("flat_scan_{label}_m{m}"), |b| {
                let mut out = Vec::with_capacity(m);
                b.iter(|| {
                    bound_min4(
                        mode,
                        &rows,
                        &mut out,
                        |_, quad, lanes| {
                            for k in 0..LANES {
                                let s = &quad[k];
                                let a = inv_eps * p + p + (s.count as f64) * p;
                                lanes[k] = a.min(inv_eps * p + (s.min_size + p));
                            }
                        },
                        |_, s| {
                            let a = inv_eps * p + p + (s.count as f64) * p;
                            a.min(inv_eps * p + (s.min_size + p))
                        },
                    )
                });
            });

            // 2. The dirty-leaf sweep: the full per-level ancestor
            // recompute cascade (leaves → root), i.e. the worst-case
            // batched repair the lazy propagation path pays at a
            // search after every leaf went dirty.
            let leaves: Vec<NodeStats> = rows
                .iter()
                .map(|s| NodeStats {
                    min_count: s.count,
                    min_wsum: s.wsum,
                    max_wsum: s.wsum,
                    min_size: s.min_size,
                })
                .collect();
            group.bench_function(format!("dirty_sweep_{label}_m{m}"), |b| {
                let mut levels: Vec<Vec<NodeStats>> = Vec::new();
                let mut w = m / 2;
                while w >= 1 {
                    levels.push(vec![leaves[0]; w]);
                    if w == 1 {
                        break;
                    }
                    w /= 2;
                }
                b.iter(|| {
                    node_fix4(mode, &leaves, &mut levels[0]);
                    for i in 1..levels.len() {
                        let (lo, hi) = levels.split_at_mut(i);
                        node_fix4(mode, &lo[i - 1], &mut hi[0]);
                    }
                    levels.last().unwrap()[0].min_size
                });
            });

            // 3. The treap aggregate pass: a full bottom-up rebuild of
            // a heap-shaped arena through `AggFix` batches — the
            // `fix_path_rev` shape at maximal batch size. Dependency-
            // serialized in BOTH modes (entry k+1 reads what entry k
            // wrote), so the honest expectation is ≈ 1×.
            let nil = u32::MAX;
            let batch: Vec<AggFix> = (0..m as u32)
                .rev()
                .map(|n| AggFix {
                    node: n,
                    left: if 2 * n + 1 < m as u32 { 2 * n + 1 } else { nil },
                    right: if 2 * n + 2 < m as u32 { 2 * n + 2 } else { nil },
                    weight: 1.0 + (n % 7) as f64,
                })
                .collect();
            group.bench_function(format!("agg_pass_{label}_m{m}"), |b| {
                let mut aggs = vec![AggRow::ZERO; m];
                b.iter(|| {
                    agg_fix4(mode, &mut aggs, nil, &batch);
                    aggs[0].sum
                });
            });

            // 4. The mask word walk: the sparse-search admission path
            // exactly as the consumer runs it — EligMask ∩ OnlineSet
            // intersect (with summary maintenance), the capped
            // popcount admission test, a summary rebuild of the
            // surviving mask (the shard-rebase shape), then the
            // set-bit candidate walk. The eligibility mask is sparse
            // (16 machines scattered over the pool, restricted-
            // assignment shape) because that is the only regime where
            // the walk runs at all — dense masks fail the capped
            // popcount and take the heap descent instead. The walk
            // itself is serial by nature; the chunked variant
            // vectorizes the word math around it.
            let words = m.div_ceil(64);
            let a: Vec<u64> = (0..words)
                .map(|k| !(1u64 << (k % 64))) // near-full online set
                .collect();
            let stride = (m / 16).max(1);
            let mut bw = vec![0u64; words];
            for i in (0..m).step_by(stride) {
                bw[i / 64] |= 1u64 << (i % 64);
            }
            group.bench_function(format!("mask_walk_{label}_m{m}"), |b| {
                let mut out_words = vec![0u64; words];
                let mut out_summary = vec![0u64; words.div_ceil(64)];
                b.iter(|| {
                    out_summary.fill(0);
                    let any = intersect_words4(mode, &a, &bw, &mut out_words, &mut out_summary);
                    let sparse = popcount_capped4(mode, &out_words, 64);
                    out_summary.fill(0);
                    summarize_words4(mode, &out_words, &mut out_summary);
                    let mut acc = 0usize;
                    walk_set_bits(&out_words, |i| acc = acc.wrapping_add(i));
                    (any, sparse, acc)
                });
            });
        }
    }
    group.finish();
}

/// The dispatch-shaped microbench: interleaved inserts and `agg_le`
/// probes over a bounded key universe (steady-state queue churn).
fn insert_query<T, I, Q>(n: u32, mut insert: I, mut query: Q, mut t: T) -> usize
where
    I: FnMut(&mut T, u32, f64),
    Q: FnMut(&T, u32) -> usize,
{
    let mut acc = 0usize;
    for k in 0..n {
        let key = (k.wrapping_mul(2654435761)) % 1000;
        insert(&mut t, key, key as f64);
        acc += query(&t, key / 2);
    }
    acc
}

fn raw_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg_structures_raw");
    for &n in &[10_000u32, 100_000] {
        group.bench_with_input(BenchmarkId::new("arena_treap", n), &n, |b, &n| {
            b.iter(|| {
                insert_query(
                    n,
                    |t: &mut AggTreap<u32>, k, w| t.insert(k, w),
                    |t, k| t.agg_le(&k).count,
                    AggTreap::new(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("boxed_treap", n), &n, |b, &n| {
            b.iter(|| {
                insert_query(
                    n,
                    |t: &mut BoxedAggTreap<u32>, k, w| t.insert(k, w),
                    |t, k| t.agg_le(&k).count,
                    BoxedAggTreap::new(),
                )
            });
        });
        // The naive baseline is O(n) per op — cap it at the smaller size
        // to keep the suite's wall clock sane.
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("naive_vec", n), &n, |b, &n| {
                b.iter(|| {
                    insert_query(
                        n,
                        |t: &mut NaiveAggQueue<u32>, k, w| t.insert(k, w),
                        |t, k| t.agg_le(&k).count,
                        NaiveAggQueue::new(),
                    )
                });
            });
        }
    }
    group.finish();
}

/// The PR 3 p̂ ablation: per-arrival `O(m)` rescan of `job.sizes`
/// (what every scheduler did before the precompute) vs the cached
/// `Job::p_hat()` lookup, over a whole instance's arrivals. The cached
/// path is what the dispatch hot loop now executes per arrival.
fn p_hat_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("p_hat_precompute");
    for &(m, n) in &[(64usize, 2_000usize), (1_024, 2_000), (16_384, 512)] {
        let inst = FlowWorkload::standard(n, m, 42).generate(InstanceKind::FlowTime);
        group.bench_with_input(
            BenchmarkId::new(format!("scan_m{m}"), n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    inst.jobs()
                        .iter()
                        .map(|j| {
                            j.sizes
                                .iter()
                                .copied()
                                .filter(|p| p.is_finite())
                                .fold(f64::INFINITY, f64::min)
                        })
                        .sum::<f64>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("cached_m{m}"), n),
            &inst,
            |b, inst| {
                b.iter(|| inst.jobs().iter().map(|j| j.p_hat()).sum::<f64>());
            },
        );
    }
    group.finish();
}

/// Steady-state churn: a warm queue of fixed size absorbing
/// pop-first + insert pairs — the free-list reuse path the dispatch
/// loop actually exercises.
fn steady_state_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("treap_steady_churn");
    for &live in &[1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("arena", live), &live, |b, &live| {
            let mut t = AggTreap::from_sorted((0..live).map(|k| (k, 1.0)));
            let mut next_key = live;
            b.iter(|| {
                let popped = t.pop_first().unwrap().0;
                t.insert(next_key, 1.0);
                next_key = next_key.wrapping_add(1);
                popped
            });
        });
        group.bench_with_input(BenchmarkId::new("boxed", live), &live, |b, &live| {
            let mut t = BoxedAggTreap::new();
            for k in 0..live {
                t.insert(k, 1.0);
            }
            let mut next_key = live;
            b.iter(|| {
                let popped = t.pop_first().unwrap().0;
                t.insert(next_key, 1.0);
                next_key = next_key.wrapping_add(1);
                popped
            });
        });
    }
    group.finish();
}

/// Bulk construction: `from_sorted` vs n incremental inserts.
fn bulk_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("treap_bulk_build");
    for &n in &[10_000u32, 100_000] {
        let entries: Vec<(u32, f64)> = (0..n).map(|k| (k, k as f64)).collect();
        group.bench_with_input(
            BenchmarkId::new("from_sorted", n),
            &entries,
            |b, entries| {
                b.iter(|| AggTreap::from_sorted(entries.iter().copied()).len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental", n),
            &entries,
            |b, entries| {
                b.iter(|| {
                    let mut t = AggTreap::with_capacity(entries.len());
                    for &(k, w) in entries {
                        t.insert(k, w);
                    }
                    t.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = backend_ablation, dispatch_m_sweep, dispatch_affinity_m_sweep, masked_descent, update_churn, rack_phat, elastic_resize, kernel_ablation, p_hat_precompute, raw_structures, steady_state_churn, bulk_build
}
criterion_main!(benches);
