//! EXP-SCALE (part 2): the data-structure ablation DESIGN.md calls out
//! — the full §2 algorithm with the `O(log n)` treap backend vs the
//! `O(n)` sorted-vector backend, on a single hot machine (worst case
//! for queue length), plus raw structure microbenchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osr_core::{FlowParams, FlowScheduler, QueueBackend};
use osr_dstruct::{AggTreap, NaiveAggQueue};
use osr_model::InstanceKind;
use osr_workload::{ArrivalModel, FlowWorkload};

fn backend_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_backend_end_to_end");
    for &n in &[2_000usize, 10_000] {
        // Single machine + all-at-once arrivals = maximal queue length.
        let mut w = FlowWorkload::standard(n, 1, 7);
        w.arrivals = ArrivalModel::Batch { per_batch: n / 4, gap: 5.0 };
        let inst = w.generate(InstanceKind::FlowTime);
        for backend in [QueueBackend::Treap, QueueBackend::Naive] {
            let mut params = FlowParams::new(0.25);
            params.backend = backend;
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}"), n),
                &inst,
                |b, inst| {
                    let sched = FlowScheduler::new(params).unwrap();
                    b.iter(|| sched.run(inst).log.rejected_count());
                },
            );
        }
    }
    group.finish();
}

fn raw_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg_structures_raw");
    let n = 10_000u32;
    group.bench_function("treap_insert_query", |b| {
        b.iter(|| {
            let mut t = AggTreap::new();
            let mut acc = 0usize;
            for k in 0..n {
                let key = (k.wrapping_mul(2654435761)) % 1000;
                t.insert(key, key as f64);
                acc += t.agg_le(&(key / 2)).count;
            }
            acc
        });
    });
    group.bench_function("naive_insert_query", |b| {
        b.iter(|| {
            let mut t = NaiveAggQueue::new();
            let mut acc = 0usize;
            for k in 0..n {
                let key = (k.wrapping_mul(2654435761)) % 1000;
                t.insert(key, key as f64);
                acc += t.agg_le(&(key / 2)).count;
            }
            acc
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = backend_ablation, raw_structures
}
criterion_main!(benches);
