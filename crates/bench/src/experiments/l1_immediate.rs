//! EXP-L1 — Lemma 1: immediate-rejection policies blow up as `Ω(√Δ)`
//! on the adaptive construction, while the SPAA'18 algorithm (whose
//! Rule 1 rejects *in hindsight*) stays flat.
//!
//! Protocol (two-phase, sound for any policy that cannot see the
//! future): run the policy on the phase-1 big jobs, observe the start
//! time of its first committed big job, materialize the full adaptive
//! instance, rerun, and normalize by the adversary's schedule cost.

use osr_baselines::ImmediateRejectScheduler;
use osr_core::FlowScheduler;
use osr_sim::ValidationConfig;
use osr_workload::adversarial::{lemma1_adversary_flow, lemma1_big_jobs, lemma1_full_instance};

use super::{must_validate, par_replicates};
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let eps = 0.5;
    let ls: &[f64] = if quick {
        &[5.0, 10.0, 20.0]
    } else {
        &[5.0, 10.0, 20.0, 40.0, 80.0]
    };

    let mut table = Table::new(
        "EXP-L1: immediate rejection vs hindsight rejection on the Lemma-1 instance",
        &[
            "L",
            "delta",
            "sqrt_delta",
            "imm_ratio",
            "spaa_ratio",
            "imm/sqrt_delta",
        ],
    );
    table.note("ratio = flow_all / adversary schedule cost; Lemma 1 predicts imm_ratio = Omega(sqrt(delta))");

    // The L sweep fans out; each point runs its own two-phase protocol.
    for row in par_replicates(ls.to_vec(), |l| {
        // Phase 1: where does the immediate policy start its first big
        // job?
        let phase1 = lemma1_big_jobs(eps, l);
        let imm = ImmediateRejectScheduler::above_mean(eps, 3.0);
        let (log1, _) = imm.run(&phase1);
        let first_start = log1
            .executions()
            .map(|(_, e)| e.start)
            .fold(f64::INFINITY, f64::min);
        assert!(first_start.is_finite(), "policy must start some big job");

        // Phase 2: the flood.
        let full = lemma1_full_instance(eps, l, first_start);
        let adv = lemma1_adversary_flow(eps, l, first_start);

        let (imm_log, _) = imm.run(&full);
        let imm_m = must_validate("l1", &full, &imm_log, &ValidationConfig::flow_time());
        let imm_ratio = imm_m.flow.flow_all / adv;

        let spaa = FlowScheduler::with_eps(eps).unwrap().run(&full);
        let spaa_m = must_validate("l1", &full, &spaa.log, &ValidationConfig::flow_time());
        let spaa_ratio = spaa_m.flow.flow_all / adv;

        let delta = l * l;
        vec![
            fmt_g4(l),
            fmt_g4(delta),
            fmt_g4(delta.sqrt()),
            fmt_g4(imm_ratio),
            fmt_g4(spaa_ratio),
            fmt_g4(imm_ratio / delta.sqrt()),
        ]
    }) {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_policy_grows_and_spaa_does_not() {
        let tables = run(true);
        let t = &tables[0];
        let first_imm: f64 = t.rows.first().unwrap()[3].parse().unwrap();
        let last_imm: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        let first_spaa: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last_spaa: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        // The immediate policy's ratio grows with L (by at least 2× over
        // a 4× L range); the SPAA'18 ratio grows much slower.
        assert!(
            last_imm > first_imm * 2.0,
            "immediate ratio should grow: {first_imm} → {last_imm}"
        );
        let imm_growth = last_imm / first_imm;
        let spaa_growth = (last_spaa / first_spaa).max(1.0);
        assert!(
            imm_growth > 1.8 * spaa_growth,
            "immediate growth {imm_growth} vs spaa growth {spaa_growth}"
        );
    }
}
