//! EXP-DUAL — Lemmas 4 and 6: every dual constraint the analysis
//! relies on holds on real runs, checked exactly (§2, at all step
//! breakpoints) and by dense sampling (§3).

use osr_core::energyflow::{check_energyflow_dual, EnergyFlowParams, EnergyFlowScheduler};
use osr_core::flowtime::{check_dual_feasibility, FlowScheduler};
use osr_model::InstanceKind;
use osr_workload::{FlowWorkload, WeightSpec};

use super::par_replicates;
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 120 } else { 400 };
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    };

    let mut t2 = Table::new(
        "EXP-DUAL (Lemma 4): section-2 dual constraints, exact breakpoint check",
        &[
            "eps",
            "m",
            "seed",
            "constraints",
            "violations",
            "min_margin",
        ],
    );
    // The whole eps × m × seed cross product fans out; each cell is
    // self-seeded and the rows land in cross-product order.
    let mut cells: Vec<(f64, usize, u64)> = Vec::new();
    for &eps in &[0.2, 0.5, 1.0] {
        for &m in &[1usize, 3] {
            for &seed in &seeds {
                cells.push((eps, m, seed));
            }
        }
    }
    for row in par_replicates(cells, |(eps, m, seed)| {
        let inst = FlowWorkload::standard(n, m, seed).generate(InstanceKind::FlowTime);
        let out = FlowScheduler::with_eps(eps).unwrap().run(&inst);
        let audit = check_dual_feasibility(&inst, &out.dual, usize::MAX);
        assert!(
            audit.is_feasible(),
            "Lemma 4 violated at eps={eps}, m={m}, seed={seed}: {:?}",
            audit.violations.first()
        );
        vec![
            fmt_g4(eps),
            m.to_string(),
            seed.to_string(),
            audit.constraints_checked.to_string(),
            audit.violations.len().to_string(),
            fmt_g4(audit.min_margin),
        ]
    }) {
        t2.row(row);
    }

    let mut t3 = Table::new(
        "EXP-DUAL (Lemma 6): section-3 dual constraints, sampled check",
        &[
            "eps",
            "alpha",
            "seed",
            "samples",
            "violations",
            "min_margin",
        ],
    );
    let grid = if quick { 25 } else { 60 };
    let mut cells: Vec<(f64, f64, u64)> = Vec::new();
    for &(eps, alpha) in &[(0.3, 2.0), (0.5, 3.0), (0.2, 2.5)] {
        for &seed in seeds.iter().take(3) {
            cells.push((eps, alpha, seed));
        }
    }
    for row in par_replicates(cells, |(eps, alpha, seed)| {
        let mut w = FlowWorkload::standard(n.min(150), 2, 50 + seed);
        w.weights = WeightSpec::Uniform { lo: 1.0, hi: 6.0 };
        let inst = w.generate(InstanceKind::FlowEnergy);
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha))
            .unwrap()
            .run(&inst);
        let audit = check_energyflow_dual(&inst, &out, usize::MAX, grid);
        assert!(
            audit.is_feasible(),
            "Lemma 6 violated at eps={eps}, alpha={alpha}, seed={seed}: {:?}",
            audit.violations.first()
        );
        vec![
            fmt_g4(eps),
            fmt_g4(alpha),
            seed.to_string(),
            audit.samples_checked.to_string(),
            audit.violations.len().to_string(),
            fmt_g4(audit.min_margin),
        ]
    }) {
        t3.row(row);
    }

    vec![t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_audits_pass_with_nonnegative_margins() {
        for t in run(true) {
            assert!(!t.rows.is_empty());
            for row in &t.rows {
                let violations: usize = row[4].parse().unwrap();
                assert_eq!(violations, 0);
                let margin: f64 = row[5].parse().unwrap();
                assert!(margin > -1e-7, "negative margin in {row:?}");
            }
        }
    }
}
