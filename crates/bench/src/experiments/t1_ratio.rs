//! EXP-T1-RATIO — Theorem 1: measured competitive ratio stays under
//! `2((1+ε)/ε)²` and rejections stay under the `2ε` budget, across the
//! `ε` sweep, machine counts and seeds.
//!
//! The denominator is the **certified** lower bound from the
//! algorithm's own feasible dual (`objective/2`), combined with the
//! trivial and (for `m = 1`) SRPT bounds — so the reported ratio is an
//! upper estimate of the true competitive ratio.

use osr_baselines::flow_lower_bound;
use osr_core::bounds::{flowtime_competitive_bound, flowtime_rejection_budget};
use osr_core::{FlowParams, FlowScheduler};
use osr_model::InstanceKind;
use osr_sim::ValidationConfig;
use osr_workload::FlowWorkload;

use super::{max, mean, must_validate, par_replicates};
use crate::table::{fmt_g4, Table};

/// Runs the experiment; `quick` trims sizes for tests.
pub fn run(quick: bool) -> Vec<Table> {
    let eps_sweep = [0.1, 0.2, 1.0 / 3.0, 0.5, 0.75, 1.0];
    let machine_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 10] };
    let n = if quick { 300 } else { 2000 };
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };

    let mut table = Table::new(
        "EXP-T1-RATIO: flow-time competitive ratio vs eps",
        &[
            "eps",
            "m",
            "n",
            "ratio_mean",
            "ratio_max",
            "bound",
            "rej_frac",
            "budget",
            "lb_kind",
        ],
    );
    table.note(
        "ratio = flow_all / certified LB (dual/2 ∨ trivial ∨ SRPT); upper estimate of true ratio",
    );

    for &m in machine_counts {
        for &eps in &eps_sweep {
            // Seeds fan out on the rayon pool; each replicate's RNG
            // stream comes from its own seed, so the table is identical
            // for any worker count.
            let results: Vec<(f64, f64, &'static str)> = par_replicates(seeds.clone(), |seed| {
                let inst = FlowWorkload::standard(n, m, seed).generate(InstanceKind::FlowTime);
                let sched = FlowScheduler::new(FlowParams::new(eps)).unwrap();
                let out = sched.run(&inst);
                let metrics =
                    must_validate("t1_ratio", &inst, &out.log, &ValidationConfig::flow_time());
                let lb = flow_lower_bound(&inst, Some(out.dual.objective()));
                let kind = if lb.value == lb.dual_half {
                    "dual"
                } else if Some(lb.value) == lb.srpt {
                    "srpt"
                } else {
                    "trivial"
                };
                (
                    metrics.flow.flow_all / lb.value,
                    metrics.flow.rejected_fraction(),
                    kind,
                )
            });

            let ratios: Vec<f64> = results.iter().map(|r| r.0).collect();
            let rejs: Vec<f64> = results.iter().map(|r| r.1).collect();
            let bound = flowtime_competitive_bound(eps);
            let budget = flowtime_rejection_budget(eps);
            table.row(vec![
                fmt_g4(eps),
                m.to_string(),
                n.to_string(),
                fmt_g4(mean(&ratios)),
                fmt_g4(max(&ratios)),
                fmt_g4(bound),
                fmt_g4(mean(&rejs)),
                fmt_g4(budget),
                results[0].2.to_string(),
            ]);

            // Hard claims of Theorem 1 (budget is exact; the ratio
            // comparison uses the certified-LB over-estimate, so only
            // soft-check it).
            for &r in &rejs {
                assert!(
                    r <= budget + 1e-9,
                    "rejection budget violated: {r} > {budget} at eps={eps}"
                );
            }
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_sweep() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 2 * 6); // 2 machine counts × 6 eps values
                                         // Every measured mean ratio must sit below the theorem curve —
                                         // the certified LB is tight enough on these workloads.
        for row in &t.rows {
            let ratio: f64 = row[3].parse().unwrap();
            let bound: f64 = row[5].parse().unwrap();
            assert!(ratio > 0.0);
            assert!(
                ratio <= bound,
                "measured {ratio} above Theorem-1 bound {bound} (row {row:?})"
            );
        }
    }
}
