//! EXP-LOAD — behaviour across offered load.
//!
//! The theorems are worst-case; this experiment maps how the algorithm
//! actually behaves as a system crosses from underload into overload:
//! the offered load `ρ` (arrival rate × mean size / capacity) sweeps
//! from 0.4 to 2.0. In overload (`ρ > 1`), *any* schedule serving all
//! jobs has unbounded flow as n grows — rejection is what keeps the
//! system stable, and the rejected fraction should track the excess
//! load while never crossing the `2ε` budget.

use osr_baselines::flow_lower_bound;
use osr_core::flowtime::WeightedFlowScheduler;
use osr_core::FlowScheduler;
use osr_model::InstanceKind;
use osr_sim::{SummaryStats, ValidationConfig};
use osr_workload::{ArrivalSpec, FlowWorkload, SizeSpec};

use super::{must_validate, par_replicates};
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let eps = 0.25;
    let n = if quick { 400 } else { 2000 };
    let machines = 4;
    let rhos: &[f64] = if quick {
        &[0.5, 1.0, 1.5]
    } else {
        &[0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0]
    };

    let mut table = Table::new(
        "EXP-LOAD: behaviour vs offered load (eps = 0.25, m = 4)",
        &[
            "rho",
            "ratio",
            "rej_frac",
            "budget",
            "mean_flow",
            "p99_flow",
            "wflow_ext_ratio",
        ],
    );
    table.note("rho = arrival rate × mean size / machine count; rho > 1 is overload");
    table.note(
        "wflow_ext_ratio: the weighted-extension scheduler on the same instance (unit weights)",
    );

    // Mean size of Uniform[1, 5] is 3. Load points fan out; each one
    // regenerates its instance from the same fixed seed.
    let mean_size = 3.0;
    for row in par_replicates(rhos.to_vec(), |rho| {
        let rate = rho * machines as f64 / mean_size;
        let mut w = FlowWorkload::standard(n, machines, 12345);
        w.arrivals = ArrivalSpec::Poisson { rate };
        w.sizes = SizeSpec::Uniform { lo: 1.0, hi: 5.0 };
        let inst = w.generate(InstanceKind::FlowTime);

        let out = FlowScheduler::with_eps(eps).unwrap().run(&inst);
        let m = must_validate("load", &inst, &out.log, &ValidationConfig::flow_time());
        let lb = flow_lower_bound(&inst, Some(out.dual.objective())).value;
        let stats = SummaryStats::flows(&inst, &out.log);

        let wout = WeightedFlowScheduler::with_eps(eps).unwrap().run(&inst);
        let wm = must_validate("load", &inst, &wout.log, &ValidationConfig::flow_time());

        assert!(
            m.flow.rejected_fraction() <= 2.0 * eps + 1e-9,
            "budget violated at rho={rho}"
        );

        vec![
            fmt_g4(rho),
            fmt_g4(m.flow.flow_all / lb),
            fmt_g4(m.flow.rejected_fraction()),
            fmt_g4(2.0 * eps),
            fmt_g4(stats.mean),
            fmt_g4(stats.p99),
            fmt_g4(wm.flow.flow_all / lb),
        ]
    }) {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_grow_with_load_within_budget() {
        let tables = run(true);
        let t = &tables[0];
        let fracs: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Overload rejects more than underload.
        assert!(
            fracs.last().unwrap() > fracs.first().unwrap(),
            "rejection should rise with load: {fracs:?}"
        );
        for &f in &fracs {
            assert!(f <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn flows_stay_bounded_in_overload() {
        let tables = run(true);
        let t = &tables[0];
        // Mean flow at rho=1.5 should be within a couple orders of
        // magnitude of rho=0.5 — rejection prevents the unbounded
        // queueing a no-rejection scheduler would suffer.
        let first: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(
            last < first * 500.0,
            "overload flow exploded: {first} → {last}"
        );
    }
}
