//! EXP-T1-OPT — Theorem 1 against *exact* OPT on tiny instances.
//!
//! Branch-and-bound OPT (n ≤ 8) removes all lower-bound slack: the
//! ratios here are the algorithm's true competitive performance on
//! these instances. Also reports how tight the certified dual LB is
//! relative to OPT (`lb/opt`).

use osr_baselines::{flow_lower_bound, optimal_flow};
use osr_core::bounds::flowtime_competitive_bound;
use osr_core::FlowScheduler;
use osr_model::InstanceKind;
use osr_sim::ValidationConfig;
use osr_workload::{FlowWorkload, SizeSpec};

use super::{max, mean, must_validate, par_replicates};
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let eps_sweep: &[f64] = if quick {
        &[0.5, 1.0]
    } else {
        &[0.25, 0.5, 1.0]
    };
    let shapes: &[(usize, usize)] = if quick {
        &[(6, 1), (6, 2)]
    } else {
        &[(6, 1), (7, 2), (8, 2), (6, 3)]
    };
    let seeds: Vec<u64> = if quick {
        (0..4).collect()
    } else {
        (0..12).collect()
    };

    let mut table = Table::new(
        "EXP-T1-OPT: ratio vs exact OPT on tiny instances",
        &[
            "eps",
            "n",
            "m",
            "ratio_mean",
            "ratio_max",
            "bound",
            "lb_tightness",
        ],
    );
    table
        .note("ratio = flow_all / exact OPT (branch-and-bound); lb_tightness = certified LB / OPT");

    for &eps in eps_sweep {
        for &(n, m) in shapes {
            // Seeds fan out; branch-and-bound OPT dominates each
            // replicate's cost, so this is the experiment that gains
            // most from `--jobs`.
            let results: Vec<(f64, f64)> = par_replicates(seeds.clone(), |seed| {
                let mut w = FlowWorkload::standard(n, m, 1000 + seed);
                w.sizes = SizeSpec::Uniform { lo: 1.0, hi: 10.0 };
                let inst = w.generate(InstanceKind::FlowTime);
                let opt = optimal_flow(&inst);
                let out = FlowScheduler::with_eps(eps).unwrap().run(&inst);
                let metrics =
                    must_validate("t1_exact", &inst, &out.log, &ValidationConfig::flow_time());
                let lb = flow_lower_bound(&inst, Some(out.dual.objective()));
                // OPT is a lower bound on any serving schedule, but the
                // algorithm may *reject* jobs (its flow_all counts the
                // rejected flow only until rejection) — still, the
                // certified LB must never exceed OPT.
                assert!(
                    lb.value <= opt + 1e-6,
                    "certified LB {} exceeds exact OPT {opt}",
                    lb.value
                );
                (metrics.flow.flow_all / opt, lb.value / opt)
            });
            let ratios: Vec<f64> = results.iter().map(|r| r.0).collect();
            let tightness: Vec<f64> = results.iter().map(|r| r.1).collect();
            table.row(vec![
                fmt_g4(eps),
                n.to_string(),
                m.to_string(),
                fmt_g4(mean(&ratios)),
                fmt_g4(max(&ratios)),
                fmt_g4(flowtime_competitive_bound(eps)),
                fmt_g4(mean(&tightness)),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_stay_under_the_theorem_bound() {
        for t in run(true) {
            for row in &t.rows {
                let ratio_max: f64 = row[4].parse().unwrap();
                let bound: f64 = row[5].parse().unwrap();
                assert!(
                    ratio_max <= bound + 1e-9,
                    "true ratio {ratio_max} exceeds bound {bound}"
                );
                let tight: f64 = row[6].parse().unwrap();
                assert!(tight > 0.0 && tight <= 1.0 + 1e-9);
            }
        }
    }
}
