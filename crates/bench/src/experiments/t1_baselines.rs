//! EXP-T1-BASE — the paper's motivation: rejection circumvents the
//! lower bounds that doom no-rejection online schedulers.
//!
//! Compares, on identical workloads (including the long-job trap),
//! the SPAA'18 algorithm against greedy ECT×{SPT, FIFO} without
//! rejection and the ESA'16-style speed-augmentation baseline. All
//! costs are normalized by the same certified lower bound.

use osr_baselines::{flow_lower_bound, GreedyScheduler, SpeedAugScheduler};
use osr_core::FlowScheduler;
use osr_model::{Instance, InstanceKind, Metrics};
use osr_sim::ValidationConfig;
use osr_workload::adversarial::long_job_trap;
use osr_workload::{ArrivalSpec, FlowWorkload, SizeSpec};

use super::{must_validate, par_replicates};
use crate::table::{fmt_g4, Table};

fn workloads(quick: bool) -> Vec<(String, Instance)> {
    let n = if quick { 300 } else { 1500 };
    let mut out = Vec::new();
    out.push((
        "poisson-pareto".to_string(),
        FlowWorkload::standard(n, 4, 11).generate(InstanceKind::FlowTime),
    ));
    let mut bursty = FlowWorkload::standard(n, 4, 12);
    bursty.arrivals = ArrivalSpec::Bursty {
        burst: 40,
        within: 0.01,
        gap: 30.0,
    };
    out.push((
        "bursty".to_string(),
        bursty.generate(InstanceKind::FlowTime),
    ));
    let mut bimodal = FlowWorkload::standard(n, 2, 13);
    bimodal.sizes = SizeSpec::Bimodal {
        short: 1.0,
        long: 120.0,
        p_long: 0.05,
    };
    out.push((
        "bimodal".to_string(),
        bimodal.generate(InstanceKind::FlowTime),
    ));
    out.push((
        "long-job-trap".to_string(),
        long_job_trap(
            if quick { 50.0 } else { 200.0 },
            if quick { 100 } else { 400 },
            0.5,
        ),
    ));
    out
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let eps = 0.2;
    let mut table = Table::new(
        "EXP-T1-BASE: SPAA'18 vs no-rejection and speed-augmented baselines",
        &[
            "workload",
            "n",
            "spaa18",
            "greedy_spt",
            "greedy_fifo",
            "speedaug",
            "spaa18_rejfrac",
        ],
    );
    table.note(format!(
        "cells are flow_all / certified LB; spaa18 eps = {eps}; speedaug = (1.2-speed, eps_r=0.2)"
    ));
    table.note("speedaug runs 1.2x machines — reference point, not a feasible unit-speed schedule");
    table.note("rejection-capable ratios may drop below 1: the LB prices serving ALL jobs");

    // Workloads fan out; each replicate runs all four policies on its
    // instance so the shared certified LB stays local.
    for row in par_replicates(workloads(quick), |(name, inst)| {
        let out = FlowScheduler::with_eps(eps).unwrap().run(&inst);
        let spaa = must_validate("t1_base", &inst, &out.log, &ValidationConfig::flow_time());
        let lb = flow_lower_bound(&inst, Some(out.dual.objective())).value;

        let (g_spt_log, _) = GreedyScheduler::ect_spt().run(&inst);
        let g_spt = must_validate("t1_base", &inst, &g_spt_log, &ValidationConfig::flow_time());

        let (g_fifo_log, _) = GreedyScheduler::ect_fifo().run(&inst);
        let g_fifo = must_validate(
            "t1_base",
            &inst,
            &g_fifo_log,
            &ValidationConfig::flow_time(),
        );

        let (aug_log, _) = SpeedAugScheduler::new(0.2, 0.2).unwrap().run(&inst);
        // Speed-augmented logs have speed 1.2 — validate with the
        // speed-flexible config.
        let aug = {
            let cfg = ValidationConfig::flow_energy();
            let report = osr_sim::validate_log(&inst, &aug_log, &cfg);
            assert!(report.is_valid(), "{:?}", report.errors.first());
            Metrics::compute(&inst, &aug_log, 2.0)
        };

        vec![
            name,
            inst.len().to_string(),
            fmt_g4(spaa.flow.flow_all / lb),
            fmt_g4(g_spt.flow.flow_served / lb),
            fmt_g4(g_fifo.flow.flow_served / lb),
            fmt_g4(aug.flow.flow_all / lb),
            fmt_g4(spaa.flow.rejected_fraction()),
        ]
    }) {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaa18_beats_fifo_on_the_trap() {
        let tables = run(true);
        let t = &tables[0];
        let trap = t
            .rows
            .iter()
            .find(|r| r[0] == "long-job-trap")
            .expect("trap row");
        let spaa: f64 = trap[2].parse().unwrap();
        let fifo: f64 = trap[4].parse().unwrap();
        assert!(
            spaa < fifo,
            "rejection must beat FIFO on the trap: spaa {spaa} vs fifo {fifo}"
        );
    }

    #[test]
    fn all_rows_have_positive_ratios() {
        for t in run(true) {
            for row in &t.rows {
                for cell in &row[2..6] {
                    let v: f64 = cell.parse().unwrap();
                    // Ratios below 1 are legitimate for rejection-capable
                    // schedulers: the LB prices serving *all* jobs, while
                    // the algorithm drops up to a 2eps fraction.
                    assert!(v > 0.0, "non-positive ratio: {row:?}");
                }
                // The no-rejection baselines do serve everything, so
                // their ratios cannot drop below 1.
                for cell in &row[3..5] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(v >= 0.99, "no-rejection baseline below OPT: {row:?}");
                }
            }
        }
    }
}
