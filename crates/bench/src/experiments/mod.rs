//! Experiment implementations, one module per DESIGN.md entry.
//!
//! Every `run(quick) -> Vec<Table>` is deterministic (fixed seeds) and
//! validates every schedule before measuring it — a scheduler bug
//! yields a panic, never a silently wrong table.
//!
//! ## Parallel replicates, deterministic tables
//!
//! Each experiment's replicate work — the cross product of seeds ×
//! instances × policies that fills one table — fans out over the rayon
//! pool via `par_replicates` (crate-private). The determinism contract:
//!
//! 1. every replicate derives its RNG stream from its **own explicit
//!    seed** (never from shared mutable state or thread identity), and
//! 2. results come back **in input order**, and rows are appended only
//!    after the fan-out completes.
//!
//! Together these make the emitted tables (and therefore the CSV
//! artifacts) byte-identical for any `--jobs` value, including 1 —
//! asserted end-to-end by the `parallel_determinism` integration test.
//! The only exception is `scale`, which measures wall-clock time and
//! must therefore run its replicates serially on an otherwise idle
//! pool.

pub mod dual_feasibility;
pub mod l1_immediate;
pub mod l2_energy;
pub mod load_sweep;
pub mod m_scale;
pub mod rule_ablation;
pub mod scale;
pub mod smoothness;
pub mod t1_baselines;
pub mod t1_exact;
pub mod t1_ratio;
pub mod t2_ratio;
pub mod t3_ratio;
pub mod workload_sweep;

use osr_model::{FinishedLog, Instance, Metrics};
use osr_sim::{validate_log, ValidationConfig};
use rayon::prelude::*;

/// Runs `f` over `inputs` on the rayon pool, returning results in input
/// order — the fan-out primitive behind every experiment's replicate
/// loop (see the module docs for the determinism contract).
pub(crate) fn par_replicates<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync + Send,
{
    inputs.into_par_iter().map(f).collect()
}

/// Validates a log or panics with the experiment id — experiments never
/// report metrics for invalid schedules.
pub(crate) fn must_validate(
    exp: &str,
    instance: &Instance,
    log: &FinishedLog,
    config: &ValidationConfig,
) -> Metrics {
    let report = validate_log(instance, log, config);
    assert!(
        report.is_valid(),
        "{exp}: schedule failed validation: {:?}",
        report.errors.first()
    );
    Metrics::compute(instance, log, 2.0)
}

/// Mean of a slice.
pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Max of a slice.
pub(crate) fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
