//! Experiment implementations, one module per DESIGN.md entry.
//!
//! Every `run(quick) -> Vec<Table>` is deterministic (fixed seeds) and
//! validates every schedule before measuring it — a scheduler bug
//! yields a panic, never a silently wrong table.

pub mod dual_feasibility;
pub mod l1_immediate;
pub mod l2_energy;
pub mod load_sweep;
pub mod rule_ablation;
pub mod scale;
pub mod smoothness;
pub mod t1_baselines;
pub mod t1_exact;
pub mod t1_ratio;
pub mod t2_ratio;
pub mod t3_ratio;

use osr_model::{FinishedLog, Instance, Metrics};
use osr_sim::{validate_log, ValidationConfig};

/// Validates a log or panics with the experiment id — experiments never
/// report metrics for invalid schedules.
pub(crate) fn must_validate(
    exp: &str,
    instance: &Instance,
    log: &FinishedLog,
    config: &ValidationConfig,
) -> Metrics {
    let report = validate_log(instance, log, config);
    assert!(
        report.is_valid(),
        "{exp}: schedule failed validation: {:?}",
        report.errors.first()
    );
    Metrics::compute(instance, log, 2.0)
}

/// Mean of a slice.
pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Max of a slice.
pub(crate) fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
