//! EXP-T2-RATIO / EXP-T2-BASE — Theorem 2: weighted flow + energy
//! ratio vs `ε` and `α`, the `ε` rejected-weight budget, and the
//! no-rejection / fixed-speed baselines.

use osr_baselines::energyflow_alone_lower_bound;
use osr_core::bounds::energyflow_competitive_bound;
use osr_core::energyflow::{EnergyFlowParams, EnergyFlowScheduler};
use osr_model::{InstanceKind, Metrics};
use osr_sim::{validate_log, ValidationConfig};
use osr_workload::{FlowWorkload, SizeSpec, WeightSpec};

use super::{max, mean, par_replicates};
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let eps_sweep: &[f64] = if quick {
        &[0.2, 0.5, 1.0]
    } else {
        &[0.1, 0.2, 1.0 / 3.0, 0.5, 0.75, 1.0]
    };
    let alphas: &[f64] = if quick {
        &[2.0, 3.0]
    } else {
        &[1.5, 2.0, 2.5, 3.0]
    };
    let n = if quick { 200 } else { 1200 };
    let seeds: Vec<u64> = if quick { vec![1, 2] } else { vec![1, 2, 3, 4] };

    let mut ratio_table = Table::new(
        "EXP-T2-RATIO: weighted flow + energy vs eps and alpha",
        &[
            "alpha",
            "eps",
            "ratio_mean",
            "ratio_max",
            "bound",
            "wrej_frac",
            "budget",
        ],
    );
    ratio_table
        .note("ratio = (weighted flow of served + all energy) / alone-cost LB over all jobs");
    ratio_table.note("rejection may push ratios slightly below 1: the LB prices serving ALL jobs");

    let mut base_table = Table::new(
        "EXP-T2-BASE: rejection vs no-rejection speed scaling",
        &["alpha", "with_reject", "no_reject", "improvement"],
    );
    base_table.note("objective / alone-cost LB at eps = 0.2 on a bursty heavy-tail workload");

    for &alpha in alphas {
        for &eps in eps_sweep {
            // Seeds fan out; each replicate is self-seeded.
            let results: Vec<(f64, f64)> = par_replicates(seeds.clone(), |seed| {
                let mut w = FlowWorkload::standard(n, 3, 100 + seed);
                w.weights = WeightSpec::Uniform { lo: 1.0, hi: 8.0 };
                let inst = w.generate(InstanceKind::FlowEnergy);
                let sched = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha)).unwrap();
                let out = sched.run(&inst);
                let report = validate_log(&inst, &out.log, &ValidationConfig::flow_energy());
                assert!(report.is_valid(), "{:?}", report.errors.first());
                let m = Metrics::compute(&inst, &out.log, alpha);
                let lb = energyflow_alone_lower_bound(&inst, alpha);
                let frac = m.flow.rejected_weight_fraction();
                assert!(
                    frac <= eps + 1e-9,
                    "weight budget violated: {frac} > {eps} (alpha={alpha}, seed={seed})"
                );
                (m.weighted_flow_plus_energy() / lb, frac)
            });
            let ratios: Vec<f64> = results.iter().map(|r| r.0).collect();
            let wrejs: Vec<f64> = results.iter().map(|r| r.1).collect();
            ratio_table.row(vec![
                fmt_g4(alpha),
                fmt_g4(eps),
                fmt_g4(mean(&ratios)),
                fmt_g4(max(&ratios)),
                fmt_g4(energyflow_competitive_bound(eps, alpha)),
                fmt_g4(mean(&wrejs)),
                fmt_g4(eps),
            ]);
        }

        // Baseline comparison at eps = 0.2 on a stressful workload.
        let mut w = FlowWorkload::standard(n, 2, 777);
        w.weights = WeightSpec::Uniform { lo: 1.0, hi: 8.0 };
        w.sizes = SizeSpec::Bimodal {
            short: 1.0,
            long: 80.0,
            p_long: 0.08,
        };
        let inst = w.generate(InstanceKind::FlowEnergy);
        let lb = energyflow_alone_lower_bound(&inst, alpha);

        let with = EnergyFlowScheduler::new(EnergyFlowParams::new(0.2, alpha)).unwrap();
        let out_with = with.run(&inst);
        let m_with = Metrics::compute(&inst, &out_with.log, alpha);

        let without = EnergyFlowScheduler::new(EnergyFlowParams {
            reject: false,
            ..EnergyFlowParams::new(0.2, alpha)
        })
        .unwrap();
        let out_wo = without.run(&inst);
        let m_wo = Metrics::compute(&inst, &out_wo.log, alpha);

        let r_with = m_with.weighted_flow_plus_energy() / lb;
        let r_wo = m_wo.weighted_flow_plus_energy() / lb;
        base_table.row(vec![
            fmt_g4(alpha),
            fmt_g4(r_with),
            fmt_g4(r_wo),
            fmt_g4(r_wo / r_with),
        ]);
    }
    vec![ratio_table, base_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_positive_and_budget_enforced() {
        let tables = run(true);
        for row in &tables[0].rows {
            let ratio: f64 = row[2].parse().unwrap();
            let wrej: f64 = row[5].parse().unwrap();
            let budget: f64 = row[6].parse().unwrap();
            // The LB prices serving all jobs; the algorithm rejects up
            // to an eps weight fraction, so slightly-below-1 ratios are
            // legitimate.
            assert!(ratio > 0.5, "implausibly low ratio: {row:?}");
            assert!(wrej <= budget + 1e-9);
        }
    }

    #[test]
    fn rejection_does_not_hurt_much_and_often_helps() {
        let tables = run(true);
        for row in &tables[1].rows {
            let improvement: f64 = row[3].parse().unwrap();
            // Rejection may help a lot on heavy tails and should never
            // catastrophically hurt.
            assert!(improvement > 0.5, "rejection made things 2x worse: {row:?}");
        }
    }
}
