//! EXP-RULES — ablation of the two rejection rules.
//!
//! The paper motivates Rule 1 (bursts arriving behind a long job) and
//! Rule 2 (a surrogate for speed augmentation that keeps queues
//! draining) separately. This experiment runs the §2 algorithm with
//! each subset of rules on workloads designed to stress each mechanism
//! and reports flow ratios (vs the both-rules certified LB) and
//! rejection usage.

use osr_baselines::flow_lower_bound;
use osr_core::{FlowParams, FlowScheduler};
use osr_model::{Instance, InstanceKind};
use osr_sim::ValidationConfig;
use osr_workload::adversarial::long_job_trap;
use osr_workload::{ArrivalSpec, FlowWorkload, SizeSpec};

use super::{must_validate, par_replicates};
use crate::table::{fmt_g4, Table};

fn workloads(quick: bool) -> Vec<(String, Instance)> {
    let n = if quick { 250 } else { 1200 };
    let mut out = Vec::new();
    // Rule-1 bait: rare huge jobs + steady small traffic.
    let mut heavy = FlowWorkload::standard(n, 2, 31);
    heavy.sizes = SizeSpec::Bimodal {
        short: 1.0,
        long: 150.0,
        p_long: 0.04,
    };
    out.push(("heavy-tail".into(), heavy.generate(InstanceKind::FlowTime)));
    // Rule-2 bait: overload bursts where the queue itself is the
    // problem.
    let mut burst = FlowWorkload::standard(n, 2, 32);
    burst.arrivals = ArrivalSpec::Bursty {
        burst: 60,
        within: 0.01,
        gap: 20.0,
    };
    burst.sizes = SizeSpec::Uniform { lo: 1.0, hi: 12.0 };
    out.push((
        "overload-burst".into(),
        burst.generate(InstanceKind::FlowTime),
    ));
    out.push((
        "long-job-trap".into(),
        long_job_trap(
            if quick { 60.0 } else { 250.0 },
            if quick { 120 } else { 500 },
            0.5,
        ),
    ));
    out
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let eps = 0.25;
    let configs: [(&str, bool, bool); 4] = [
        ("both", true, true),
        ("rule1-only", true, false),
        ("rule2-only", false, true),
        ("none", false, false),
    ];

    let mut table = Table::new(
        "EXP-RULES: rejection-rule ablation",
        &["workload", "rules", "flow_ratio", "rejected", "rej_frac"],
    );
    table.note(format!(
        "eps = {eps}; flow_ratio = flow_all / certified LB of the both-rules run"
    ));

    // Workloads fan out; the four rule configurations of one workload
    // share its certified LB, so they stay grouped in one replicate.
    for rows in par_replicates(workloads(quick), |(name, inst)| {
        // Certified LB from the canonical (both-rules) run.
        let canonical = FlowScheduler::new(FlowParams::new(eps)).unwrap().run(&inst);
        let lb = flow_lower_bound(&inst, Some(canonical.dual.objective())).value;

        configs
            .iter()
            .map(|&(label, r1, r2)| {
                let sched = FlowScheduler::new(FlowParams::with_rules(eps, r1, r2)).unwrap();
                let out = sched.run(&inst);
                let m = must_validate("rules", &inst, &out.log, &ValidationConfig::flow_time());
                vec![
                    name.clone(),
                    label.to_string(),
                    fmt_g4(m.flow.flow_all / lb),
                    m.flow.rejected.to_string(),
                    fmt_g4(m.flow.rejected_fraction()),
                ]
            })
            .collect::<Vec<_>>()
    }) {
        for row in rows {
            table.row(row);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_rules_never_lose_badly_and_help_on_the_trap() {
        let tables = run(true);
        let t = &tables[0];
        let get = |workload: &str, rules: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == workload && r[1] == rules)
                .unwrap_or_else(|| panic!("missing {workload}/{rules}"))[2]
                .parse()
                .unwrap()
        };
        // On the long-job trap, having Rule 1 must beat having no rules.
        let both = get("long-job-trap", "both");
        let none = get("long-job-trap", "none");
        assert!(
            both < none,
            "rules must help on the trap: both={both} none={none}"
        );
        // rule1-only also beats none there (it is the trap-specific rule).
        let r1 = get("long-job-trap", "rule1-only");
        assert!(r1 < none, "rule1 must help on the trap: {r1} vs {none}");
    }

    #[test]
    fn disabled_rules_reject_nothing() {
        let tables = run(true);
        for row in &tables[0].rows {
            if row[1] == "none" {
                assert_eq!(row[3], "0");
            }
        }
    }
}
