//! EXP-SMOOTH — Definition 1 / the smooth inequality of \[18\]:
//! randomized audit that `P(s) = s^α` is `(λ(α), µ(α))`-smooth with the
//! constants used by the Theorem 3 analysis.

use osr_core::bounds::smooth_competitive_bound;
use osr_core::smooth::{audit_smooth_inequality, lambda_alpha, mu_alpha};

use super::par_replicates;
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let trials = if quick { 2_000 } else { 50_000 };
    let alphas = [1.2, 1.5, 2.0, 2.5, 3.0, 4.0];

    let mut table = Table::new(
        "EXP-SMOOTH: randomized audit of (lambda, mu)-smoothness of s^alpha",
        &[
            "alpha",
            "lambda",
            "mu",
            "trials",
            "violations",
            "worst_lhs/rhs",
            "ratio_bound",
        ],
    );
    table.note("worst_lhs/rhs ≤ 1 certifies the sampled inequality; ratio_bound = lambda/(1-mu)");

    // Alphas fan out; the audit's sampling RNG is seeded per call.
    for row in par_replicates(alphas.to_vec(), |alpha| {
        let (worst, violations) = audit_smooth_inequality(alpha, trials, 16, 0xC0FFEE);
        vec![
            fmt_g4(alpha),
            fmt_g4(lambda_alpha(alpha)),
            fmt_g4(mu_alpha(alpha)),
            trials.to_string(),
            violations.len().to_string(),
            fmt_g4(worst),
            fmt_g4(smooth_competitive_bound(
                lambda_alpha(alpha),
                mu_alpha(alpha),
            )),
        ]
    }) {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_found() {
        for t in run(true) {
            for row in &t.rows {
                assert_eq!(row[4], "0", "smoothness violated: {row:?}");
                let worst: f64 = row[5].parse().unwrap();
                assert!(worst <= 1.0 + 1e-9);
                assert!(worst > 0.0, "audit must exercise the inequality");
            }
        }
    }
}
