//! EXP-T3-RATIO — Theorem 3: the §4 greedy's energy vs the `α^α`
//! bound, against the YDS preemptive optimum (single machine), the
//! per-job bound (multi-machine) and the AVR baseline. Also sweeps the
//! candidate-grid resolution (the paper's discretization knob).

use osr_baselines::{energy_lower_bound, yds_energy, AvrScheduler};
use osr_core::bounds::energymin_competitive_bound;
use osr_core::energymin::{per_job_energy_lower_bound, EnergyMinParams, EnergyMinScheduler};
use osr_sim::{validate_log, ValidationConfig};
use osr_workload::EnergyWorkload;

use super::par_replicates;
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let alphas: &[f64] = if quick {
        &[2.0, 3.0]
    } else {
        &[1.5, 2.0, 2.5, 3.0]
    };
    let n = if quick { 60 } else { 200 };

    let mut table = Table::new(
        "EXP-T3-RATIO: energy vs lower bounds and AVR",
        &[
            "alpha",
            "m",
            "greedy_ratio",
            "avr_ratio",
            "bound",
            "lb_kind",
        ],
    );
    table.note("greedy/avr ratio = energy / LB; LB = YDS (m=1) or per-job ∨ pooled-YDS (m>1)");
    table.note(
        "multi-machine LBs under-estimate OPT under contention: those rows over-estimate the ratio",
    );

    // The alpha × m grid fans out; instances are self-seeded by m.
    let mut cells: Vec<(f64, usize)> = Vec::new();
    for &alpha in alphas {
        for &m in &[1usize, 3] {
            cells.push((alpha, m));
        }
    }
    for row in par_replicates(cells, |(alpha, m)| {
        let inst = EnergyWorkload::standard(n, m, 300 + m as u64).generate();
        let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
            .unwrap()
            .run(&inst);
        let report = validate_log(&inst, &out.log, &ValidationConfig::energy());
        assert!(report.is_valid(), "{:?}", report.errors.first());

        let (lb, lb_kind) = if m == 1 {
            (yds_energy(&inst, alpha), "yds")
        } else {
            // Combined per-job ∨ pooled-YDS/m^{α−1} bound. Still an
            // under-estimate of OPT under contention, so these rows
            // over-estimate the true ratio.
            let combined = energy_lower_bound(&inst, alpha);
            let kind = if combined > per_job_energy_lower_bound(&inst, alpha) {
                "pooled-yds"
            } else {
                "per-job"
            };
            (combined, kind)
        };
        assert!(lb > 0.0);
        let greedy_ratio = out.total_energy / lb;

        let (avr_log, _, avr_energy) = AvrScheduler { alpha }.run(&inst);
        let avr_report = validate_log(&inst, &avr_log, &ValidationConfig::energy());
        assert!(avr_report.is_valid());
        let avr_ratio = avr_energy / lb;

        let bound = energymin_competitive_bound(alpha);
        vec![
            fmt_g4(alpha),
            m.to_string(),
            fmt_g4(greedy_ratio),
            fmt_g4(avr_ratio),
            fmt_g4(bound),
            lb_kind.to_string(),
        ]
    }) {
        table.row(row);
    }

    // Discretization ablation: grid resolution vs energy (single
    // machine, alpha = 2).
    let mut grid_table = Table::new(
        "EXP-T3-GRID: candidate-grid resolution ablation",
        &["speeds", "starts", "speed_ratio", "energy", "vs_finest"],
    );
    let inst = EnergyWorkload::standard(if quick { 40 } else { 120 }, 1, 999).generate();
    let configs: &[(usize, usize, f64)] =
        &[(4, 4, 2.0), (8, 8, 1.5), (16, 16, 1.25), (32, 32, 1.1)];
    let energies: Vec<(usize, usize, f64, f64)> =
        par_replicates(configs.to_vec(), |(speeds, starts, ratio)| {
            let params = EnergyMinParams {
                alpha: 2.0,
                speed_ratio: ratio,
                max_speeds: speeds,
                start_grid: starts,
            };
            let out = EnergyMinScheduler::new(params).unwrap().run(&inst);
            (speeds, starts, ratio, out.total_energy)
        });
    let finest = energies.last().unwrap().3;
    for (speeds, starts, ratio, energy) in energies {
        grid_table.row(vec![
            speeds.to_string(),
            starts.to_string(),
            fmt_g4(ratio),
            fmt_g4(energy),
            fmt_g4(energy / finest),
        ]);
    }

    vec![table, grid_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_within_bound_and_competitive_with_avr() {
        let tables = run(true);
        for row in &tables[0].rows {
            let greedy: f64 = row[2].parse().unwrap();
            let bound: f64 = row[4].parse().unwrap();
            assert!(greedy >= 1.0 - 1e-9, "energy below a lower bound: {row:?}");
            // The theorem bound is loose; greedy should beat it by far
            // on random instances. Assert the hard claim only.
            assert!(
                greedy <= bound * 2.0,
                "greedy {greedy} way above alpha^alpha {bound}"
            );
        }
    }

    #[test]
    fn finer_grids_do_not_increase_energy_much() {
        let tables = run(true);
        let grid = &tables[1];
        for row in &grid.rows {
            let vs: f64 = row[4].parse().unwrap();
            assert!(
                vs >= 0.95,
                "coarse grid cannot beat the finest by much: {row:?}"
            );
            assert!(vs < 2.0, "coarse grid should stay within 2x: {row:?}");
        }
    }
}
