//! EXP-L2 — Lemma 2: the adaptive deadline-chain adversary forces any
//! deterministic algorithm (ours included) to pay `Ω((α/9)^α)` times
//! the adversary's cost.
//!
//! The adversary drives [`osr_core::EnergyMinOnline`] interactively:
//! each released job nests inside the observed execution of the
//! previous one, forcing overlap after overlap while the adversary
//! itself could have run everything at speed 1 without overlap.

use osr_core::bounds::{energymin_competitive_bound, energymin_lower_bound};
use osr_core::energymin::{EnergyMinOnline, EnergyMinParams};
use osr_workload::adversarial::lemma2_run;

use super::par_replicates;
use crate::table::{fmt_g4, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let alphas: &[f64] = if quick {
        &[2.0, 3.0, 4.0]
    } else {
        &[2.0, 3.0, 4.0, 5.0, 6.0]
    };

    let mut table = Table::new(
        "EXP-L2: adaptive adversary vs the section-4 greedy",
        &[
            "alpha",
            "rounds",
            "alg_energy",
            "adv_energy",
            "ratio",
            "lower_(a/9)^a",
            "upper_a^a",
        ],
    );
    table.note("adversary energy = speed-1 non-overlapping schedule (feasible upper bound on OPT)");

    // Each alpha's adversary round-trip is inherently sequential (the
    // adversary adapts to the algorithm's observed behaviour), but the
    // alphas are independent and fan out.
    for row in par_replicates(alphas.to_vec(), |alpha| {
        let mut online = EnergyMinOnline::new(EnergyMinParams::new(alpha), 1).unwrap();
        let run = lemma2_run(alpha, |job| {
            let a = online.assign(job);
            (a.start, a.completion)
        });
        let alg = online.total_energy();
        let ratio = alg / run.adversary_energy;
        vec![
            fmt_g4(alpha),
            run.rounds.to_string(),
            fmt_g4(alg),
            fmt_g4(run.adversary_energy),
            fmt_g4(ratio),
            fmt_g4(energymin_lower_bound(alpha)),
            fmt_g4(energymin_competitive_bound(alpha)),
        ]
    }) {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_hurts_more_as_alpha_grows() {
        let tables = run(false);
        let t = &tables[0];
        let ratios: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // Each round the adversary forces overlap; the ratio must
        // exceed 1 for alpha ≥ 3 and grow overall.
        assert!(ratios.last().unwrap() > ratios.first().unwrap());
        assert!(*ratios.last().unwrap() > 1.0);
    }

    #[test]
    fn ratio_stays_below_the_theorem_upper_bound() {
        for t in run(true) {
            for row in &t.rows {
                let ratio: f64 = row[4].parse().unwrap();
                let upper: f64 = row[6].parse().unwrap();
                assert!(
                    ratio <= upper + 1e-9,
                    "algorithm exceeded its own guarantee: {row:?}"
                );
            }
        }
    }
}
