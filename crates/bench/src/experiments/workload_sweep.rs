//! EXP-WL-SWEEP — every scheduler and baseline over the scenario grid.
//!
//! The scenario framework (`osr_workload::Scenario`) crosses arrival
//! processes × size distributions × machine models; this experiment
//! runs the full policy lineup — the paper's three algorithms plus the
//! no-rejection greedy baselines and the speed-augmentation reference —
//! over that grid and reports schedule facts only (no wall-clock), so
//! its tables are byte-identical across `--jobs` and `--dispatch`
//! (both CI determinism diffs include them).
//!
//! Quick mode runs a curated sub-grid that covers every grammar token
//! at least once; full mode sweeps the **entire** named grid (all
//! `|arrivals| × |sizes| × |machines|` combinations).
//!
//! The `inelig` column counts `RejectReason::Ineligible` rejections —
//! nonzero exactly on `affinity` scenarios (their `drop_prob` produces
//! everywhere-ineligible jobs) and asserted identical across policies:
//! an ineligible job is rejected by *every* scheduler, at arrival.

use osr_baselines::{flow_lower_bound, GreedyScheduler, SpeedAugScheduler};
use osr_core::energyflow::{EnergyFlowParams, EnergyFlowScheduler};
use osr_core::flowtime::{WeightedFlowParams, WeightedFlowScheduler};
use osr_core::{FlowParams, FlowScheduler};
use osr_model::{FinishedLog, Instance, InstanceKind, JobFate, Metrics, RejectReason};
use osr_sim::{CapacityPlan, ValidationConfig};
use osr_workload::Scenario;

use super::{must_validate, par_replicates};
use crate::table::{fmt_g4, Table};

/// The curated quick grid: every arrival, size, and machine token of
/// the scenario grammar appears at least once.
const QUICK_GRID: &[&str] = &[
    "poisson-pareto-unrelated",
    "mmpp-uniform-identical",
    "mmpp-pareto-affinity",
    "bursty-exp-restricted",
    "batch-bimodal-identical",
    "once-bimodal-related",
    "poisson-uniform-restricted",
    "batch-pareto-related",
    "poisson-bimodal-affinity",
];

/// The elastic-pool churn scenarios: machines drain, crash, and rejoin
/// mid-run. One per capacity-aware scheduler family would do; these
/// four spread churn over distinct arrival/size/machine structures
/// (the `once` entry puts every capacity event in the drain-out phase).
const CHURN_GRID: &[&str] = &[
    "poisson-pareto-unrelated-churn:0.2",
    "mmpp-uniform-identical-churn:0.4",
    "bursty-exp-restricted-churn:0.3",
    "once-bimodal-related-churn:0.25",
];

fn inelig_count(log: &FinishedLog) -> usize {
    log.rejections()
        .filter(|(_, r)| r.reason == RejectReason::Ineligible)
        .count()
}

fn machine_lost_count(log: &FinishedLog) -> usize {
    log.rejections()
        .filter(|(_, r)| r.reason == RejectReason::MachineLost)
        .count()
}

/// The no-lost-job invariant: every arrived job either completes
/// (consistently) or is rejected with a recorded reason — machine
/// churn may strand work only as an explicit `MachineLost` rejection
/// of a job that was servable in principle.
fn assert_no_lost_jobs(exp: &str, inst: &Instance, log: &FinishedLog) {
    for job in inst.jobs() {
        match log.fate(job.id) {
            JobFate::Completed(e) => assert!(
                e.completion >= e.start,
                "{exp}: {} completed backwards",
                job.id
            ),
            JobFate::Rejected(r) => {
                if r.reason == RejectReason::MachineLost {
                    assert!(
                        job.has_eligible(),
                        "{exp}: {} machine-lost but never eligible",
                        job.id
                    );
                }
            }
        }
    }
}

/// One capacity-aware policy's outcome on one churn scenario.
fn run_churn_policies(
    inst: &Instance,
    plan: &CapacityPlan,
) -> Vec<(&'static str, Metrics, u64, usize)> {
    let eps = 0.25;
    let flow_cfg = ValidationConfig::flow_time().with_capacity(plan.clone());
    let speed_cfg = ValidationConfig::flow_energy().with_capacity(plan.clone());
    let mut rows = Vec::new();

    let out = FlowScheduler::new(FlowParams::new(eps))
        .unwrap()
        .with_capacity(plan.clone())
        .run(inst);
    assert_no_lost_jobs("workload_sweep/churn/flow", inst, &out.log);
    let m = must_validate("workload_sweep", inst, &out.log, &flow_cfg);
    rows.push((
        "spaa18-flow",
        m,
        out.log.total_redispatches(),
        machine_lost_count(&out.log),
    ));

    let wout = WeightedFlowScheduler::new(WeightedFlowParams::new(eps))
        .unwrap()
        .with_capacity(plan.clone())
        .run(inst);
    assert_no_lost_jobs("workload_sweep/churn/wflow", inst, &wout.log);
    let m = must_validate("workload_sweep", inst, &wout.log, &flow_cfg);
    rows.push((
        "wflow-ext",
        m,
        wout.log.total_redispatches(),
        machine_lost_count(&wout.log),
    ));

    let eout = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, 2.0))
        .unwrap()
        .with_capacity(plan.clone())
        .run(inst);
    assert_no_lost_jobs("workload_sweep/churn/energyflow", inst, &eout.log);
    let m = must_validate("workload_sweep", inst, &eout.log, &speed_cfg);
    rows.push((
        "energyflow",
        m,
        eout.log.total_redispatches(),
        machine_lost_count(&eout.log),
    ));

    rows
}

/// One policy's outcome on one scenario instance.
struct PolicyRow {
    algo: &'static str,
    metrics: Metrics,
    inelig: usize,
    /// `Some(cost / LB)` for unit-speed flow policies, `None` where
    /// the certified flow LB does not price the objective.
    norm: Option<f64>,
}

fn run_policies(inst: &Instance) -> Vec<PolicyRow> {
    let eps = 0.25;
    let flow_cfg = ValidationConfig::flow_time();
    let speed_cfg = ValidationConfig::flow_energy();
    let mut rows = Vec::new();

    // The paper's §2 algorithm also certifies the shared lower bound.
    let out = FlowScheduler::new(FlowParams::new(eps)).unwrap().run(inst);
    let lb = flow_lower_bound(inst, Some(out.dual.objective())).value;
    let m = must_validate("workload_sweep", inst, &out.log, &flow_cfg);
    rows.push(PolicyRow {
        algo: "spaa18-flow",
        inelig: inelig_count(&out.log),
        norm: Some(m.flow.flow_all / lb),
        metrics: m,
    });

    let wout = WeightedFlowScheduler::new(WeightedFlowParams::new(eps))
        .unwrap()
        .run(inst);
    let m = must_validate("workload_sweep", inst, &wout.log, &flow_cfg);
    rows.push(PolicyRow {
        algo: "wflow-ext",
        inelig: inelig_count(&wout.log),
        norm: Some(m.flow.flow_all / lb),
        metrics: m,
    });

    let eout = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, 2.0))
        .unwrap()
        .run(inst);
    let m = must_validate("workload_sweep", inst, &eout.log, &speed_cfg);
    rows.push(PolicyRow {
        algo: "energyflow",
        inelig: inelig_count(&eout.log),
        norm: None,
        metrics: m,
    });

    let (g_log, _) = GreedyScheduler::ect_spt().run(inst);
    let m = must_validate("workload_sweep", inst, &g_log, &flow_cfg);
    rows.push(PolicyRow {
        algo: "greedy-spt",
        inelig: inelig_count(&g_log),
        norm: Some(m.flow.flow_served / lb),
        metrics: m,
    });

    let (g_log, _) = GreedyScheduler::ect_fifo().run(inst);
    let m = must_validate("workload_sweep", inst, &g_log, &flow_cfg);
    rows.push(PolicyRow {
        algo: "greedy-fifo",
        inelig: inelig_count(&g_log),
        norm: Some(m.flow.flow_served / lb),
        metrics: m,
    });

    let (a_log, _) = SpeedAugScheduler::new(0.2, 0.2).unwrap().run(inst);
    let m = must_validate("workload_sweep", inst, &a_log, &speed_cfg);
    rows.push(PolicyRow {
        algo: "speedaug",
        inelig: inelig_count(&a_log),
        norm: None,
        metrics: m,
    });

    rows
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (grid, n, m): (Vec<String>, usize, usize) = if quick {
        (QUICK_GRID.iter().map(|s| s.to_string()).collect(), 240, 12)
    } else {
        (Scenario::all_names(), 1200, 16)
    };

    let mut table = Table::new(
        "EXP-WL-SWEEP: scenario grid × full policy lineup",
        &[
            "scenario",
            "algo",
            "n",
            "completed",
            "rejected",
            "inelig",
            "flow_all",
            "wfe",
            "norm",
        ],
    );
    table.note("eps = 0.25; energyflow alpha = 2; speedaug = (1.2-speed, eps_r = 0.2)");
    table.note("norm = flow cost / certified LB (unit-speed flow policies only, `-` elsewhere)");
    table.note(
        "inelig counts everywhere-ineligible arrivals — identical across policies by construction",
    );

    for rows in par_replicates(grid, move |name| {
        let sc = Scenario::named(&name, n, m, 4711).expect("grid name resolves");
        let inst = sc.generate(InstanceKind::FlowTime);
        // Everywhere-ineligible jobs are a property of the *instance*;
        // every policy must reject exactly those (and only at arrival).
        let expected_inelig = inst.jobs().iter().filter(|j| !j.has_eligible()).count();
        let policies = run_policies(&inst);
        policies
            .into_iter()
            .map(|p| {
                assert_eq!(
                    p.inelig, expected_inelig,
                    "{name}/{}: ineligible count drifted from the instance mask",
                    p.algo
                );
                vec![
                    name.clone(),
                    p.algo.to_string(),
                    inst.len().to_string(),
                    p.metrics.flow.completed.to_string(),
                    p.metrics.flow.rejected.to_string(),
                    p.inelig.to_string(),
                    fmt_g4(p.metrics.flow.flow_all),
                    fmt_g4(p.metrics.weighted_flow_plus_energy()),
                    p.norm.map(fmt_g4).unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect::<Vec<_>>()
    }) {
        for row in rows {
            table.row(row);
        }
    }

    // The elastic-pool rows: the same scenarios with machines joining,
    // draining, and crashing mid-run. Runs only the capacity-aware
    // schedulers; every run is checked against the capacity-aware
    // validator and the no-lost-job invariant before its row lands.
    let mut churn_table = Table::new(
        "EXP-WL-SWEEP (churn): elastic machine pool × capacity-aware schedulers",
        &[
            "scenario",
            "algo",
            "n",
            "events",
            "completed",
            "rejected",
            "lost",
            "redisp",
            "flow_all",
            "wfe",
        ],
    );
    churn_table
        .note("capacity plans drawn from a separate seed stream (instances match the static rows)");
    churn_table.note("lost = RejectReason::MachineLost rejections; redisp = total re-dispatches");
    churn_table.note("every row passed capacity-aware validation and the no-lost-job invariant");

    let churn_grid: Vec<String> = CHURN_GRID.iter().map(|s| s.to_string()).collect();
    for rows in par_replicates(churn_grid, move |name| {
        let sc = Scenario::named(&name, n, m, 4711).expect("churn name resolves");
        let inst = sc.generate(InstanceKind::FlowTime);
        let plan = sc.capacity_plan(&inst);
        assert!(
            !plan.is_empty(),
            "{name}: churn scenario generated no events"
        );
        run_churn_policies(&inst, &plan)
            .into_iter()
            .map(|(algo, metrics, redisp, lost)| {
                vec![
                    name.clone(),
                    algo.to_string(),
                    inst.len().to_string(),
                    plan.len().to_string(),
                    metrics.flow.completed.to_string(),
                    metrics.flow.rejected.to_string(),
                    lost.to_string(),
                    redisp.to_string(),
                    fmt_g4(metrics.flow.flow_all),
                    fmt_g4(metrics.weighted_flow_plus_energy()),
                ]
            })
            .collect::<Vec<_>>()
    }) {
        for row in rows {
            churn_table.row(row);
        }
    }

    vec![table, churn_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_token_and_policy() {
        let tables = run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), QUICK_GRID.len() * 6);
        for token in osr_workload::scenario::ARRIVAL_TOKENS
            .iter()
            .chain(osr_workload::scenario::SIZE_TOKENS)
            .chain(osr_workload::scenario::MACHINE_TOKENS)
        {
            assert!(
                QUICK_GRID.iter().any(|n| n.split('-').any(|p| p == *token)),
                "token {token} missing from the quick grid"
            );
        }
    }

    #[test]
    fn churn_scenarios_redispatch_without_losing_jobs() {
        let tables = run(true);
        let t = &tables[1];
        // Every churn grid point produced one row per capacity-aware
        // scheduler (the no-lost-job invariant asserted inside
        // `run_churn_policies` already ran for each).
        assert_eq!(t.rows.len(), CHURN_GRID.len() * 3);
        let scenarios: std::collections::BTreeSet<&str> =
            t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(
            scenarios.len() >= 3,
            "need at least 3 distinct churn scenarios, got {scenarios:?}"
        );
        for row in &t.rows {
            let events: usize = row[3].parse().unwrap();
            assert!(events > 0, "churn row without capacity events: {row:?}");
        }
        // Churn must actually displace work somewhere in the grid —
        // otherwise the re-dispatch path went untested.
        let total_redisp: u64 = t.rows.iter().map(|r| r[7].parse::<u64>().unwrap()).sum();
        assert!(total_redisp > 0, "no re-dispatches across the churn grid");
        // Determinism: a second run reproduces the table byte-for-byte.
        let again = run(true);
        assert_eq!(t.rows, again[1].rows, "churn table must be deterministic");
    }

    #[test]
    fn affinity_scenarios_exercise_ineligible_rejections() {
        let tables = run(true);
        let mut affinity_inelig = 0usize;
        for row in &tables[0].rows {
            let inelig: usize = row[5].parse().unwrap();
            if row[0].ends_with("-affinity") {
                affinity_inelig += inelig;
            } else {
                assert_eq!(inelig, 0, "{row:?}");
            }
        }
        assert!(
            affinity_inelig > 0,
            "affinity drop_prob must produce ineligible arrivals"
        );
    }
}
