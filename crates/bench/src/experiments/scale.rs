//! EXP-SCALE — wall-clock scalability of the §2 dispatcher and the
//! treap-vs-naive queue ablation, as a table (the Criterion benches
//! `dispatch_scaling` / `dstruct_ablation` give the rigorous version;
//! this one runs in seconds and lands in the CSV artifacts).
//!
//! Deliberately **serial**: these rows are wall-clock measurements, and
//! fanning them out across the rayon pool would have replicates contend
//! for cores and corrupt each other's timings. (Its CSV is also the one
//! artifact exempt from the byte-identical `--jobs` contract — timing
//! columns vary run to run regardless.)

use std::time::Instant;

use osr_core::{FlowParams, FlowScheduler, QueueBackend};
use osr_model::InstanceKind;
use osr_workload::{ArrivalSpec, FlowWorkload};

use crate::table::{fmt_g4, Table};

fn time_run(inst: &osr_model::Instance, backend: QueueBackend) -> f64 {
    let mut params = FlowParams::new(0.25);
    params.backend = backend;
    let sched = FlowScheduler::new(params).unwrap();
    // Warm-up, then a timed repetition.
    let _ = sched.run(inst);
    let t0 = Instant::now();
    let out = sched.run(inst);
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(out.log.rejected_count());
    dt
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[1_000, 5_000]
    } else {
        &[1_000, 5_000, 20_000, 100_000]
    };

    let mut scaling = Table::new(
        "EXP-SCALE: section-2 scheduler throughput vs n (8 machines)",
        &["n", "seconds", "jobs_per_sec"],
    );
    for &n in sizes {
        let inst = FlowWorkload::standard(n, 8, 42).generate(InstanceKind::FlowTime);
        let dt = time_run(&inst, QueueBackend::Treap);
        scaling.row(vec![n.to_string(), fmt_g4(dt), fmt_g4(n as f64 / dt)]);
    }

    let mut ablation = Table::new(
        "EXP-SCALE: treap vs naive queue on deep single-machine queues",
        &["n", "treap_s", "naive_s", "speedup"],
    );
    ablation.note("single machine, batched arrivals → queue length Θ(n); backends produce identical schedules");
    let ab_sizes: &[usize] = if quick {
        &[2_000]
    } else {
        &[2_000, 10_000, 40_000]
    };
    for &n in ab_sizes {
        let mut w = FlowWorkload::standard(n, 1, 7);
        w.arrivals = ArrivalSpec::Batch {
            per_batch: n / 4,
            gap: 5.0,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        let t_treap = time_run(&inst, QueueBackend::Treap);
        let t_naive = time_run(&inst, QueueBackend::Naive);
        ablation.row(vec![
            n.to_string(),
            fmt_g4(t_treap),
            fmt_g4(t_naive),
            fmt_g4(t_naive / t_treap),
        ]);
    }

    vec![scaling, ablation]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_runs_and_reports_throughput() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        for row in &tables[0].rows {
            let jps: f64 = row[2].parse().unwrap();
            assert!(jps > 1000.0, "implausibly slow: {row:?}");
        }
        // Timing ratios are noisy in CI; just require both columns to
        // be positive.
        for row in &tables[1].rows {
            let a: f64 = row[1].parse().unwrap();
            let b: f64 = row[2].parse().unwrap();
            assert!(a > 0.0 && b > 0.0);
        }
    }
}
