//! EXP-M-SCALE — the dispatch-index ablation across machine counts:
//! `Pruned` (tournament-tree argmin: flat bound scan at mid-size m,
//! mask-guided best-first descent beyond) vs `Linear` (exact `λ_ij` on
//! every machine) on dispatch-shaped workloads — many machines,
//! Poisson arrivals scaled with `m`, so queues stay short and
//! per-arrival dispatch dominates the run. Two machine models per
//! sweep: `identical` (dense eligibility — the PR 2/3 rows) and
//! rack-`affinity` with ≥ 16 groups (sparse eligibility — the regime
//! the PR 4 mask-guided descent changes).
//!
//! Two tables:
//!
//! 1. **equivalence fingerprint** (all modes) — runs *both* strategies
//!    on every row and asserts the schedules are identical before
//!    reporting; its columns are pure schedule facts plus the
//!    **effective** dispatch index of the Pruned-requested run
//!    (`linear` below `PRUNED_MIN_MACHINES` — recorded so ablation
//!    CSVs cannot mislabel themselves), so it is byte-identical across
//!    `--jobs` *and* across `--dispatch pruned|linear` (CI diffs
//!    both).
//! 2. **wall-clock m-sweep** (`--full` only) — pruned vs linear
//!    medians-of-one; timing columns are exempt from the determinism
//!    contract exactly like `scale`'s, which is why they are not
//!    emitted in quick mode (the mode CI diffs).
//!
//! Deliberately **serial** (wall-clock honesty), like `scale`.

use std::time::Instant;

use osr_core::{DispatchIndex, FlowParams, FlowScheduler};
use osr_model::{FinishedLog, InstanceKind, RejectReason};
use osr_workload::{FlowWorkload, MachineSpec};

use crate::table::{fmt_g4, Table};

fn run_with(
    inst: &osr_model::Instance,
    dispatch: DispatchIndex,
) -> (FinishedLog, f64, f64, DispatchIndex) {
    let mut params = FlowParams::new(0.25);
    params.dispatch = dispatch;
    let sched = FlowScheduler::new(params).unwrap();
    let _ = sched.run(inst); // warm-up
    let t0 = Instant::now();
    let out = sched.run(inst);
    let dt = t0.elapsed().as_secs_f64();
    (out.log, out.dual.sum_lambda(), dt, out.effective_dispatch)
}

/// One sweep row: machine count, job count, and the machine model
/// (`None` = identical machines, `Some(groups)` = rack affinity with
/// that many groups and a 2% everywhere-ineligible share).
struct Sweep {
    m: usize,
    n: usize,
    affinity_groups: Option<usize>,
}

const fn sweep(m: usize, n: usize, affinity_groups: Option<usize>) -> Sweep {
    Sweep {
        m,
        n,
        affinity_groups,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    // (m, n): n scales sublinearly at the top so the size matrix
    // (n·m f64s) stays within CI memory. Affinity rows keep the
    // issue's floor of ≥ 16 groups so racks stay sparse.
    let sweeps: &[Sweep] = if quick {
        &[
            sweep(4, 200, None),
            sweep(64, 400, None),
            sweep(256, 512, None),
            sweep(256, 512, Some(16)),
        ]
    } else {
        &[
            sweep(4, 2_000, None),
            sweep(64, 4_000, None),
            sweep(64, 4_000, Some(16)),
            sweep(1_024, 4_096, None),
            sweep(1_024, 4_096, Some(16)),
            sweep(16_384, 2_048, None),
            sweep(16_384, 2_048, Some(64)),
        ]
    };

    let mut fingerprint = Table::new(
        "EXP-M-SCALE: pruned vs linear dispatch — schedule fingerprint (asserted identical)",
        &[
            "m",
            "n",
            "model",
            "flow_all",
            "rejected",
            "inelig",
            "sum_lambda",
            "effective",
            "identical",
        ],
    );
    fingerprint.note(
        "Poisson arrivals ∝ m; both dispatch strategies run on every row; `effective` is \
         what a Pruned request actually executes (linear below PRUNED_MIN_MACHINES)",
    );
    let mut timing = Table::new(
        "EXP-M-SCALE: pruned vs linear dispatch — wall clock",
        &["m", "n", "model", "pruned_s", "linear_s", "speedup"],
    );
    timing.note(
        "timing columns vary run to run (exempt from the --jobs determinism contract, like scale)",
    );

    for sw in sweeps {
        let (m, n) = (sw.m, sw.n);
        let mut w = FlowWorkload::standard(n, m, 4242);
        let model_label = match sw.affinity_groups {
            None => {
                w.machine_model = MachineSpec::Identical;
                "identical".to_string()
            }
            Some(groups) => {
                w.machine_model = MachineSpec::Affinity {
                    groups,
                    drop_prob: 0.02,
                };
                format!("affinity:g{groups}")
            }
        };
        let inst = w.generate(InstanceKind::FlowTime);

        let (log_p, lam_p, dt_p, effective) = run_with(&inst, DispatchIndex::Pruned);
        let (log_l, lam_l, dt_l, _) = run_with(&inst, DispatchIndex::Linear);
        assert_eq!(
            log_p, log_l,
            "m_scale: pruned and linear dispatch diverged at m={m} ({model_label})"
        );
        assert_eq!(lam_p, lam_l, "m_scale: dual diverged at m={m}");
        let metrics = super::must_validate(
            "m_scale",
            &inst,
            &log_p,
            &osr_sim::ValidationConfig::flow_time(),
        );
        let inelig = log_p
            .rejections()
            .filter(|(_, r)| r.reason == RejectReason::Ineligible)
            .count();

        fingerprint.row(vec![
            m.to_string(),
            n.to_string(),
            model_label.clone(),
            fmt_g4(metrics.flow.flow_all),
            metrics.flow.rejected.to_string(),
            inelig.to_string(),
            fmt_g4(lam_p),
            // What the Pruned run *actually* executed, read off its
            // outcome — not recomputed from the request.
            effective.to_string(),
            "yes".to_string(),
        ]);
        timing.row(vec![
            m.to_string(),
            n.to_string(),
            model_label,
            fmt_g4(dt_p),
            fmt_g4(dt_l),
            fmt_g4(dt_l / dt_p),
        ]);
    }

    if quick {
        vec![fingerprint]
    } else {
        vec![fingerprint, timing]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_emits_only_the_deterministic_table() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 4);
        for row in &tables[0].rows {
            assert_eq!(row[8], "yes");
        }
        // The m=4 row records that a Pruned request actually ran the
        // linear scan; every other row ran the pruned index.
        assert_eq!(tables[0].rows[0][7], "linear");
        for row in &tables[0].rows[1..] {
            assert_eq!(row[7], "pruned");
        }
        // The affinity row exercises sparse eligibility, including
        // everywhere-ineligible arrivals.
        let affinity = &tables[0].rows[3];
        assert_eq!(affinity[2], "affinity:g16");
        assert!(affinity[5].parse::<usize>().unwrap() > 0, "{affinity:?}");
        // Identical-machine rows have no ineligible arrivals.
        assert_eq!(tables[0].rows[0][5], "0");
    }
}
