//! EXP-M-SCALE — the dispatch-index ablation across machine counts:
//! `Pruned` (tournament-tree best-first argmin) vs `Linear` (exact
//! `λ_ij` on every machine) on a dispatch-shaped workload — many
//! identical machines, Poisson arrivals scaled with `m`, so queues stay
//! short and per-arrival dispatch dominates the run.
//!
//! Two tables:
//!
//! 1. **equivalence fingerprint** (all modes) — runs *both* strategies
//!    on every row and asserts the schedules are identical before
//!    reporting; its columns are pure schedule facts, so it is
//!    byte-identical across `--jobs` *and* across
//!    `--dispatch pruned|linear` (CI diffs both).
//! 2. **wall-clock m-sweep** (`--full` only) — pruned vs linear
//!    medians-of-one; timing columns are exempt from the determinism
//!    contract exactly like `scale`'s, which is why they are not
//!    emitted in quick mode (the mode CI diffs).
//!
//! Deliberately **serial** (wall-clock honesty), like `scale`.

use std::time::Instant;

use osr_core::{DispatchIndex, FlowParams, FlowScheduler};
use osr_model::{FinishedLog, InstanceKind};
use osr_workload::{FlowWorkload, MachineSpec};

use crate::table::{fmt_g4, Table};

fn run_with(inst: &osr_model::Instance, dispatch: DispatchIndex) -> (FinishedLog, f64, f64) {
    let mut params = FlowParams::new(0.25);
    params.dispatch = dispatch;
    let sched = FlowScheduler::new(params).unwrap();
    let _ = sched.run(inst); // warm-up
    let t0 = Instant::now();
    let out = sched.run(inst);
    let dt = t0.elapsed().as_secs_f64();
    (out.log, out.dual.sum_lambda(), dt)
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<Table> {
    // (m, n): n scales sublinearly at the top so the size matrix
    // (n·m f64s) stays within CI memory.
    let sweeps: &[(usize, usize)] = if quick {
        &[(4, 200), (64, 400), (256, 512)]
    } else {
        &[(4, 2_000), (64, 4_000), (1_024, 4_096), (16_384, 2_048)]
    };

    let mut fingerprint = Table::new(
        "EXP-M-SCALE: pruned vs linear dispatch — schedule fingerprint (asserted identical)",
        &["m", "n", "flow_all", "rejected", "sum_lambda", "identical"],
    );
    fingerprint.note(
        "identical machines, Poisson arrivals ∝ m; both dispatch strategies run on every row",
    );
    let mut timing = Table::new(
        "EXP-M-SCALE: pruned vs linear dispatch — wall clock",
        &["m", "n", "pruned_s", "linear_s", "speedup"],
    );
    timing.note(
        "timing columns vary run to run (exempt from the --jobs determinism contract, like scale)",
    );

    for &(m, n) in sweeps {
        let mut w = FlowWorkload::standard(n, m, 4242);
        w.machine_model = MachineSpec::Identical;
        let inst = w.generate(InstanceKind::FlowTime);

        let (log_p, lam_p, dt_p) = run_with(&inst, DispatchIndex::Pruned);
        let (log_l, lam_l, dt_l) = run_with(&inst, DispatchIndex::Linear);
        assert_eq!(
            log_p, log_l,
            "m_scale: pruned and linear dispatch diverged at m={m}"
        );
        assert_eq!(lam_p, lam_l, "m_scale: dual diverged at m={m}");
        let metrics = super::must_validate(
            "m_scale",
            &inst,
            &log_p,
            &osr_sim::ValidationConfig::flow_time(),
        );

        fingerprint.row(vec![
            m.to_string(),
            n.to_string(),
            fmt_g4(metrics.flow.flow_all),
            metrics.flow.rejected.to_string(),
            fmt_g4(lam_p),
            "yes".to_string(),
        ]);
        timing.row(vec![
            m.to_string(),
            n.to_string(),
            fmt_g4(dt_p),
            fmt_g4(dt_l),
            fmt_g4(dt_l / dt_p),
        ]);
    }

    if quick {
        vec![fingerprint]
    } else {
        vec![fingerprint, timing]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_emits_only_the_deterministic_table() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
        for row in &tables[0].rows {
            assert_eq!(row[5], "yes");
        }
    }
}
