//! # osr-bench — experiment harness
//!
//! One module per experiment from DESIGN.md §3; each produces a
//! [`table::Table`] that prints aligned to the console and serializes
//! to CSV. `src/bin/run_experiments.rs` runs them all and writes the
//! CSVs into `results/`; individual `exp_*` binaries run one each.
//!
//! All experiments run in **quick** mode (seconds, used by integration
//! tests and CI) or **full** mode (the numbers recorded in
//! EXPERIMENTS.md).
//!
//! ## Parallelism and determinism
//!
//! Each experiment's replicate cross product (seeds × instances ×
//! policies) fans out over a rayon worker pool; `run_experiments
//! --jobs N` sets the worker count. Output is **byte-identical for any
//! `N`** — every replicate derives its RNG stream from its own explicit
//! seed and results are collected in input order (see
//! [`experiments`] for the full contract; `scale`, which measures
//! wall-clock, is the one deliberately-serial exception). CI pins this
//! with a `--jobs 1` vs `--jobs 8` CSV diff, and the
//! `parallel_determinism` integration test does the same in-process.
//!
//! ## Perf baselines
//!
//! The Criterion suites under `benches/` track the dispatch hot path
//! (`dstruct_ablation`, `dispatch_scaling`) and the event queue
//! (`event_queue`). `src/bin/bench_summary.rs` runs the dispatch suites
//! and distills `BENCH_dispatch.json`; BENCH.md explains how to record
//! a new baseline and keeps the narrative history.

// Stylistic lints intentionally not followed:
// - `needless_range_loop`: machine loops index several parallel state
//   arrays; iterator zips would obscure the shared index.
// - `neg_cmp_op_on_partial_ord`: `!(x > 0.0)` deliberately treats NaN as
//   invalid in parameter validation.
#![allow(clippy::needless_range_loop, clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::{fmt_g4, Table};

/// An experiment entry point: `quick` flag in, result tables out.
pub type ExperimentFn = fn(bool) -> Vec<Table>;

/// Experiment registry: `(id, description, runner)`.
pub fn all_experiments() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        (
            "t1_ratio",
            "Theorem 1: competitive ratio and rejection budget vs eps",
            experiments::t1_ratio::run,
        ),
        (
            "t1_exact",
            "Theorem 1: ratio against exact OPT on tiny instances",
            experiments::t1_exact::run,
        ),
        (
            "t1_baselines",
            "Theorem 1 vs no-rejection and speed-augmentation baselines",
            experiments::t1_baselines::run,
        ),
        (
            "l1_immediate",
            "Lemma 1: immediate rejection blows up as sqrt(Delta)",
            experiments::l1_immediate::run,
        ),
        (
            "t2_ratio",
            "Theorem 2: weighted flow + energy ratio and weight budget",
            experiments::t2_ratio::run,
        ),
        (
            "t3_ratio",
            "Theorem 3: energy ratio vs alpha^alpha, AVR comparison",
            experiments::t3_ratio::run,
        ),
        (
            "l2_energy",
            "Lemma 2: adaptive adversary forces (alpha/9)^alpha growth",
            experiments::l2_energy::run,
        ),
        (
            "smoothness",
            "Definition 1: randomized audit of the smooth inequality",
            experiments::smoothness::run,
        ),
        (
            "dual_feasibility",
            "Lemmas 4 & 6: runtime dual-constraint audits",
            experiments::dual_feasibility::run,
        ),
        (
            "rule_ablation",
            "Ablation: Rule 1 / Rule 2 marginal value",
            experiments::rule_ablation::run,
        ),
        (
            "load_sweep",
            "Behaviour across offered load: rejection keeps overload stable",
            experiments::load_sweep::run,
        ),
        (
            "scale",
            "Wall-clock scalability and treap-vs-naive queue ablation",
            experiments::scale::run,
        ),
        (
            "m_scale",
            "Dispatch-index ablation across machine counts (pruned vs linear)",
            experiments::m_scale::run,
        ),
        (
            "workload_sweep",
            "Scenario grid (arrivals x sizes x machines) across the full policy lineup",
            experiments::workload_sweep::run,
        ),
    ]
}
