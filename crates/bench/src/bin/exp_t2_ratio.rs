//! Thin wrapper: runs only the `t2_ratio` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "t2_ratio")
        .expect("registered experiment");
    println!("### t2_ratio — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
