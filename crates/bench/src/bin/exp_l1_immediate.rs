//! Thin wrapper: runs only the `l1_immediate` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "l1_immediate")
        .expect("registered experiment");
    println!("### l1_immediate — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
