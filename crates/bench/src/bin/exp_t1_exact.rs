//! Thin wrapper: runs only the `t1_exact` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "t1_exact")
        .expect("registered experiment");
    println!("### t1_exact — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
