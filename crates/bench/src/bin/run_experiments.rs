//! Runs every experiment and writes CSV artifacts to `results/`.
//!
//! ```text
//! cargo run --release -p osr-bench --bin run_experiments -- \
//!     [--quick] [--jobs N] [--dispatch pruned|linear] \
//!     [--propagation lazy|eager] [--capacity incremental|rebuild] \
//!     [--shards N] [ids…]
//! ```
//!
//! With no ids, runs all experiments. `--quick` uses the reduced sizes
//! (the same configuration the integration tests assert on). `--jobs N`
//! sets the worker count for each experiment's replicate fan-out;
//! whatever the value, the emitted tables and CSVs are **byte-identical**
//! (see `osr_bench::experiments` for the determinism contract), so
//! `--jobs` trades wall-clock only. `--dispatch` overrides the
//! process-default dispatch-argmin strategy for every scheduler the
//! experiments construct; because the pruned index is exact, CSVs are
//! byte-identical for either value too (CI diffs both knobs).
//! `--propagation` likewise overrides the tournament index's
//! ancestor-propagation default (lazy dirty-leaf repair vs the eager
//! compat mode); lazy repair reproduces the eager aggregates exactly,
//! so CSVs are byte-identical across this knob too — the third CI
//! diff. `--capacity` overrides how the dispatch index absorbs
//! elastic-pool events (incremental grow/tombstone/compact vs a
//! rebuild-from-scratch oracle after every event); incremental resize
//! is exact, so CSVs are byte-identical across this knob as well —
//! the fourth CI diff. `--shards N` overrides the epoch-sharded event
//! driver's process default for every flow/weighted/energy run (`1` =
//! the serial reference loop); the sharded driver reconciles cross-shard
//! argmin candidates with the serial tie-break, so CSVs are
//! byte-identical across this knob as well — the fifth CI diff.

use std::fs;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    let mut wanted: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {}
            "--dispatch" => {
                let v = iter.next().unwrap_or_else(|| {
                    eprintln!("--dispatch needs a value (pruned|linear)");
                    std::process::exit(2);
                });
                match v.as_str() {
                    "pruned" => {
                        osr_core::set_default_dispatch_index(osr_core::DispatchIndex::Pruned)
                    }
                    "linear" => {
                        osr_core::set_default_dispatch_index(osr_core::DispatchIndex::Linear)
                    }
                    other => {
                        eprintln!("--dispatch wants pruned|linear, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--propagation" => {
                let v = iter.next().unwrap_or_else(|| {
                    eprintln!("--propagation needs a value (lazy|eager)");
                    std::process::exit(2);
                });
                match v.as_str() {
                    "lazy" => osr_core::set_default_propagation(osr_core::Propagation::Lazy),
                    "eager" => osr_core::set_default_propagation(osr_core::Propagation::Eager),
                    other => {
                        eprintln!("--propagation wants lazy|eager, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--capacity" => {
                let v = iter.next().unwrap_or_else(|| {
                    eprintln!("--capacity needs a value (incremental|rebuild)");
                    std::process::exit(2);
                });
                match v.as_str() {
                    "incremental" => osr_core::set_default_capacity_index(
                        osr_core::CapacityIndexMode::Incremental,
                    ),
                    "rebuild" => {
                        osr_core::set_default_capacity_index(osr_core::CapacityIndexMode::Rebuild)
                    }
                    other => {
                        eprintln!("--capacity wants incremental|rebuild, got {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                let v = iter.next().unwrap_or_else(|| {
                    eprintln!("--shards needs a value (integer >= 1)");
                    std::process::exit(2);
                });
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => osr_core::set_default_shards(n),
                    _ => {
                        eprintln!("--shards needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                let v = iter.next().unwrap_or_else(|| {
                    eprintln!("--jobs needs a value");
                    std::process::exit(2);
                });
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            s if s.starts_with("--") => {
                eprintln!("unknown flag {s}");
                std::process::exit(2);
            }
            s => wanted.push(s.to_string()),
        }
    }

    if let Some(n) = jobs {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure worker pool");
    }

    fs::create_dir_all("results").expect("create results dir");

    let mut ran = 0;
    for (id, description, runner) in osr_bench::all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        println!("\n### {id} — {description}\n");
        let t0 = Instant::now();
        let tables = runner(quick);
        let dt = t0.elapsed();
        for (k, table) in tables.iter().enumerate() {
            println!("{table}");
            let path = if tables.len() == 1 {
                format!("results/{id}.csv")
            } else {
                format!("results/{id}_{k}.csv")
            };
            let mut f = fs::File::create(&path).expect("create csv");
            f.write_all(table.to_csv().as_bytes()).expect("write csv");
            println!("  -> {path}");
        }
        println!("  ({:.2}s)", dt.as_secs_f64());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; known ids:");
        for (id, desc, _) in osr_bench::all_experiments() {
            eprintln!("  {id:<18} {desc}");
        }
        std::process::exit(2);
    }
}
