//! Runs every experiment and writes CSV artifacts to `results/`.
//!
//! ```text
//! cargo run --release -p osr-bench --bin run_experiments -- \
//!     [--quick] [--jobs N] [--dispatch-index linear|pruned] \
//!     [--capacity-index incremental|rebuild] [--propagation eager|lazy] \
//!     [--shards N] [--kernels chunked|scalar] [ids…]
//! ```
//!
//! With no ids, runs all experiments. `--quick` uses the reduced sizes
//! (the same configuration the integration tests assert on). `--jobs N`
//! sets the worker count for each experiment's replicate fan-out;
//! whatever the value, the emitted tables and CSVs are **byte-identical**
//! (see `osr_bench::experiments` for the determinism contract), so
//! `--jobs` trades wall-clock only.
//!
//! The five runtime knobs are the shared [`osr_core::RuntimeDefaults`]
//! vocabulary (same spellings and parsers as `osr run` / `osr serve`;
//! the pre-unification spellings `--dispatch` and `--capacity` are kept
//! as aliases). Every knob is **result-neutral** — the pruned index is
//! exact, lazy repair reproduces the eager aggregates, incremental
//! resize matches the rebuild oracle, and the sharded driver reconciles
//! cross-shard argmin candidates with the serial tie-break — so CSVs
//! are byte-identical across all of them; CI diffs each one.

use std::fs;
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    let mut wanted: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut defaults = osr_core::RuntimeDefaults::default();
    let mut iter = args.iter();
    // Takes the flag's value token or dies with the shared usage text.
    fn value<'a>(iter: &mut std::slice::Iter<'a, String>, flag: &str) -> &'a str {
        iter.next().map(String::as_str).unwrap_or_else(|| {
            eprintln!("{flag} needs a value; runtime knobs:");
            eprint!("{}", osr_core::knob_help("  "));
            std::process::exit(2);
        })
    }
    fn parsed<T>(r: Result<T, String>) -> T {
        r.unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {}
            "--dispatch-index" | "--dispatch" => {
                defaults.dispatch = Some(parsed(osr_core::parse_dispatch(value(
                    &mut iter,
                    "--dispatch-index",
                ))));
            }
            "--capacity-index" | "--capacity" => {
                defaults.capacity_index = Some(parsed(osr_core::parse_capacity_index(value(
                    &mut iter,
                    "--capacity-index",
                ))));
            }
            "--propagation" => {
                defaults.propagation = Some(parsed(osr_core::parse_propagation(value(
                    &mut iter,
                    "--propagation",
                ))));
            }
            "--shards" => {
                defaults.shards =
                    Some(parsed(osr_core::parse_shards(value(&mut iter, "--shards"))));
            }
            "--kernels" => {
                defaults.kernels = Some(parsed(osr_core::parse_kernels(value(
                    &mut iter,
                    "--kernels",
                ))));
            }
            "--jobs" => {
                let v = iter.next().unwrap_or_else(|| {
                    eprintln!("--jobs needs a value");
                    std::process::exit(2);
                });
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            s if s.starts_with("--") => {
                eprintln!("unknown flag {s}; runtime knobs:");
                eprint!("{}", osr_core::knob_help("  "));
                std::process::exit(2);
            }
            s => wanted.push(s.to_string()),
        }
    }
    defaults.apply();

    if let Some(n) = jobs {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure worker pool");
    }

    fs::create_dir_all("results").expect("create results dir");

    let mut ran = 0;
    for (id, description, runner) in osr_bench::all_experiments() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        println!("\n### {id} — {description}\n");
        let t0 = Instant::now();
        let tables = runner(quick);
        let dt = t0.elapsed();
        for (k, table) in tables.iter().enumerate() {
            println!("{table}");
            let path = if tables.len() == 1 {
                format!("results/{id}.csv")
            } else {
                format!("results/{id}_{k}.csv")
            };
            let mut f = fs::File::create(&path).expect("create csv");
            f.write_all(table.to_csv().as_bytes()).expect("write csv");
            println!("  -> {path}");
        }
        println!("  ({:.2}s)", dt.as_secs_f64());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; known ids:");
        for (id, desc, _) in osr_bench::all_experiments() {
            eprintln!("  {id:<18} {desc}");
        }
        std::process::exit(2);
    }
}
