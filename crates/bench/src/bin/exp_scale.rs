//! Thin wrapper: runs only the `scale` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "scale")
        .expect("registered experiment");
    println!("### scale — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
