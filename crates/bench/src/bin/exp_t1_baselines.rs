//! Thin wrapper: runs only the `t1_baselines` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "t1_baselines")
        .expect("registered experiment");
    println!("### t1_baselines — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
