//! CI bench-regression gate: compares a freshly generated
//! `BENCH_dispatch.json` against the committed baseline and fails on a
//! >30% regression of any **key ratio**.
//!
//! ```text
//! cargo run --release -p osr-bench --bin bench_check -- \
//!     --baseline BENCH_dispatch.json --fresh /tmp/BENCH_dispatch.json \
//!     [--tolerance 0.30]
//! ```
//!
//! Raw ns/op medians are machine-dependent (laptop vs CI container), so
//! the gate compares **within-run speedup ratios** — slow-structure
//! median ÷ fast-structure median from the *same* file — which cancel
//! the hardware factor. A regression means the optimized structure lost
//! ground against its own ablation baseline: exactly the property the
//! BENCH.md trajectory exists to protect. The tolerance (default 0.30,
//! i.e. "fail on >30% regression") absorbs quick-mode sampling noise;
//! the tracked ratios are chosen with wide speedup margins, and the
//! two allocation-heavy pairs whose measured run-to-run wobble
//! approaches the default gate carry wider per-ratio tolerances (see
//! `KEY_RATIOS`). `--tolerance` raises the floor for every pair.
//!
//! Pairs present in the fresh run but missing from the baseline are
//! reported and skipped (a new bench lands before its first committed
//! baseline); pairs missing from the fresh run fail (a tracked bench
//! disappeared).

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

/// The tracked speedup ratios: (label, group, slow bench, fast bench,
/// per-ratio tolerance override). Every entry is a
/// structure-vs-ablation pair; `Some(t)` widens the gate for pairs
/// whose quick-mode medians are demonstrably noisy (allocation-heavy
/// 100k-element microbenches swing ±25% run to run on an idle
/// container — measured across three committed/fresh snapshots — so a
/// default-tolerance gate on them would flake). The wider tolerances
/// still catch the regressions that matter: both guarded ratios sit at
/// 2–6×, so a 50% gate fires long before the optimized structure
/// actually loses to its ablation.
const KEY_RATIOS: &[(&str, &str, &str, &str, Option<f64>)] = &[
    (
        "treap-vs-naive end-to-end (n=10k)",
        "queue_backend_end_to_end",
        "Naive/10000",
        "Treap/10000",
        None,
    ),
    (
        "arena-vs-boxed treap raw (n=100k)",
        "agg_structures_raw",
        "boxed_treap/100000",
        "arena_treap/100000",
        Some(0.50),
    ),
    (
        "pruned-vs-linear dispatch (m=1024)",
        "dispatch_m_sweep",
        "linear_m1024/4096",
        "pruned_m1024/4096",
        None,
    ),
    (
        "from_sorted-vs-incremental build (n=100k)",
        "treap_bulk_build",
        "incremental/100000",
        "from_sorted/100000",
        Some(0.50),
    ),
    (
        "binary-vs-pairing event queue (n=100k)",
        "event_queue_backends",
        "pairing_heap/100000",
        "binary_heap/100000",
        None,
    ),
    (
        "cached-vs-scanned p-hat (m=1024)",
        "p_hat_precompute",
        "scan_m1024/2000",
        "cached_m1024/2000",
        None,
    ),
    // PR 4: the mask-guided tournament descent on affinity workloads.
    // The micro pair isolates blind-vs-masked search (the sparse
    // bit-walk path at this size: ~280× recorded); the end-to-end pair
    // guards the full scheduler against losing to its own linear
    // ablation on affinity scenarios (~1.8× recorded, and an
    // eligibility-blind index sits at ~0.75× — well below the widened
    // 50% gate).
    (
        "masked-vs-blind affinity descent (m=1024, g=16)",
        "masked_descent",
        "blind_m1024_g16",
        "masked_m1024_g16",
        Some(0.50),
    ),
    (
        "affinity pruned-vs-linear end-to-end (m=1024, g=16)",
        "dispatch_affinity_m_sweep",
        "linear_m1024_g16/4096",
        "pruned_m1024_g16/4096",
        Some(0.50),
    ),
    // PR 5: the update-side rework. The churn pair isolates lazy
    // dirty-leaf repair vs eager ancestor propagation at the
    // acceptance point (m=1024, 8 mutations per search); the rack
    // pair isolates rack-local vs global p̂ subtree bounds on the
    // masked heap descent (m=16384, g=64 — the regime PR 4 left at
    // 22× instead of 287×); the m=64 end-to-end pair guards the
    // affinity row the flat leaf-table update flipped positive
    // (was 0.82× — *slower* than linear — with eager ancestor
    // maintenance the flat search never read).
    (
        "lazy-vs-eager update churn (m=1024, r=8)",
        "update_churn",
        "eager_m1024_r8",
        "lazy_m1024_r8",
        Some(0.50),
    ),
    (
        "rack-vs-global p-hat bounds (m=16384, g=64)",
        "rack_phat",
        "global_m16384_g64",
        "rack_m16384_g64",
        Some(0.50),
    ),
    // PR 6: the elastic-pool resize path. Incremental
    // tombstone/join absorption of a rack-sized incident vs the
    // rebuild-from-scratch oracle that reconstructs the index after
    // every capacity event (the `CapacityIndexMode::Rebuild`
    // contract). The oracle exists for bit-identical CI diffs, not
    // speed — the margin is wide (per-event rebuilds are O(m·events))
    // — so the widened 50% gate guards the incremental path without
    // flaking on quick-mode noise.
    (
        "incremental-vs-rebuild elastic resize (m=1024)",
        "elastic_resize",
        "rebuild_m1024",
        "incremental_m1024",
        Some(0.50),
    ),
    (
        // Default (not widened) tolerance on purpose: the guarded
        // margin is thin — baseline ~1.34x, and the regression this
        // pair exists to catch (eager ancestor maintenance back on
        // the flat path) lands at ~0.82x. A 50% gate (threshold
        // 0.67x) would wave that through; the 30% default fires at
        // ~0.94x, squarely between the observed run-to-run medians
        // (1.26–1.34x) and the known-bad state.
        "affinity pruned-vs-linear end-to-end (m=64, g=16)",
        "dispatch_affinity_m_sweep",
        "linear_m64_g16/2048",
        "pruned_m64_g16/2048",
        None,
    ),
    // PR 7: the epoch-sharded event driver. This pair is an
    // **overhead gate**, not a speedup gate: on a single-core host the
    // rayon pool degrades to serial execution, so `serial/sharded8`
    // measures pure sharding bookkeeping (per-shard index slices,
    // epoch assembly, the barrier merge). The ratio sits near 1.0× by
    // construction, and the gate fires when it *drops* — i.e. when the
    // sharded path gets meaningfully slower than the serial loop, the
    // regression mode that would silently tax every `--shards` run.
    // Multi-core speedup is evaluated manually (BENCH.md, PR 7
    // section). Widened to 50%: both medians are end-to-end scheduler
    // runs with quick-mode sample counts.
    (
        "serial-vs-sharded8 epoch driver overhead (m=4096)",
        "epoch_shard",
        "serial_m4096/20480",
        "sharded8_m4096/20480",
        Some(0.50),
    ),
    // PR 9: the chunked `[T;4]` kernel layer vs its scalar oracle,
    // isolated from the schedulers at the acceptance size m = 1024.
    // `flat_scan` (fused bound eval + argmin) and `dirty_sweep`
    // (per-level ancestor recompute) are the lane wins the gate
    // protects; `mask_walk` chunks only the word math around the
    // serial set-bit walk; `agg_pass` is dependency-serialized in
    // both modes (treap parent-child chains), so its ratio sits at
    // ≈ 1× by construction and is recorded but deliberately NOT
    // gated — a 50% gate on an exactly-1.0 pair would only ever
    // measure container noise.
    (
        "chunked-vs-scalar flat bound scan (m=1024)",
        "kernel_ablation",
        "flat_scan_scalar_m1024",
        "flat_scan_chunked_m1024",
        Some(0.50),
    ),
    (
        "chunked-vs-scalar dirty-leaf sweep (m=1024)",
        "kernel_ablation",
        "dirty_sweep_scalar_m1024",
        "dirty_sweep_chunked_m1024",
        Some(0.50),
    ),
    (
        "chunked-vs-scalar mask word walk (m=1024)",
        "kernel_ablation",
        "mask_walk_scalar_m1024",
        "mask_walk_chunked_m1024",
        Some(0.50),
    ),
    // PR 10: the write-ahead journal's durability tax on the serve
    // ingest path — a journal_overhead row, not a speedup gate. The
    // plain/journaled ratio sits **below 1× by construction** (the
    // journaled run adds one fsync per ingest call), and the gate fires
    // when it drops further — i.e. when journaling gets relatively more
    // expensive (an extra fsync, per-record allocation, losing the
    // batched single-write append). fsync cost is environment-dependent
    // (tmpfs vs overlay vs disk), so the widened 50% tolerance is the
    // honest gate; the absolute medians are recorded for BENCH.md.
    (
        "journal-off vs journal-on serve replay (m=6)",
        "serve_journal",
        "replay_plain_m6",
        "replay_journaled_m6",
        Some(0.50),
    ),
];

/// Extracts the string value of `"key":"…"` from a JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts the numeric value of `"key":…` from a JSON line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses a BENCH_dispatch.json document into `(group, bench) → median_ns`.
fn parse_medians(path: &str) -> Result<HashMap<(String, String), f64>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut out = HashMap::new();
    for line in text.lines() {
        let Some(group) = str_field(line, "group") else {
            continue;
        };
        let bench = str_field(line, "bench")
            .ok_or_else(|| format!("{path}: result line missing \"bench\": {line}"))?;
        let median = num_field(line, "median_ns")
            .ok_or_else(|| format!("{path}: result line missing \"median_ns\": {line}"))?;
        out.insert((group, bench), median);
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark results found"));
    }
    Ok(out)
}

fn ratio(
    medians: &HashMap<(String, String), f64>,
    group: &str,
    slow: &str,
    fast: &str,
) -> Option<f64> {
    let s = medians.get(&(group.to_string(), slow.to_string()))?;
    let f = medians.get(&(group.to_string(), fast.to_string()))?;
    (*f > 0.0).then(|| s / f)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = get("--baseline").unwrap_or_else(|| "BENCH_dispatch.json".to_string());
    let Some(fresh_path) = get("--fresh") else {
        eprintln!("usage: bench_check --baseline FILE --fresh FILE [--tolerance 0.30]");
        return ExitCode::from(2);
    };
    let tolerance: f64 = match get("--tolerance").as_deref().unwrap_or("0.30").parse() {
        Ok(t) if (0.0..1.0).contains(&t) => t,
        _ => {
            eprintln!("--tolerance must be a fraction in [0, 1)");
            return ExitCode::from(2);
        }
    };

    let (baseline, fresh) = match (parse_medians(&baseline_path), parse_medians(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::from(2);
        }
    };

    println!(
        "{:<44} {:>10} {:>10} {:>8}  verdict",
        "key ratio (slow/fast medians)", "baseline", "fresh", "change"
    );
    // Every tracked ratio is evaluated before any verdict is final, so
    // one run reports the complete damage — a fix-one-rerun-find-the-
    // next loop on a suite this slow would cost a full bench cycle per
    // failure.
    let mut failures: Vec<String> = Vec::new();
    for &(label, group, slow, fast, tol_override) in KEY_RATIOS {
        let tol = tol_override.unwrap_or(tolerance).max(tolerance);
        let base = ratio(&baseline, group, slow, fast);
        let now = ratio(&fresh, group, slow, fast);
        match (base, now) {
            (Some(b), Some(n)) => {
                let change = n / b - 1.0;
                let ok = n >= b * (1.0 - tol);
                if !ok {
                    failures.push(format!(
                        "{label}: baseline {b:.2}x -> fresh {n:.2}x \
                         ({:+.1}%, tolerance {:.0}%)",
                        change * 100.0,
                        tol * 100.0
                    ));
                }
                println!(
                    "{label:<44} {b:>9.2}x {n:>9.2}x {:>+7.1}%  {} (tol {:.0}%)",
                    change * 100.0,
                    if ok { "ok" } else { "REGRESSED" },
                    tol * 100.0
                );
            }
            (None, Some(n)) => {
                println!(
                    "{label:<44} {:>10} {n:>9.2}x {:>8}  new (no baseline yet)",
                    "-", "-"
                );
            }
            (_, None) => {
                failures.push(format!("{label}: MISSING from fresh run"));
                println!(
                    "{label:<44} {:>10} {:>10} {:>8}  MISSING from fresh run",
                    "?", "?", "-"
                );
            }
        }
    }

    if !failures.is_empty() {
        eprintln!(
            "\nbench_check: {} key ratio(s) regressed past their tolerance \
             against {baseline_path}:",
            failures.len()
        );
        for f in &failures {
            eprintln!("  - {f}");
        }
        eprintln!(
            "If the regression is intended (e.g. an ablation re-baseline), regenerate the \
             baseline with `cargo run --release -p osr-bench --bin bench_summary` and commit it \
             together with a BENCH.md entry explaining the move."
        );
        ExitCode::FAILURE
    } else {
        println!("\nbench_check: all key ratios within tolerance of baseline");
        ExitCode::SUCCESS
    }
}
