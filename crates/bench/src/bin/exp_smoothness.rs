//! Thin wrapper: runs only the `smoothness` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "smoothness")
        .expect("registered experiment");
    println!("### smoothness — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
