//! Thin wrapper: runs only the `l2_energy` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "l2_energy")
        .expect("registered experiment");
    println!("### l2_energy — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
