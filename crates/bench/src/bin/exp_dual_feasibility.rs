//! Thin wrapper: runs only the `dual_feasibility` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "dual_feasibility")
        .expect("registered experiment");
    println!("### dual_feasibility — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
