//! Thin wrapper: runs only the `rule_ablation` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "rule_ablation")
        .expect("registered experiment");
    println!("### rule_ablation — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
