//! Thin wrapper: runs only the `t3_ratio` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "t3_ratio")
        .expect("registered experiment");
    println!("### t3_ratio — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
