//! Thin wrapper: runs only the `load_sweep` experiment (accepts `--quick`).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (_, desc, runner) = osr_bench::all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "load_sweep")
        .expect("registered experiment");
    println!("### load_sweep — {desc}\n");
    for table in runner(quick) {
        println!("{table}");
    }
}
