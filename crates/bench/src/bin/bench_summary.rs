//! Runs the dispatch-path Criterion suites in quick mode and distills
//! one machine-readable artifact, `BENCH_dispatch.json` — the perf
//! trajectory baseline future optimisation PRs regress against.
//!
//! ```text
//! cargo run --release -p osr-bench --bin bench_summary [-- --out PATH]
//! ```
//!
//! Mechanism: invokes `cargo bench` for the `dstruct_ablation`,
//! `event_queue`, and `epoch_shard` suites with `OSR_BENCH_QUICK=1`
//! (5 samples × ~5 ms —
//! seconds, not minutes) and `OSR_BENCH_JSON` pointed at a temp file the
//! criterion shim appends one JSON line per benchmark to; those lines
//! are then wrapped into a single JSON document with median ns/op per
//! structure/size. To record a slower, steadier baseline (for BENCH.md),
//! run with `--full`, which drops `OSR_BENCH_QUICK`.

use std::fs;
use std::process::Command;

const SUITES: &[&str] = &[
    "dstruct_ablation",
    "event_queue",
    "epoch_shard",
    "serve_journal",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dispatch.json".to_string());

    let json_lines = std::env::temp_dir().join(format!("osr_bench_{}.jsonl", std::process::id()));
    let _ = fs::remove_file(&json_lines);

    for suite in SUITES {
        eprintln!("== cargo bench --bench {suite} ==");
        let mut cmd = Command::new(env!("CARGO", "cargo"));
        cmd.args(["bench", "-p", "osr-bench", "--bench", suite])
            .env("OSR_BENCH_JSON", &json_lines);
        if !full {
            cmd.env("OSR_BENCH_QUICK", "1");
        }
        let status = cmd.status().expect("spawn cargo bench");
        assert!(
            status.success(),
            "cargo bench --bench {suite} failed: {status}"
        );
    }

    let lines = fs::read_to_string(&json_lines).expect("bench json lines");
    let results: Vec<&str> = lines.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!results.is_empty(), "benches emitted no results");

    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"artifact\": \"BENCH_dispatch\",\n");
    doc.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if full { "full" } else { "quick" }
    ));
    doc.push_str(&format!("  \"suites\": [\"{}\"],\n", SUITES.join("\", \"")));
    doc.push_str("  \"unit\": \"median ns per iteration\",\n");
    doc.push_str("  \"results\": [\n");
    for (i, line) in results.iter().enumerate() {
        doc.push_str("    ");
        doc.push_str(line);
        if i + 1 < results.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("  ]\n}\n");

    fs::write(&out_path, &doc).expect("write summary");
    let _ = fs::remove_file(&json_lines);
    println!("wrote {out_path} ({} benchmarks)", results.len());
}
