//! Aligned console tables + CSV serialization for experiment output.

/// Formats a float with 4 significant digits (compact, table-friendly).
pub fn fmt_g4(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (3 - mag).clamp(0, 9) as usize;
    format!("{x:.decimals$}")
}

/// A titled table with fixed columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment/table title (becomes the CSV file stem).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table and embedded as CSV
    /// comments.
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in {}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// CSV rendering (notes as `#` comments).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let head: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", head.join("  "))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            let cells: Vec<String> = r
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_g4_cases() {
        assert_eq!(fmt_g4(0.0), "0");
        assert_eq!(fmt_g4(1.23456), "1.235");
        assert_eq!(fmt_g4(12345.6), "12346");
        assert_eq!(fmt_g4(0.00123456), "0.001235");
        assert_eq!(fmt_g4(f64::INFINITY), "inf");
    }

    #[test]
    fn table_renders_and_serializes() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: hello"));
        let csv = t.to_csv();
        assert!(csv.contains("a,bb\n1,2\n"));
        assert!(csv.starts_with("# hello"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
