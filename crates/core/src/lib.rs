//! # osr-core — the SPAA'18 rejection-scheduling algorithms
//!
//! Faithful implementations of the three algorithms from *"Online
//! Non-preemptive Scheduling on Unrelated Machines with Rejections"*
//! (Lucarelli, Moseley, Thang, Srivastav, Trystram — SPAA 2018):
//!
//! * [`flowtime`] — §2: total flow-time minimization on unrelated
//!   machines. Dual-fitting dispatch by `λ_ij`, SPT local order, both
//!   rejection rules, and the complete dual-variable accounting
//!   (`λ_j`, `β_i(t)`, definitive-finish times `C̃_j`) that yields a
//!   **certified lower bound** on OPT as a by-product of every run
//!   (Theorem 1: `2((1+ε)/ε)²`-competitive, rejects ≤ `2ε`·n jobs).
//! * [`energyflow`] — §3: weighted flow-time plus energy under speed
//!   scaling `P(s) = s^α`. Highest-density-first local order, per-start
//!   speed `γ(Σ_{ℓ∈U_i} w_ℓ)^{1/α}`, weight-budget rejection
//!   (Theorem 2: `O((1+1/ε)^{α/(α-1)})`-competitive, rejects weight
//!   ≤ `ε`·ΣW).
//! * [`energymin`] — §4: total energy with deadlines. Primal-dual greedy
//!   over the configuration LP: at each arrival the (machine, start,
//!   speed) strategy with the least marginal energy is fixed forever
//!   (Theorem 3: `λ/(1-µ)`-competitive under `(λ,µ)`-smooth powers,
//!   `α^α` for `s^α`).
//!
//! Shared helpers:
//!
//! * [`epsilon`] — rejection thresholds and the `1/ε` integrality
//!   convention;
//! * [`bounds`] — closed-form competitive-ratio bounds from the
//!   theorems (the curves experiments compare measurements against);
//! * [`smooth`] — `(λ, µ)`-smoothness (Definition 1) of power functions
//!   and the smooth-inequality audit used by Theorem 3;
//! * [`journal`] — the write-ahead event journal, snapshots, and
//!   recovery-by-replay behind `osr serve --journal`/`--recover`.

// Stylistic lints intentionally not followed:
// - `needless_range_loop`: machine loops index several parallel state
//   arrays; iterator zips would obscure the shared index.
// - `neg_cmp_op_on_partial_ord`: `!(x > 0.0)` deliberately treats NaN as
//   invalid in parameter validation.
#![allow(clippy::needless_range_loop, clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod bounds;
pub mod config;
pub mod dispatch;
pub mod energyflow;
pub mod energymin;
pub mod epsilon;
pub mod flowtime;
pub mod journal;
pub mod session;
pub mod smooth;

pub use bounds::{
    energyflow_competitive_bound, energymin_competitive_bound, energymin_lower_bound,
    flowtime_competitive_bound, flowtime_rejection_budget, immediate_rejection_lower_bound,
};
pub use config::{
    knob_help, parse_capacity_index, parse_dispatch, parse_ingest_buffer, parse_kernels,
    parse_propagation, parse_shards, parse_snap_every, serve_knob_help, KnobSpec, RuntimeDefaults,
    SchedulerConfig, KNOBS, SERVE_KNOBS,
};
pub use dispatch::{
    default_capacity_index, default_dispatch_index, effective_dispatch_index,
    set_default_capacity_index, set_default_dispatch_index, CapacityIndexMode, DispatchIndex,
    PRUNED_MIN_MACHINES,
};
pub use energyflow::{EnergyFlowOutcome, EnergyFlowParams, EnergyFlowScheduler};
pub use energymin::{
    Assignment, EnergyMinOnline, EnergyMinOutcome, EnergyMinParams, EnergyMinScheduler,
};
pub use epsilon::Thresholds;
pub use flowtime::{FlowOutcome, FlowParams, FlowScheduler, QueueBackend};
pub use journal::{
    fingerprint, Journal, JournaledSession, Record, Recovered, RecoveryReport, ReplayOutcome,
    Snapshot,
};
pub use session::{
    Arrival, EnergyFlowSession, FlowSession, ServeSession, ServeSnapshot, WeightedFlowSession,
};
// The ancestor-propagation toggle of the tournament index, re-exported
// so harnesses can ablate it beside the dispatch toggle
// (`run_experiments --propagation eager|lazy`).
pub use osr_dstruct::tournament::{default_propagation, set_default_propagation, Propagation};
// The chunked-kernel toggle of the SoA hot loops, re-exported so
// harnesses can ablate it beside the other knobs
// (`run_experiments --kernels chunked|scalar`; scalar is the bit-exact
// oracle).
pub use osr_dstruct::{default_kernel_mode, set_default_kernel_mode, KernelMode};
// The epoch-sharded driver's shard toggle, re-exported so harnesses can
// ablate it beside the other toggles (`run_experiments --shards N`;
// `1` = the serial oracle, byte-identical at any value).
pub use osr_sim::{default_shards, effective_shards, set_default_shards};
