//! Closed-form bounds from the paper's theorems and lemmas.
//!
//! Experiments plot measured competitive ratios against these curves;
//! the paper's claims hold when measurements stay below the upper
//! bounds (Theorems 1–3) and the adversarial constructions climb at
//! least as fast as the lower bounds (Lemmas 1–2).

/// Theorem 1 upper bound: `2((1+ε)/ε)²`.
pub fn flowtime_competitive_bound(eps: f64) -> f64 {
    let r = (1.0 + eps) / eps;
    2.0 * r * r
}

/// Theorem 1 rejection budget: at most a `2ε` fraction of all jobs.
pub fn flowtime_rejection_budget(eps: f64) -> f64 {
    2.0 * eps
}

/// Theorem 2 competitive bound, computed by optimizing the speed factor
/// `γ` in the proof's ratio
///
/// ```text
///            2 + α/(γ(α−1)) + γ^α
/// ratio(γ) = ─────────────────────────────────────────────────
///            ε/(1+ε) − (α−1) · ( ε/(γ(1+ε)(α−1)) )^{α/(α−1)}
/// ```
///
/// over `γ` with a positive denominator. The paper fixes one particular
/// `γ` and reports the asymptotic `O((1+1/ε)^{α/(α−1)})`; optimizing
/// numerically gives the tightest constant the same proof supports,
/// which is the honest curve to compare measurements against.
pub fn energyflow_competitive_bound(eps: f64, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "speed scaling requires alpha > 1");
    assert!(eps > 0.0, "eps must be positive");
    let ratio = |gamma: f64| -> f64 {
        let num = 2.0 + alpha / (gamma * (alpha - 1.0)) + gamma.powf(alpha);
        let inner = eps / (gamma * (1.0 + eps) * (alpha - 1.0));
        let den = eps / (1.0 + eps) - (alpha - 1.0) * inner.powf(alpha / (alpha - 1.0));
        if den > 1e-12 {
            num / den
        } else {
            f64::INFINITY
        }
    };
    // Coarse-to-fine grid search: ratio(γ) is unimodal on the feasible
    // region for the parameter ranges we use (α ∈ (1, 4], ε ∈ (0, 1]).
    let mut best = f64::INFINITY;
    let mut best_g = 1.0;
    let mut lo: f64 = 1e-3;
    let mut hi: f64 = 1e3;
    for _ in 0..4 {
        let steps = 400;
        for k in 0..=steps {
            // log-space sweep
            let g = lo * (hi / lo).powf(k as f64 / steps as f64);
            let r = ratio(g);
            if r < best {
                best = r;
                best_g = g;
            }
        }
        lo = best_g / 3.0;
        hi = best_g * 3.0;
    }
    best
}

/// Theorem 2 asymptotic form `(1 + 1/ε)^{α/(α−1)}` (constant dropped);
/// useful as a reference slope in plots.
pub fn energyflow_asymptotic(eps: f64, alpha: f64) -> f64 {
    (1.0 + 1.0 / eps).powf(alpha / (alpha - 1.0))
}

/// Theorem 3 bound for `P(s) = s^α`: `α^α`.
pub fn energymin_competitive_bound(alpha: f64) -> f64 {
    alpha.powf(alpha)
}

/// Theorem 3 general bound `λ/(1−µ)` for `(λ, µ)`-smooth powers.
pub fn smooth_competitive_bound(lambda: f64, mu: f64) -> f64 {
    assert!(mu < 1.0, "smoothness requires mu < 1");
    lambda / (1.0 - mu)
}

/// Lemma 2 lower bound: any deterministic algorithm is at least
/// `(α/9)^α`-competitive for non-preemptive energy minimization.
pub fn energymin_lower_bound(alpha: f64) -> f64 {
    (alpha / 9.0).powf(alpha)
}

/// Lemma 1 lower bound: immediate-rejection policies are
/// `Ω(√Δ)`-competitive; this returns the `√Δ` reference curve (constant
/// 1 — the experiment checks *growth*, not the constant).
pub fn immediate_rejection_lower_bound(delta: f64) -> f64 {
    delta.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowtime_bound_matches_formula() {
        assert!((flowtime_competitive_bound(1.0) - 8.0).abs() < 1e-12);
        assert!((flowtime_competitive_bound(0.5) - 18.0).abs() < 1e-12);
        // ε → 0 blows up quadratically.
        assert!(flowtime_competitive_bound(0.01) > 2.0 * 100.0 * 100.0 * 0.99);
    }

    #[test]
    fn flowtime_budget_is_two_eps() {
        assert_eq!(flowtime_rejection_budget(0.25), 0.5);
    }

    #[test]
    fn energyflow_bound_is_finite_and_decreasing_in_eps() {
        let a = energyflow_competitive_bound(0.1, 2.0);
        let b = energyflow_competitive_bound(0.5, 2.0);
        let c = energyflow_competitive_bound(1.0, 2.0);
        assert!(a.is_finite() && b.is_finite() && c.is_finite());
        assert!(
            a > b && b > c,
            "bound must decrease as eps grows: {a} {b} {c}"
        );
    }

    #[test]
    fn energyflow_bound_exceeds_trivial_floor() {
        // The ratio is at least numerator(γ*) ≥ 2 · (1+ε)/ε.
        let b = energyflow_competitive_bound(0.5, 3.0);
        assert!(b > 2.0 * 3.0);
    }

    #[test]
    fn energyflow_asymptotic_scales() {
        let x = energyflow_asymptotic(0.5, 2.0);
        assert!((x - 9.0).abs() < 1e-9); // (1+2)^2
    }

    #[test]
    fn energymin_bounds() {
        assert!((energymin_competitive_bound(2.0) - 4.0).abs() < 1e-12);
        assert!((energymin_competitive_bound(3.0) - 27.0).abs() < 1e-12);
        assert!((energymin_lower_bound(9.0) - 1.0).abs() < 1e-12);
        assert!(energymin_lower_bound(18.0) > 1.0);
    }

    #[test]
    fn smooth_bound() {
        assert!((smooth_competitive_bound(4.0, 0.5) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_rejection_curve_grows_as_sqrt() {
        assert!((immediate_rejection_lower_bound(100.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_exceeds_lower_bound_for_energy() {
        for &alpha in &[1.5, 2.0, 2.5, 3.0] {
            assert!(energymin_competitive_bound(alpha) > energymin_lower_bound(alpha));
        }
    }
}
