//! §3 — online non-preemptive weighted flow-time **plus energy**
//! minimization under speed scaling (Theorem 2).
//!
//! ## Model
//!
//! Machines obey the power law `P(s) = s^α` (`α > 1`). A job `j` has a
//! weight `w_j` and a machine-dependent *volume* `p_ij`; run at constant
//! speed `s` it occupies the machine for `p_ij / s`. The objective is
//! `Σ_j w_j F_j + Σ_i ∫ s_i(t)^α dt`.
//!
//! ## The algorithm
//!
//! * **Dispatch** — at arrival, send `j` to the machine minimizing
//!
//!   ```text
//!   λ_ij = w_j ( p_ij/ε + Σ_{ℓ⪯j} p_iℓ/(γ·W_ℓ^{1/α}) )
//!        + ( Σ_{ℓ≻j} w_ℓ ) · p_ij/(γ·W_j^{1/α})
//!   ```
//!
//!   where pending jobs are ordered by **non-increasing density**
//!   `δ_iℓ = w_ℓ/p_iℓ` (ties: earliest release) and `W_ℓ` is the prefix
//!   weight up to `ℓ` inclusive.
//! * **Scheduling** — when a machine goes idle, start the
//!   highest-density pending job at speed
//!   `s = γ·(Σ_{ℓ∈U_i(t)} w_ℓ)^{1/α}`, fixed until the job finishes.
//! * **Rejection** — a weight counter `v_k` on the running job
//!   accumulates the weight of jobs dispatched to the machine during
//!   `k`'s run; when `v_k > w_k/ε` the job is interrupted and rejected.
//!
//! Theorem 2: `O((1+1/ε)^{α/(α-1)})`-competitive, rejecting total
//! weight at most `ε·Σ_j w_j`.
//!
//! ## The speed factor `γ`
//!
//! The proof leaves `γ` free and then picks a value optimizing the
//! ratio. The closed form printed in the paper degenerates for
//! `α ≤ 2` (`ln(α−1) ≤ 0`), so [`EnergyFlowParams`] defaults to the
//! numerically optimized `γ*` from the same ratio expression (see
//! [`crate::bounds::energyflow_competitive_bound`]); callers may
//! override it.

pub mod dual;

use osr_dstruct::{MachineIndex, MachineStats, ShardMaskScratch};
use osr_model::{
    Execution, FinishedLog, Instance, Job, JobId, MachineId, OnlineSet, PartialRun, RejectReason,
    Rejection,
};
use osr_sim::{
    driver::{EventPolicy, LogOp, Placement, ShardCtx, ShardProbe},
    CapacityChange, CapacityPlan, DecisionEvent, DecisionTrace, EventBackend, OnlineScheduler,
};

use crate::config::SchedulerConfig;
use crate::dispatch::{self, CapacityIndexMode, DispatchIndex, PRUNED_MIN_MACHINES};

pub use dual::{check_energyflow_dual, EnergyFlowAudit};

/// Parameters of the §3 algorithm.
///
/// The runtime knobs live in the embedded [`SchedulerConfig`]
/// (`params.config`); the struct derefs to it, so `params.dispatch`
/// etc. keep working as plain field accesses (the `backend` knob is
/// inert here — §3 queues are density-sorted `Vec`s).
#[derive(Debug, Clone, Copy)]
pub struct EnergyFlowParams {
    /// Rejected-weight budget `ε ∈ (0, 1]`.
    pub eps: f64,
    /// Power exponent `α > 1`.
    pub alpha: f64,
    /// Speed factor; `None` → numerically optimized `γ*`.
    pub gamma: Option<f64>,
    /// Enable the rejection rule (ablation toggle).
    pub reject: bool,
    /// Shared runtime knobs (see [`SchedulerConfig`]).
    pub config: SchedulerConfig,
}

impl std::ops::Deref for EnergyFlowParams {
    type Target = SchedulerConfig;
    fn deref(&self) -> &SchedulerConfig {
        &self.config
    }
}

impl std::ops::DerefMut for EnergyFlowParams {
    fn deref_mut(&mut self) -> &mut SchedulerConfig {
        &mut self.config
    }
}

impl EnergyFlowParams {
    /// Standard parameters (process-default runtime knobs).
    pub fn new(eps: f64, alpha: f64) -> Self {
        EnergyFlowParams {
            eps,
            alpha,
            gamma: None,
            reject: true,
            config: SchedulerConfig::default(),
        }
    }

    /// The dispatch-strategy knob.
    #[deprecated(note = "read `params.dispatch` (via the embedded `config`) instead")]
    pub fn dispatch(&self) -> DispatchIndex {
        self.config.dispatch
    }

    /// The event-queue backend knob.
    #[deprecated(note = "read `params.events` (via the embedded `config`) instead")]
    pub fn events(&self) -> EventBackend {
        self.config.events
    }

    /// The capacity-index mode knob.
    #[deprecated(note = "read `params.capacity_index` (via the embedded `config`) instead")]
    pub fn capacity_index(&self) -> CapacityIndexMode {
        self.config.capacity_index
    }

    /// The requested driver shard count.
    #[deprecated(note = "read `params.shards` (via the embedded `config`) instead")]
    pub fn shards(&self) -> usize {
        self.config.shards
    }
}

/// Per-job record kept for the dual audit and experiments.
#[derive(Debug, Clone, Copy)]
pub struct EnergyFlowJobRecord {
    /// Machine the job was dispatched to.
    pub machine: u32,
    /// `λ_j = ε/(1+ε)·min_i λ_ij`.
    pub lambda: f64,
    /// Execution start (NaN if never started).
    pub start: f64,
    /// Constant execution speed (NaN if never started).
    pub speed: f64,
    /// Exit: completion or rejection time.
    pub exit: f64,
    /// Definitive finish time (≥ exit; §3's `Q_i` retention).
    pub def_finish: f64,
}

/// Full outcome of a §3 run.
#[derive(Debug)]
pub struct EnergyFlowOutcome {
    /// The schedule log.
    pub log: FinishedLog,
    /// Decision audit trail.
    pub trace: DecisionTrace,
    /// Per-job dual records.
    pub records: Vec<EnergyFlowJobRecord>,
    /// The `γ` actually used.
    pub gamma: f64,
    /// The parameters.
    pub params: EnergyFlowParams,
    /// The dispatch strategy that actually ran (`Pruned` degrades to
    /// `Linear` below [`PRUNED_MIN_MACHINES`]; label ablations by
    /// this).
    pub effective_dispatch: DispatchIndex,
    /// The driver shard count that actually ran (requests clamp to the
    /// rack count; `1` = the serial oracle path).
    pub effective_shards: usize,
}

impl EnergyFlowOutcome {
    /// `Σ_j λ_j` of the constructed dual.
    pub fn sum_lambda(&self) -> f64 {
        self.records.iter().map(|r| r.lambda).sum()
    }
}

/// The §3 scheduler.
///
/// ```
/// use osr_core::energyflow::{EnergyFlowParams, EnergyFlowScheduler};
/// use osr_model::{InstanceBuilder, InstanceKind, Metrics};
///
/// let instance = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
///     .weighted_job(0.0, 4.0, vec![2.0])
///     .build()
///     .unwrap();
/// let sched = EnergyFlowScheduler::new(EnergyFlowParams::new(0.5, 2.0)).unwrap();
/// let out = sched.run(&instance);
/// let metrics = Metrics::compute(&instance, &out.log, 2.0);
/// assert!(metrics.weighted_flow_plus_energy() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyFlowScheduler {
    params: EnergyFlowParams,
    gamma: f64,
    capacity: CapacityPlan,
}

/// A pending job on a machine, in density order.
#[derive(Debug, Clone, Copy)]
struct PendE {
    job: JobId,
    /// Volume on this machine.
    p: f64,
    w: f64,
    /// Density `w/p` on this machine.
    d: f64,
    r: f64,
}

impl PendE {
    /// `true` when `self` precedes `other` in the §3 order
    /// (higher density first; ties earliest release, then id).
    fn precedes(&self, other: &PendE) -> bool {
        match self.d.total_cmp(&other.d) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.r.total_cmp(&other.r) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => self.job < other.job,
            },
        }
    }
}

struct RunningE {
    job: JobId,
    start: f64,
    completion: f64,
    speed: f64,
    /// Weight counter `v_k`.
    v: f64,
    w: f64,
}

struct MachineE {
    /// Pending jobs sorted by `precedes` (highest density first).
    pending: Vec<PendE>,
    /// Cached Σ of pending weights (reset to exactly 0 when the queue
    /// empties so incremental drift cannot accumulate across busy
    /// periods).
    pending_weight: f64,
    /// Lazy lower bound on the smallest pending volume (see the
    /// weighted twin); feeds the pruned dispatch bound.
    pending_min_p: f64,
    running: Option<RunningE>,
    /// Rejection events `(time, q_ik(t)/s_k)` for definitive-finish
    /// accounting, with prefix sums.
    rej_times: Vec<f64>,
    rej_prefix: Vec<f64>,
}

impl MachineE {
    fn new() -> Self {
        MachineE {
            pending: Vec::new(),
            pending_weight: 0.0,
            pending_min_p: f64::INFINITY,
            running: None,
            rej_times: Vec::new(),
            rej_prefix: vec![0.0],
        }
    }

    fn insert(&mut self, e: PendE) {
        let pos = self.pending.partition_point(|x| x.precedes(&e));
        self.pending.insert(pos, e);
        self.pending_weight += e.w;
        self.pending_min_p = self.pending_min_p.min(e.p);
    }

    fn pop_first(&mut self) -> Option<PendE> {
        if self.pending.is_empty() {
            None
        } else {
            let e = self.pending.remove(0);
            self.pending_weight -= e.w;
            if self.pending.is_empty() {
                self.pending_weight = 0.0;
                self.pending_min_p = f64::INFINITY;
            }
            Some(e)
        }
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            count: self.pending.len() as u64,
            wsum: self.pending_weight,
            min_size: self.pending_min_p,
        }
    }

    fn push_rejection(&mut self, time: f64, delay: f64) {
        self.rej_times.push(time);
        let last = *self.rej_prefix.last().unwrap();
        self.rej_prefix.push(last + delay);
    }

    /// Sum of rejection delays in `[lo, hi]`.
    fn rejection_window(&self, lo: f64, hi: f64) -> f64 {
        let a = self.rej_times.partition_point(|&t| t < lo);
        let b = self.rej_times.partition_point(|&t| t <= hi);
        self.rej_prefix[b] - self.rej_prefix[a]
    }
}

impl EnergyFlowScheduler {
    /// Validates parameters and resolves `γ`.
    pub fn new(params: EnergyFlowParams) -> Result<Self, String> {
        if !(params.eps > 0.0 && params.eps <= 1.0 && params.eps.is_finite()) {
            return Err(format!("eps must be in (0, 1], got {}", params.eps));
        }
        if !(params.alpha > 1.0) || !params.alpha.is_finite() {
            return Err(format!("alpha must exceed 1, got {}", params.alpha));
        }
        let gamma = match params.gamma {
            Some(g) if g > 0.0 && g.is_finite() => g,
            Some(g) => return Err(format!("gamma must be positive, got {g}")),
            None => optimal_gamma(params.eps, params.alpha),
        };
        Ok(EnergyFlowScheduler {
            params,
            gamma,
            capacity: CapacityPlan::empty(),
        })
    }

    /// Attaches a capacity plan (builder-style): the run replays the
    /// plan's join/drain/crash stream alongside arrivals, re-dispatching
    /// the jobs of draining/crashing machines.
    pub fn with_capacity(mut self, plan: CapacityPlan) -> Self {
        self.capacity = plan;
        self
    }

    /// The `γ` in effect.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Runs the algorithm, producing the full outcome.
    ///
    /// The event loop lives in [`osr_sim::driver`]; this method supplies
    /// the §3 policy (`EnergyPolicy`) and collects the per-job records
    /// the driver folds in at every barrier.
    pub fn run(&self, instance: &Instance) -> EnergyFlowOutcome {
        let m = instance.machines();
        let n = instance.len();
        let jobs = instance.jobs();
        let policy = EnergyPolicy {
            jobs,
            params: self.params,
            gamma: self.gamma,
            m,
        };
        let mut records = vec![
            EnergyFlowJobRecord {
                machine: u32::MAX,
                lambda: 0.0,
                start: f64::NAN,
                speed: f64::NAN,
                exit: f64::NAN,
                def_finish: f64::NAN,
            };
            n
        ];
        let (log, trace, effective_shards) = osr_sim::drive(
            &policy,
            jobs,
            m,
            &self.capacity,
            self.params.events,
            self.params.shards,
            &mut records,
        );
        let log = log.finish().expect("all jobs decided");
        EnergyFlowOutcome {
            log,
            trace,
            records,
            gamma: self.gamma,
            params: self.params,
            effective_dispatch: dispatch::effective_dispatch_index(self.params.dispatch, m),
            effective_shards,
        }
    }
}

/// A deferred, job-keyed write into the [`EnergyFlowJobRecord`] array,
/// buffered per-shard and folded in at every driver barrier.
enum EnergyOp {
    /// Final placement (overwritten by later re-dispatches).
    Machine(JobId, u32),
    /// First-arrival dual price `λ_j` (never re-set on redispatch).
    Lambda(JobId, f64),
    /// Execution start and its fixed speed.
    Start { job: JobId, start: f64, speed: f64 },
    /// Exit instant and definitive finish.
    Exit {
        job: JobId,
        exit: f64,
        def_finish: f64,
    },
}

/// One driver shard's §3 state: locally indexed machines plus its slice
/// of the pruned dispatch index and the buffered record writes.
pub(crate) struct EnergyShard {
    base: usize,
    len: usize,
    machines: Vec<MachineE>,
    dindex: Option<MachineIndex>,
    scratch: ShardMaskScratch,
    ops: Vec<EnergyOp>,
}

/// The §3 algorithm as an [`EventPolicy`]: density-order dispatch,
/// speed scaling, and the weight-counter rejection rule. `pub(crate)`
/// with open fields so [`crate::session`] can rebuild the (cheap,
/// borrow-carrying) policy per ingest call.
pub(crate) struct EnergyPolicy<'a> {
    pub(crate) jobs: &'a [Job],
    pub(crate) params: EnergyFlowParams,
    pub(crate) gamma: f64,
    /// Global machine count (pruned-index crossover and the trace's
    /// `candidates` field are defined on the whole pool).
    pub(crate) m: usize,
}

impl EnergyPolicy<'_> {
    /// Computes `λ_ij` for job `(p, w)` against machine state `ms`.
    fn lambda_ij(&self, ms: &MachineE, p: f64, w: f64, r: f64, id: JobId) -> f64 {
        let alpha = self.params.alpha;
        let gamma = self.gamma;
        let probe = PendE {
            job: id,
            p,
            w,
            d: w / p,
            r,
        };
        let mut lam = w * p / self.params.eps;
        let mut prefix_w = 0.0;
        let mut term_pre = 0.0;
        let mut succ_w = 0.0;
        for e in &ms.pending {
            if e.precedes(&probe) {
                prefix_w += e.w;
                term_pre += e.p / (gamma * prefix_w.powf(1.0 / alpha));
            } else {
                succ_w += e.w;
            }
        }
        let w_j = prefix_w + w;
        term_pre += p / (gamma * w_j.powf(1.0 / alpha));
        lam += w * term_pre;
        lam += succ_w * p / (gamma * w_j.powf(1.0 / alpha));
        lam
    }

    fn sync_index(dindex: &mut Option<MachineIndex>, li: usize, ms: &MachineE) {
        if let Some(ix) = dindex {
            ix.update(li, ms.stats());
        }
    }

    /// Starts the highest-density pending job if the machine is idle
    /// (and still in the pool).
    fn start_next(&self, sh: &mut EnergyShard, cx: &mut ShardCtx<'_>, li: usize, t: f64) {
        let mi = sh.base + li;
        let ms = &mut sh.machines[li];
        if ms.running.is_some() || ms.pending.is_empty() || !cx.online.is_online(mi) {
            return;
        }
        // Speed uses the total pending weight *including* the job about
        // to start (it is in U_i(t) at this instant).
        let speed = self.gamma * ms.pending_weight.powf(1.0 / self.params.alpha);
        let e = ms.pop_first().expect("non-empty");
        let completion = t + e.p / speed;
        ms.running = Some(RunningE {
            job: e.job,
            start: t,
            completion,
            speed,
            v: 0.0,
            w: e.w,
        });
        cx.completions.push(completion, (mi, e.job));
        sh.ops.push(EnergyOp::Start {
            job: e.job,
            start: t,
            speed,
        });
        cx.io.trace.push(DecisionEvent::Start {
            time: t,
            job: e.job,
            machine: MachineId(mi as u32),
            speed,
        });
        Self::sync_index(&mut sh.dindex, li, &sh.machines[li]);
    }
}

impl EventPolicy for EnergyPolicy<'_> {
    type Shard = EnergyShard;
    type Global = Vec<EnergyFlowJobRecord>;

    fn make_shard(&self, base: usize, len: usize, online: &OnlineSet) -> EnergyShard {
        let dindex = (self.params.dispatch == DispatchIndex::Pruned
            && self.m >= PRUNED_MIN_MACHINES)
            .then(|| {
                dispatch::rebuild_shard_index(
                    base,
                    len,
                    online,
                    self.params.propagation,
                    self.params.kernels,
                    |_| MachineStats::EMPTY,
                )
            });
        EnergyShard {
            base,
            len,
            machines: (0..len).map(|_| MachineE::new()).collect(),
            dindex,
            scratch: ShardMaskScratch::new(),
            ops: Vec::new(),
        }
    }

    fn candidate(
        &self,
        sh: &mut EnergyShard,
        job: &Job,
        t: f64,
        online: &OnlineSet,
    ) -> Option<(usize, f64)> {
        // `p̂` and the eligibility mask (the subtree-bound and
        // subtree-skip inputs) are precomputed on the job at generation
        // time — no per-arrival O(m) rescan.
        let EnergyShard {
            base,
            len,
            machines,
            dindex,
            scratch,
            ..
        } = sh;
        let (base, len) = (*base, *len);
        let j = job.id;
        let (eps, alpha, gamma) = (self.params.eps, self.params.alpha, self.gamma);
        let best = match dindex.as_mut() {
            Some(ix) => {
                let ph = dispatch::p_hat_view(job);
                let w = job.weight;
                let mask = scratch.rebase(dispatch::mask_view(job.elig()), base, len);
                ix.search_masked_rows(
                    mask,
                    |s, lo, span| {
                        dispatch::energy_lambda_bound(
                            s.min_wsum,
                            s.max_wsum,
                            s.min_size,
                            ph.for_range(base + lo, span),
                            w,
                            eps,
                            gamma,
                            alpha,
                        )
                    },
                    // Leaf-row-slice form: the scalar bound below, one
                    // lane per stat row (bit-identical by construction).
                    |lo, rows, out| {
                        for k in 0..osr_dstruct::kernel::LANES {
                            let p = job.sizes[base + lo + k];
                            out[k] = if p.is_finite() {
                                dispatch::energy_lambda_bound(
                                    rows[k].wsum,
                                    rows[k].wsum,
                                    rows[k].min_size,
                                    p,
                                    w,
                                    eps,
                                    gamma,
                                    alpha,
                                )
                            } else {
                                f64::INFINITY
                            };
                        }
                    },
                    |li, s| {
                        let p = job.sizes[base + li];
                        if p.is_finite() {
                            dispatch::energy_lambda_bound(
                                s.wsum, s.wsum, s.min_size, p, w, eps, gamma, alpha,
                            )
                        } else {
                            f64::INFINITY
                        }
                    },
                    |li| {
                        let p = job.sizes[base + li];
                        p.is_finite()
                            .then(|| self.lambda_ij(&machines[li], p, w, t, j))
                    },
                )
            }
            None => {
                let mut best: Option<(usize, f64)> = None;
                for (li, ms) in machines.iter().enumerate().take(len) {
                    let p = job.sizes[base + li];
                    if !p.is_finite() || !online.is_online(base + li) {
                        continue;
                    }
                    let lam = self.lambda_ij(ms, p, job.weight, t, j);
                    if best.is_none_or(|(_, bl)| lam < bl) {
                        best = Some((li, lam));
                    }
                }
                best
            }
        };
        best.map(|(li, lam)| (base + li, lam))
    }

    fn dispatch(&self, sh: &mut EnergyShard, cx: &mut ShardCtx<'_>, job: &Job, p: &Placement) {
        let Placement {
            time: t,
            machine: mi,
            lambda: lam,
            redispatch,
        } = *p;
        let j = job.id;
        // Re-dispatches keep the job's first-arrival λ_j (the dual
        // prices the original arrival); `machine` tracks the final
        // placement.
        sh.ops.push(EnergyOp::Machine(j, mi as u32));
        if !redispatch {
            let eps = self.params.eps;
            sh.ops.push(EnergyOp::Lambda(j, eps / (1.0 + eps) * lam));
        }
        let li = mi - sh.base;

        let p_ij = job.sizes[mi];
        sh.machines[li].insert(PendE {
            job: j,
            p: p_ij,
            w: job.weight,
            d: job.weight / p_ij,
            r: t,
        });
        Self::sync_index(&mut sh.dindex, li, &sh.machines[li]);

        // Rejection rule: charge the arriving weight to the running
        // job; reject it when the counter exceeds w_k/ε.
        if let Some(run) = sh.machines[li].running.as_mut() {
            run.v += job.weight;
            if self.params.reject && run.v > run.w / self.params.eps {
                let run = sh.machines[li].running.take().expect("present");
                let k = run.job;
                let delay = (run.completion - t).max(0.0); // q_ik(t)/s_k
                cx.io.ops.push(LogOp::Reject(
                    k,
                    Rejection {
                        time: t,
                        reason: RejectReason::RuleOne,
                        partial: Some(PartialRun {
                            machine: MachineId(mi as u32),
                            start: run.start,
                            end: t,
                            speed: run.speed,
                        }),
                    },
                ));
                cx.io.trace.push(DecisionEvent::Reject {
                    time: t,
                    job: k,
                    machine: MachineId(mi as u32),
                    reason: RejectReason::RuleOne,
                    counter: run.v,
                });
                sh.machines[li].push_rejection(t, delay);
                let rk = self.jobs[k.idx()].release;
                let def_finish = t + sh.machines[li].rejection_window(rk, t);
                sh.ops.push(EnergyOp::Exit {
                    job: k,
                    exit: t,
                    def_finish,
                });
            }
        }

        self.start_next(sh, cx, li, t);
    }

    fn note_unplaced(&self, sh: &mut EnergyShard, job: &Job, t: f64) {
        // Eligible nowhere (or nowhere still in the pool); the driver
        // has recorded the rejection. λ_j = 0 (machine-lost keeps any λ
        // from the first arrival), and the job (re-)enters no U_i.
        sh.ops.push(EnergyOp::Exit {
            job: job.id,
            exit: t,
            def_finish: t,
        });
    }

    fn complete(&self, sh: &mut EnergyShard, cx: &mut ShardCtx<'_>, mi: usize, job: JobId, t: f64) {
        let li = mi - sh.base;
        // Stale if the job was rejected mid-run or crash-killed and
        // re-dispatched (the completion-time check catches a re-dispatch
        // back onto the same machine).
        let matches = sh.machines[li]
            .running
            .as_ref()
            .is_some_and(|r| r.job == job && r.completion == t);
        if !matches {
            return;
        }
        let r = sh.machines[li].running.take().expect("matched");
        cx.io.ops.push(LogOp::Complete(
            job,
            Execution {
                machine: MachineId(mi as u32),
                start: r.start,
                completion: r.completion,
                speed: r.speed,
            },
        ));
        cx.io.trace.push(DecisionEvent::Complete {
            time: t,
            job,
            machine: MachineId(mi as u32),
        });
        let rj = self.jobs[job.idx()].release;
        let def_finish = t + sh.machines[li].rejection_window(rj, t);
        sh.ops.push(EnergyOp::Exit {
            job,
            exit: t,
            def_finish,
        });
        self.start_next(sh, cx, li, t);
    }

    fn capacity_sync(
        &self,
        sh: &mut EnergyShard,
        change: CapacityChange,
        mi: usize,
        online: &OnlineSet,
    ) {
        let EnergyShard {
            base,
            len,
            machines,
            dindex,
            ..
        } = sh;
        let base = *base;
        dispatch::sync_shard_index(
            dindex,
            self.params.capacity_index,
            change,
            mi,
            base,
            *len,
            online,
            self.params.propagation,
            self.params.kernels,
            |i| machines[i - base].stats(),
        );
    }

    fn evict(
        &self,
        sh: &mut EnergyShard,
        _cx: &mut ShardCtx<'_>,
        change: CapacityChange,
        mi: usize,
        t: f64,
        victims: &mut Vec<(JobId, Option<PartialRun>)>,
    ) {
        let li = mi - sh.base;
        if change == CapacityChange::Crash {
            if let Some(run) = sh.machines[li].running.take() {
                victims.push((
                    run.job,
                    Some(PartialRun {
                        machine: MachineId(mi as u32),
                        start: run.start,
                        end: t,
                        speed: run.speed,
                    }),
                ));
            }
        }
        while let Some(e) = sh.machines[li].pop_first() {
            victims.push((e.job, None));
        }
    }

    fn drain(&self, sh: &mut EnergyShard, records: &mut Vec<EnergyFlowJobRecord>) {
        for op in sh.ops.drain(..) {
            match op {
                EnergyOp::Machine(j, mi) => records[j.idx()].machine = mi,
                EnergyOp::Lambda(j, v) => records[j.idx()].lambda = v,
                EnergyOp::Start { job, start, speed } => {
                    records[job.idx()].start = start;
                    records[job.idx()].speed = speed;
                }
                EnergyOp::Exit {
                    job,
                    exit,
                    def_finish,
                } => {
                    records[job.idx()].exit = exit;
                    records[job.idx()].def_finish = def_finish;
                }
            }
        }
    }

    fn probe(&self, sh: &EnergyShard) -> ShardProbe {
        ShardProbe {
            queued: sh.machines.iter().map(|ms| ms.pending.len()).sum(),
            running: sh.machines.iter().filter(|ms| ms.running.is_some()).count(),
            index: sh.dindex.as_ref().map(|ix| ix.index_stats()),
        }
    }

    fn probe_machines(&self, sh: &EnergyShard, out: &mut Vec<(usize, usize)>) {
        out.extend(
            sh.machines
                .iter()
                .enumerate()
                .map(|(li, ms)| (sh.base + li, ms.pending.len())),
        );
    }
}

impl OnlineScheduler for EnergyFlowScheduler {
    fn name(&self) -> String {
        format!(
            "spaa18-flow+energy(eps={}, alpha={}, gamma={:.3})",
            self.params.eps, self.params.alpha, self.gamma
        )
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).log
    }
}

/// Numerically optimizes the proof's ratio over `γ` (same expression as
/// [`crate::bounds::energyflow_competitive_bound`], returning the argmin
/// instead of the minimum).
pub fn optimal_gamma(eps: f64, alpha: f64) -> f64 {
    let ratio = |gamma: f64| -> f64 {
        let num = 2.0 + alpha / (gamma * (alpha - 1.0)) + gamma.powf(alpha);
        let inner = eps / (gamma * (1.0 + eps) * (alpha - 1.0));
        let den = eps / (1.0 + eps) - (alpha - 1.0) * inner.powf(alpha / (alpha - 1.0));
        if den > 1e-12 {
            num / den
        } else {
            f64::INFINITY
        }
    };
    let mut best = f64::INFINITY;
    let mut best_g = 1.0;
    let mut lo: f64 = 1e-3;
    let mut hi: f64 = 1e3;
    for _ in 0..4 {
        let steps = 400;
        for k in 0..=steps {
            let g = lo * (hi / lo).powf(k as f64 / steps as f64);
            let r = ratio(g);
            if r < best {
                best = r;
                best_g = g;
            }
        }
        lo = best_g / 3.0;
        hi = best_g * 3.0;
    }
    best_g
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, Metrics};
    use osr_sim::{validate_log, ValidationConfig};

    fn assert_valid(inst: &Instance, out: &EnergyFlowOutcome) {
        let rep = validate_log(inst, &out.log, &ValidationConfig::flow_energy());
        assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    }

    fn weighted_instance(n: usize, m: usize, seed: u64) -> Instance {
        let mut b = InstanceBuilder::new(m, InstanceKind::FlowEnergy);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 100) as f64 / 30.0;
            let w = 1.0 + (next() % 8) as f64;
            let sizes: Vec<f64> = (0..m).map(|_| 0.5 + (next() % 30) as f64 / 3.0).collect();
            b = b.weighted_job(t, w, sizes);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_job_runs_at_gamma_weight_speed() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 8.0, vec![4.0])
            .build()
            .unwrap();
        let sched = EnergyFlowScheduler::new(EnergyFlowParams::new(0.5, 2.0)).unwrap();
        let out = sched.run(&inst);
        assert_valid(&inst, &out);
        let e = out.log.fate(JobId(0)).execution().unwrap();
        let expect = sched.gamma() * 8.0f64.powf(0.5);
        assert!(
            (e.speed - expect).abs() < 1e-9,
            "speed {} vs {expect}",
            e.speed
        );
        assert!((e.completion - 4.0 / expect).abs() < 1e-9);
    }

    #[test]
    fn highest_density_first_order() {
        // j0 (low density) starts immediately; j1 and j2 then queue. HDF
        // must start the denser j2 before j1 once j0 finishes.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 1.0, vec![10.0]) // density 0.1
            .weighted_job(0.1, 1.0, vec![4.0]) // density 0.25
            .weighted_job(0.2, 8.0, vec![4.0]) // density 2.0
            .build()
            .unwrap();
        let params = EnergyFlowParams {
            gamma: Some(1.0),
            reject: false,
            ..EnergyFlowParams::new(1.0, 2.0)
        };
        let out = EnergyFlowScheduler::new(params).unwrap().run(&inst);
        assert_valid(&inst, &out);
        let s1 = out.log.fate(JobId(1)).execution().unwrap().start;
        let s2 = out.log.fate(JobId(2)).execution().unwrap().start;
        assert!(
            s2 < s1,
            "denser job must start first (j2 at {s2}, j1 at {s1})"
        );
    }

    #[test]
    fn rejection_budget_in_weight_respected() {
        let inst = weighted_instance(300, 2, 17);
        let total_w = inst.total_weight();
        for eps in [0.1, 0.3, 0.6] {
            let out = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, 2.5))
                .unwrap()
                .run(&inst);
            assert_valid(&inst, &out);
            let m = Metrics::compute(&inst, &out.log, 2.5);
            assert!(
                m.flow.rejected_weight <= eps * total_w + 1e-9,
                "eps={eps}: rejected weight {} > {}",
                m.flow.rejected_weight,
                eps * total_w
            );
        }
    }

    #[test]
    fn rejection_counter_is_weight_based() {
        // Running job weight 1, eps=0.5 → reject when accumulated
        // arriving weight exceeds 2.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 1.0, vec![100.0])
            .weighted_job(1.0, 1.5, vec![1.0])
            .weighted_job(2.0, 1.0, vec![1.0])
            .build()
            .unwrap();
        let params = EnergyFlowParams {
            gamma: Some(1.0),
            ..EnergyFlowParams::new(0.5, 2.0)
        };
        let out = EnergyFlowScheduler::new(params).unwrap().run(&inst);
        assert_valid(&inst, &out);
        let rej = out.log.fate(JobId(0)).rejection().expect("rejected");
        // v = 1.5 at t=1 (≤ 2), v = 2.5 at t=2 (> 2) → rejected at 2.
        assert_eq!(rej.time, 2.0);
    }

    #[test]
    fn no_rejection_when_disabled() {
        let inst = weighted_instance(100, 2, 3);
        let params = EnergyFlowParams {
            reject: false,
            ..EnergyFlowParams::new(0.1, 2.0)
        };
        let out = EnergyFlowScheduler::new(params).unwrap().run(&inst);
        assert_eq!(out.log.rejected_count(), 0);
        assert_valid(&inst, &out);
    }

    #[test]
    fn energy_accounting_matches_speeds() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 4.0, vec![2.0])
            .build()
            .unwrap();
        let params = EnergyFlowParams {
            gamma: Some(0.5),
            ..EnergyFlowParams::new(0.5, 3.0)
        };
        let out = EnergyFlowScheduler::new(params).unwrap().run(&inst);
        let m = Metrics::compute(&inst, &out.log, 3.0);
        let e = out.log.fate(JobId(0)).execution().unwrap();
        let expected = (e.completion - e.start) * e.speed.powf(3.0);
        assert!((m.energy.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn objective_at_least_alone_cost_of_completed_jobs() {
        let inst = weighted_instance(80, 2, 99);
        let alpha = 2.0;
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.3, alpha))
            .unwrap()
            .run(&inst);
        assert_valid(&inst, &out);
        let m = Metrics::compute(&inst, &out.log, alpha);
        let obj = m.weighted_flow_plus_energy();
        let mut floor = 0.0;
        for (id, _e) in out.log.executions() {
            let job = inst.job(id);
            let p = job.min_size();
            let s_star = (job.weight / (alpha - 1.0)).powf(1.0 / alpha);
            floor += job.weight * p / s_star + p * s_star.powf(alpha - 1.0);
        }
        assert!(
            obj + 1e-9 >= floor,
            "objective {obj} below alone-cost floor {floor}"
        );
    }

    #[test]
    fn dispatch_splits_by_affinity() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 1.0, vec![1.0, 50.0])
            .weighted_job(0.0, 1.0, vec![50.0, 1.0])
            .build()
            .unwrap();
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.5, 2.0))
            .unwrap()
            .run(&inst);
        let e0 = out.log.fate(JobId(0)).execution().unwrap();
        let e1 = out.log.fate(JobId(1)).execution().unwrap();
        assert_eq!(e0.machine, MachineId(0));
        assert_eq!(e1.machine, MachineId(1));
    }

    #[test]
    fn def_finish_dominates_exit() {
        let inst = weighted_instance(150, 3, 41);
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.2, 2.0))
            .unwrap()
            .run(&inst);
        for r in &out.records {
            assert!(r.def_finish + 1e-9 >= r.exit);
            assert!(r.exit.is_finite());
        }
    }

    #[test]
    fn optimal_gamma_is_positive_and_stable() {
        for &(eps, alpha) in &[(0.1, 2.0), (0.5, 2.0), (0.5, 3.0), (0.9, 1.5)] {
            let g = optimal_gamma(eps, alpha);
            assert!(g > 0.0 && g.is_finite(), "eps={eps} alpha={alpha} g={g}");
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(EnergyFlowScheduler::new(EnergyFlowParams::new(0.0, 2.0)).is_err());
        assert!(EnergyFlowScheduler::new(EnergyFlowParams::new(0.5, 1.0)).is_err());
        assert!(EnergyFlowScheduler::new(EnergyFlowParams {
            gamma: Some(-1.0),
            ..EnergyFlowParams::new(0.5, 2.0)
        })
        .is_err());
    }

    #[test]
    fn speed_accounts_for_queue_weight() {
        // j0 starts alone (speed √3). While it runs, j1 and j2 queue up
        // (weights 1 and 3). At j0's completion the next start must see
        // pending weight 4 → speed √4 = 2.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 3.0, vec![6.0])
            .weighted_job(1.0, 1.0, vec![6.0])
            .weighted_job(2.0, 3.0, vec![6.0])
            .build()
            .unwrap();
        let params = EnergyFlowParams {
            gamma: Some(1.0),
            reject: false,
            ..EnergyFlowParams::new(1.0, 2.0)
        };
        let out = EnergyFlowScheduler::new(params).unwrap().run(&inst);
        let e0 = out.log.fate(JobId(0)).execution().unwrap();
        assert!(
            (e0.speed - 3.0f64.sqrt()).abs() < 1e-9,
            "first speed {}",
            e0.speed
        );
        // j2 (density 0.5) precedes j1 (density 1/6): it starts second.
        let e2 = out.log.fate(JobId(2)).execution().unwrap();
        assert!((e2.start - e0.completion).abs() < 1e-9);
        assert!((e2.speed - 2.0).abs() < 1e-9, "second speed {}", e2.speed);
    }

    #[test]
    fn pruned_and_linear_dispatch_agree() {
        let inst = weighted_instance(300, 9, 71);
        for (eps, alpha) in [(0.2, 2.0), (0.5, 2.5)] {
            let mut pp = EnergyFlowParams::new(eps, alpha);
            pp.dispatch = crate::DispatchIndex::Pruned;
            let mut pl = EnergyFlowParams::new(eps, alpha);
            pl.dispatch = crate::DispatchIndex::Linear;
            let a = EnergyFlowScheduler::new(pp).unwrap().run(&inst);
            let b = EnergyFlowScheduler::new(pl).unwrap().run(&inst);
            assert_eq!(a.log, b.log, "eps={eps} alpha={alpha}");
            assert_eq!(a.sum_lambda(), b.sum_lambda());
        }
    }

    #[test]
    fn everywhere_ineligible_job_is_rejected_not_a_panic() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 1.0, vec![2.0, 3.0])
            .weighted_job(1.0, 4.0, vec![f64::INFINITY, f64::INFINITY])
            .build()
            .unwrap();
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.4, 2.0))
            .unwrap()
            .run(&inst);
        assert_valid(&inst, &out);
        let rej = out.log.fate(JobId(1)).rejection().expect("dropped");
        assert_eq!(rej.reason, RejectReason::Ineligible);
        let rec = &out.records[1];
        assert_eq!(rec.machine, u32::MAX);
        assert_eq!(rec.lambda, 0.0);
        assert_eq!(rec.exit, 1.0);
        assert_eq!(rec.def_finish, 1.0);
        assert!(out.log.fate(JobId(0)).is_completed());
    }

    #[test]
    fn lambda_j_recorded_for_every_job() {
        let inst = weighted_instance(50, 2, 7);
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.4, 2.0))
            .unwrap()
            .run(&inst);
        for r in &out.records {
            assert!(r.lambda > 0.0);
            assert!(r.machine != u32::MAX);
        }
        assert!(out.sum_lambda() > 0.0);
    }
}
