//! Sampled dual-feasibility audit for §3 (Lemma 6).
//!
//! The §3 analysis defines, for every machine `i` and time `t`,
//!
//! ```text
//! u_i(t) = ( ε / (γ(1+ε)(α−1)) )^{1/(α−1)} · V_i(t)^{1/α}
//! ```
//!
//! where `V_i(t)` is the total *fractional weight*
//! `Σ_ℓ w_ℓ·q_iℓ(t)/p_iℓ` of jobs dispatched to `i` that are not yet
//! definitively finished, and claims (Lemma 6) that the dual constraint
//!
//! ```text
//! λ_j / p_ij ≤ δ_ij(t − r_j + p_ij) + α·u_i(t)^{α−1}
//!              + α/(γ(α−1)) · w_j^{(α−1)/α}
//! ```
//!
//! holds for every `i, j, t ≥ r_j`. Unlike the §2 constraint, the right
//! side is not piecewise linear in `t` (the `u_i(t)^{α−1}` term moves
//! with remaining volumes), so this audit *samples* rather than checks
//! breakpoints exactly: a dense grid per job plus every exit event on
//! the machine. EXP-DUAL reports the number of samples and the minimum
//! margin.

use osr_model::{Instance, JobFate};

use super::EnergyFlowOutcome;

/// One violated sample.
#[derive(Debug, Clone, Copy)]
pub struct EnergyFlowViolation {
    /// Job of the constraint.
    pub job: u32,
    /// Machine of the constraint.
    pub machine: u32,
    /// Sample time.
    pub t: f64,
    /// Negative slack.
    pub margin: f64,
}

/// Audit result.
#[derive(Debug, Clone)]
pub struct EnergyFlowAudit {
    /// Number of `(j, i, t)` samples evaluated.
    pub samples_checked: usize,
    /// Violations found (empty expected).
    pub violations: Vec<EnergyFlowViolation>,
    /// Minimum slack across samples.
    pub min_margin: f64,
}

impl EnergyFlowAudit {
    /// Whether every sampled constraint held.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Remaining volume `q_iℓ(t)` of job `ℓ` (dispatched to its machine) at
/// time `t`, given its record and the full size `p`.
fn remaining_volume(t: f64, p: f64, start: f64, speed: f64, exit: f64, completed: bool) -> f64 {
    if start.is_nan() || t < start {
        // Not yet started (or never started before rejection).
        p
    } else if t < exit {
        (p - speed * (t - start)).max(0.0)
    } else if completed {
        0.0
    } else {
        // Rejected mid-run: remaining volume freezes at the rejection.
        (p - speed * (exit - start)).max(0.0)
    }
}

/// Fractional weight `V_i(t)` on machine `mi`.
fn v_i(instance: &Instance, out: &EnergyFlowOutcome, mi: u32, t: f64) -> f64 {
    let mut v = 0.0;
    for (idx, rec) in out.records.iter().enumerate() {
        if rec.machine != mi {
            continue;
        }
        let job = &instance.jobs()[idx];
        if t < job.release || t >= rec.def_finish {
            continue;
        }
        let p = job.sizes[mi as usize];
        let completed = matches!(out.log.fate(job.id), JobFate::Completed(_));
        let q = remaining_volume(t, p, rec.start, rec.speed, rec.exit, completed);
        v += job.weight * q / p;
    }
    v
}

/// Samples the Lemma 6 constraint; see module docs.
///
/// `max_jobs` caps audited jobs, `grid` sets the per-job number of
/// uniform samples over `[r_j, horizon]` (exit events on the machine
/// are always included).
pub fn check_energyflow_dual(
    instance: &Instance,
    out: &EnergyFlowOutcome,
    max_jobs: usize,
    grid: usize,
) -> EnergyFlowAudit {
    let alpha = out.params.alpha;
    let gamma = out.gamma;
    let eps = out.params.eps;
    let m = instance.machines();
    let n = instance.len().min(max_jobs);

    let horizon = out
        .records
        .iter()
        .map(|r| r.def_finish)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let u_coef = (eps / (gamma * (1.0 + eps) * (alpha - 1.0))).powf(1.0 / (alpha - 1.0));
    let w_coef = alpha / (gamma * (alpha - 1.0));

    // Exit events per machine (sample points where V_i may kink).
    let mut exits: Vec<Vec<f64>> = vec![Vec::new(); m];
    for rec in &out.records {
        if rec.machine != u32::MAX {
            exits[rec.machine as usize].push(rec.exit);
            exits[rec.machine as usize].push(rec.def_finish);
        }
    }

    let mut audit = EnergyFlowAudit {
        samples_checked: 0,
        violations: Vec::new(),
        min_margin: f64::INFINITY,
    };

    for jx in 0..n {
        let job = &instance.jobs()[jx];
        let rj = job.release;
        let lam = out.records[jx].lambda;
        for mi in 0..m {
            let p = job.sizes[mi];
            if !p.is_finite() {
                continue;
            }
            let delta = job.weight / p;
            let mut times: Vec<f64> = (0..=grid)
                .map(|k| rj + (horizon - rj) * k as f64 / grid as f64)
                .collect();
            times.extend(exits[mi].iter().copied().filter(|&t| t >= rj));
            for t in times {
                let v = v_i(instance, out, mi as u32, t);
                let u = u_coef * v.powf(1.0 / alpha);
                let rhs = delta * (t - rj + p)
                    + alpha * u.powf(alpha - 1.0)
                    + w_coef * job.weight.powf((alpha - 1.0) / alpha);
                let margin = rhs - lam / p;
                audit.samples_checked += 1;
                if margin < audit.min_margin {
                    audit.min_margin = margin;
                }
                if margin < -1e-7 * (1.0 + rhs.abs()) {
                    audit.violations.push(EnergyFlowViolation {
                        job: jx as u32,
                        machine: mi as u32,
                        t,
                        margin,
                    });
                }
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energyflow::{EnergyFlowParams, EnergyFlowScheduler};
    use osr_model::{InstanceBuilder, InstanceKind};

    fn weighted_instance(n: usize, m: usize, seed: u64) -> Instance {
        let mut b = InstanceBuilder::new(m, InstanceKind::FlowEnergy);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 100) as f64 / 40.0;
            let w = 1.0 + (next() % 5) as f64;
            let sizes: Vec<f64> = (0..m).map(|_| 0.5 + (next() % 20) as f64 / 2.0).collect();
            b = b.weighted_job(t, w, sizes);
        }
        b.build().unwrap()
    }

    #[test]
    fn dual_feasible_on_random_instances() {
        for seed in [2u64, 11] {
            let inst = weighted_instance(60, 2, seed);
            for &(eps, alpha) in &[(0.3, 2.0), (0.5, 3.0)] {
                let out = EnergyFlowScheduler::new(EnergyFlowParams::new(eps, alpha))
                    .unwrap()
                    .run(&inst);
                let audit = check_energyflow_dual(&inst, &out, usize::MAX, 40);
                assert!(
                    audit.is_feasible(),
                    "seed={seed} eps={eps} alpha={alpha}: {:?}",
                    audit.violations.first()
                );
                assert!(audit.samples_checked > 0);
            }
        }
    }

    #[test]
    fn remaining_volume_profile() {
        // p=10, started at t=2 with speed 2, completes at t=7.
        let q = |t: f64| remaining_volume(t, 10.0, 2.0, 2.0, 7.0, true);
        assert_eq!(q(0.0), 10.0);
        assert_eq!(q(2.0), 10.0);
        assert_eq!(q(4.5), 5.0);
        assert_eq!(q(7.0), 0.0);
        assert_eq!(q(9.0), 0.0);
    }

    #[test]
    fn remaining_volume_freezes_on_rejection() {
        // Rejected at t=4 after starting at 2 with speed 2: 6 remains.
        let q = |t: f64| remaining_volume(t, 10.0, 2.0, 2.0, 4.0, false);
        assert_eq!(q(5.0), 6.0);
        assert_eq!(q(100.0), 6.0);
    }

    #[test]
    fn audit_detects_corrupted_lambda() {
        let inst = weighted_instance(30, 2, 5);
        let mut out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.3, 2.0))
            .unwrap()
            .run(&inst);
        out.records[0].lambda += 1e9;
        let audit = check_energyflow_dual(&inst, &out, usize::MAX, 10);
        assert!(!audit.is_feasible());
    }

    #[test]
    fn v_i_is_zero_far_in_the_future() {
        let inst = weighted_instance(20, 1, 9);
        let out = EnergyFlowScheduler::new(EnergyFlowParams::new(0.3, 2.0))
            .unwrap()
            .run(&inst);
        let horizon = out
            .records
            .iter()
            .map(|r| r.def_finish)
            .fold(0.0f64, f64::max);
        assert_eq!(v_i(&inst, &out, 0, horizon + 1.0), 0.0);
    }
}
