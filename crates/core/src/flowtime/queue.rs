//! Per-machine pending queues for the §2 algorithm.
//!
//! Pending jobs (the set `U_i(t)` minus the running job) are kept in the
//! paper's processing order: non-decreasing processing time, ties by
//! earliest release, then id — encoded as the composite key
//! [`PendKey`]. The queue must answer the aggregate queries that
//! assemble `λ_ij` and support min/max extraction (SPT start, Rule 2
//! rejection).
//!
//! Two interchangeable backends exist so the `dstruct_ablation` bench
//! and EXP-SCALE can quantify the asymptotic difference:
//! `O(log n)` [`osr_dstruct::AggTreap`] vs `O(n)`
//! [`osr_dstruct::NaiveAggQueue`].

use osr_dstruct::treap::Agg;
use osr_dstruct::{AggTreap, NaiveAggQueue, TotalF64};
use osr_model::JobId;

/// Queue key: `(p_ij, r_j, id)` — the paper's `≺` order.
pub type PendKey = (TotalF64, TotalF64, u32);

/// Builds the key for a job with size `p` and release `r`.
#[inline]
pub fn pend_key(p: f64, release: f64, id: JobId) -> PendKey {
    (TotalF64(p), TotalF64(release), id.0)
}

/// Which backend a [`PendQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Augmented treap: `O(log n)` aggregate queries.
    #[default]
    Treap,
    /// Sorted vector: `O(n)` — the ablation baseline.
    Naive,
}

/// A pending queue with the aggregate API, dispatching to the selected
/// backend.
///
/// The treap variant is held inline: the arena [`AggTreap`] is a few
/// `Vec`s plus small scalars, so no indirection is needed (the old
/// `Box`-per-node treap was boxed here to keep the enum slim).
#[derive(Debug)]
pub enum PendQueue {
    /// Treap-backed queue.
    Treap(AggTreap<PendKey>),
    /// Sorted-vector-backed queue.
    Naive(NaiveAggQueue<PendKey>),
}

impl PendQueue {
    /// Creates an empty queue with the given backend.
    pub fn new(backend: QueueBackend) -> Self {
        Self::with_capacity(backend, 0)
    }

    /// Creates an empty queue preallocated for `cap` pending jobs, so
    /// the arrival hot path never grows the backing storage below that
    /// high-water mark (honored by **both** backends).
    pub fn with_capacity(backend: QueueBackend, cap: usize) -> Self {
        match backend {
            QueueBackend::Treap => PendQueue::Treap(AggTreap::with_capacity(cap)),
            QueueBackend::Naive => PendQueue::Naive(NaiveAggQueue::with_capacity(cap)),
        }
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        match self {
            PendQueue::Treap(t) => t.len(),
            PendQueue::Naive(q) => q.len(),
        }
    }

    /// Whether no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a job; the weight is its processing time on this machine.
    pub fn insert(&mut self, key: PendKey, size: f64) {
        match self {
            PendQueue::Treap(t) => t.insert(key, size),
            PendQueue::Naive(q) => q.insert(key, size),
        }
    }

    /// Removes a specific job.
    pub fn remove(&mut self, key: &PendKey) -> Option<f64> {
        match self {
            PendQueue::Treap(t) => t.remove(key),
            PendQueue::Naive(q) => q.remove(key),
        }
    }

    /// Pops the job that precedes all others (shortest — SPT start).
    pub fn pop_first(&mut self) -> Option<(PendKey, f64)> {
        match self {
            PendQueue::Treap(t) => t.pop_first(),
            PendQueue::Naive(q) => q.pop_first(),
        }
    }

    /// Pops the job with the largest processing time (Rule 2 victim).
    pub fn pop_last(&mut self) -> Option<(PendKey, f64)> {
        match self {
            PendQueue::Treap(t) => t.pop_last(),
            PendQueue::Naive(q) => q.pop_last(),
        }
    }

    /// Aggregate over jobs preceding or equal to `key`.
    pub fn agg_le(&self, key: &PendKey) -> Agg {
        match self {
            PendQueue::Treap(t) => t.agg_le(key),
            PendQueue::Naive(q) => q.agg_le(key),
        }
    }

    /// Aggregate over all pending jobs.
    pub fn total(&self) -> Agg {
        match self {
            PendQueue::Treap(t) => t.total(),
            PendQueue::Naive(q) => q.total(),
        }
    }

    /// Smallest pending processing time (`∞` when empty) — the queue
    /// is keyed by `(p, r, id)`, so this is the first key's size. Feeds
    /// the pruned dispatch index's per-machine `λ̂` lower bound.
    pub fn min_size(&self) -> f64 {
        let first = match self {
            PendQueue::Treap(t) => t.first(),
            PendQueue::Naive(q) => q.first(),
        };
        first.map_or(f64::INFINITY, |k| k.0 .0)
    }
}

/// Computes `λ_ij` from the queue state, per §2:
///
/// ```text
/// λ_ij = (1/ε)·p_ij + Σ_{ℓ⪯j} p_iℓ + |{ℓ ≻ j}|·p_ij
/// ```
///
/// where the order ranges over the pending jobs *plus `j` itself*
/// (`ℓ ⪯ j` includes `j`, contributing `p_ij` to the middle sum). The
/// queue holds the pending set without `j`; `key`/`size` describe `j`.
#[inline]
pub fn lambda_ij(queue: &PendQueue, key: &PendKey, size: f64, inv_eps: f64) -> f64 {
    let before = queue.agg_le(key);
    let all = queue.total();
    let succ = (all.count - before.count) as f64;
    inv_eps * size + (before.sum + size) + succ * size
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: f64, id: u32) -> PendKey {
        pend_key(p, 0.0, JobId(id))
    }

    #[test]
    fn both_backends_agree_on_lambda() {
        for backend in [QueueBackend::Treap, QueueBackend::Naive] {
            let mut q = PendQueue::new(backend);
            q.insert(key(2.0, 0), 2.0);
            q.insert(key(5.0, 1), 5.0);
            q.insert(key(9.0, 2), 9.0);
            // New job p=4: preceded by {2}, succeeded by {5, 9}.
            // λ = (1/ε)·4 + (2 + 4) + 2·4, with 1/ε = 10.
            let l = lambda_ij(&q, &key(4.0, 3), 4.0, 10.0);
            assert_eq!(l, 40.0 + 6.0 + 8.0, "backend {backend:?}");
        }
    }

    #[test]
    fn lambda_on_empty_queue_is_ratio_terms_only() {
        let q = PendQueue::new(QueueBackend::Treap);
        let l = lambda_ij(&q, &key(3.0, 0), 3.0, 2.0);
        // (1/ε)p + p = 2·3 + 3
        assert_eq!(l, 9.0);
    }

    #[test]
    fn spt_order_pop_first() {
        let mut q = PendQueue::new(QueueBackend::Treap);
        q.insert(key(5.0, 1), 5.0);
        q.insert(key(2.0, 2), 2.0);
        q.insert(key(2.0, 0), 2.0);
        // Equal sizes: earliest release (equal) then id breaks the tie.
        let (k, _) = q.pop_first().unwrap();
        assert_eq!(k.2, 0);
    }

    #[test]
    fn rule2_victim_is_largest() {
        let mut q = PendQueue::new(QueueBackend::Naive);
        q.insert(key(5.0, 1), 5.0);
        q.insert(key(7.0, 2), 7.0);
        q.insert(key(2.0, 0), 2.0);
        let (k, w) = q.pop_last().unwrap();
        assert_eq!(k.2, 2);
        assert_eq!(w, 7.0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn ties_on_size_break_by_release_then_id() {
        let mut q = PendQueue::new(QueueBackend::Treap);
        q.insert(pend_key(3.0, 5.0, JobId(0)), 3.0);
        q.insert(pend_key(3.0, 1.0, JobId(9)), 3.0);
        let (k, _) = q.pop_first().unwrap();
        assert_eq!(k.1, TotalF64(1.0));
        assert_eq!(k.2, 9);
    }

    #[test]
    fn min_size_tracks_first_key() {
        for backend in [QueueBackend::Treap, QueueBackend::Naive] {
            let mut q = PendQueue::new(backend);
            assert_eq!(q.min_size(), f64::INFINITY);
            q.insert(key(5.0, 1), 5.0);
            q.insert(key(2.0, 2), 2.0);
            assert_eq!(q.min_size(), 2.0, "{backend:?}");
            q.pop_first();
            assert_eq!(q.min_size(), 5.0, "{backend:?}");
        }
    }

    #[test]
    fn naive_with_capacity_reaches_backing_store() {
        // The hint used to be silently dropped for the naive backend.
        let q = PendQueue::with_capacity(QueueBackend::Naive, 32);
        match q {
            PendQueue::Naive(inner) => assert!(inner.capacity() >= 32),
            PendQueue::Treap(_) => unreachable!(),
        }
    }

    #[test]
    fn remove_specific_job() {
        let mut q = PendQueue::new(QueueBackend::Treap);
        let k = key(4.0, 7);
        q.insert(k, 4.0);
        assert_eq!(q.remove(&k), Some(4.0));
        assert!(q.is_empty());
    }
}
