//! §2 — online non-preemptive total flow-time minimization with
//! rejections (Theorem 1).
//!
//! ## The algorithm
//!
//! Every job is dispatched immediately at arrival to the machine
//! minimizing
//!
//! ```text
//! λ_ij = (1/ε)·p_ij + Σ_{ℓ⪯j} p_iℓ + Σ_{ℓ≻j} p_ij
//! ```
//!
//! over the machine's pending queue ordered by processing time (ties:
//! earliest release). Whenever a machine goes idle it starts the
//! shortest pending job (SPT). Two rejection rules bound the damage a
//! wrong non-preemptive commitment can cause:
//!
//! * **Rule 1** — a counter `v_k` on the running job `k` counts jobs
//!   dispatched to the machine during `k`'s execution; when it reaches
//!   `⌈1/ε⌉` the algorithm *interrupts and rejects* `k` (long jobs
//!   cannot starve a burst of short arrivals).
//! * **Rule 2** — a per-machine counter `c_i` counts dispatches; every
//!   `1 + ⌈1/ε⌉` dispatches the *largest pending* job is rejected and
//!   the counter resets (a surrogate for speed augmentation: the queue
//!   drains faster than jobs arrive).
//!
//! Theorem 1: the result is `2((1+ε)/ε)²`-competitive for total
//! flow-time while rejecting at most a `2ε` fraction of jobs.
//!
//! ## Dual accounting
//!
//! The run simultaneously constructs the dual solution of the paper's
//! analysis: `λ_j = ε/(1+ε)·min_i λ_ij` at each arrival and the
//! definitive-finish times `C̃_j` that define `β_i(t)`. By weak duality
//! (and the factor-2 LP relaxation) this yields a **certified lower
//! bound** `(Σλ_j − ∫Σβ)/2` on the optimal total flow-time of *any*
//! non-preemptive schedule — the denominator of every competitive-ratio
//! measurement in the experiments. See [`dual`].

pub mod dual;
pub mod queue;
pub mod weighted;

use osr_dstruct::{MachineIndex, MachineStats, ShardMaskScratch, TotalF64};
use osr_model::{
    Execution, FinishedLog, Instance, Job, JobId, MachineId, OnlineSet, PartialRun, RejectReason,
    Rejection,
};
use osr_sim::{
    driver::{EventPolicy, LogOp, Placement, ShardCtx, ShardProbe},
    CapacityChange, CapacityPlan, DecisionEvent, DecisionTrace, EventBackend, OnlineScheduler,
};

use crate::config::SchedulerConfig;
use crate::dispatch::{self, CapacityIndexMode, DispatchIndex, PRUNED_MIN_MACHINES};
use crate::epsilon::Thresholds;
pub use dual::{check_dual_feasibility, DualAudit, FlowDual};
pub use queue::QueueBackend;
use queue::{lambda_ij, pend_key, PendKey, PendQueue};
pub use weighted::{WeightedFlowOutcome, WeightedFlowParams, WeightedFlowScheduler};

/// Parameters of the §2 algorithm.
///
/// The runtime knobs (queue backend, dispatch strategy, event backend,
/// capacity-index mode, propagation, shards) live in the embedded
/// [`SchedulerConfig`]; `FlowParams` derefs to it, so
/// `params.dispatch`, `params.backend` etc. keep reading and writing
/// as plain fields.
#[derive(Debug, Clone, Copy)]
pub struct FlowParams {
    /// Rejection-budget parameter `ε ∈ (0, 1]`.
    pub eps: f64,
    /// Enable Rule 1 (ablation toggle; the theorem requires both rules).
    pub rule1: bool,
    /// Enable Rule 2 (ablation toggle).
    pub rule2: bool,
    /// Shared runtime knobs (see [`SchedulerConfig`]).
    pub config: SchedulerConfig,
}

impl std::ops::Deref for FlowParams {
    type Target = SchedulerConfig;
    fn deref(&self) -> &SchedulerConfig {
        &self.config
    }
}

impl std::ops::DerefMut for FlowParams {
    fn deref_mut(&mut self) -> &mut SchedulerConfig {
        &mut self.config
    }
}

impl FlowParams {
    /// Standard parameters: both rules on, and the process-default
    /// runtime knobs ([`SchedulerConfig::default`]).
    pub fn new(eps: f64) -> Self {
        FlowParams {
            eps,
            rule1: true,
            rule2: true,
            config: SchedulerConfig::default(),
        }
    }

    /// Ablation constructor.
    pub fn with_rules(eps: f64, rule1: bool, rule2: bool) -> Self {
        FlowParams {
            rule1,
            rule2,
            ..FlowParams::new(eps)
        }
    }

    /// The pending-queue backend knob.
    #[deprecated(note = "read `params.backend` (via the embedded `config`) instead")]
    pub fn backend(&self) -> QueueBackend {
        self.config.backend
    }

    /// The dispatch-strategy knob.
    #[deprecated(note = "read `params.dispatch` (via the embedded `config`) instead")]
    pub fn dispatch(&self) -> DispatchIndex {
        self.config.dispatch
    }

    /// The event-queue backend knob.
    #[deprecated(note = "read `params.events` (via the embedded `config`) instead")]
    pub fn events(&self) -> EventBackend {
        self.config.events
    }

    /// The capacity-index mode knob.
    #[deprecated(note = "read `params.capacity_index` (via the embedded `config`) instead")]
    pub fn capacity_index(&self) -> CapacityIndexMode {
        self.config.capacity_index
    }

    /// The requested driver shard count.
    #[deprecated(note = "read `params.shards` (via the embedded `config`) instead")]
    pub fn shards(&self) -> usize {
        self.config.shards
    }
}

/// Everything a run produces: the schedule, the dual solution, and the
/// decision trace.
#[derive(Debug)]
pub struct FlowOutcome {
    /// The validated-format schedule log.
    pub log: FinishedLog,
    /// Dual variables and the certified lower bound.
    pub dual: FlowDual,
    /// Decision audit trail.
    pub trace: DecisionTrace,
    /// The dispatch strategy that actually ran: `Pruned` degrades to
    /// `Linear` below [`PRUNED_MIN_MACHINES`], and ablation harnesses
    /// must label rows by *this*, not the request
    /// (see [`crate::dispatch::effective_dispatch_index`]).
    pub effective_dispatch: DispatchIndex,
    /// The shard count the driver actually ran with (requests are
    /// clamped to one shard per rack; `1` means the serial path).
    pub effective_shards: usize,
}

/// The §2 scheduler. Construct via [`FlowScheduler::new`]; run via
/// [`FlowScheduler::run`] (rich outcome) or the
/// [`OnlineScheduler`] trait (log only).
///
/// ```
/// use osr_core::FlowScheduler;
/// use osr_model::{InstanceBuilder, InstanceKind};
///
/// let instance = InstanceBuilder::new(2, InstanceKind::FlowTime)
///     .job(0.0, vec![3.0, 6.0])
///     .job(1.0, vec![5.0, 2.0])
///     .build()
///     .unwrap();
/// let outcome = FlowScheduler::with_eps(0.5).unwrap().run(&instance);
/// assert_eq!(outcome.log.len(), 2);
/// // The run certifies a dual-based lower bound on OPT.
/// assert!(outcome.dual.opt_lower_bound() >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowScheduler {
    params: FlowParams,
    thresholds: Thresholds,
    capacity: CapacityPlan,
}

/// The job currently executing on a machine.
struct Running {
    job: JobId,
    start: f64,
    completion: f64,
    /// Rule 1 counter `v_k`.
    v: u64,
}

/// Per-machine online state.
struct MachineState {
    pending: PendQueue,
    running: Option<Running>,
    /// Rule 2 counter `c_i`.
    c: u64,
    /// Rule 1 rejection events `(time, remaining q_ik(r_{j_k}))`, in
    /// time order, with a running prefix sum for `O(log)` window
    /// queries when finalizing `C̃_j`.
    rule1_times: Vec<f64>,
    rule1_prefix: Vec<f64>,
}

impl MachineState {
    fn new(backend: QueueBackend, cap_hint: usize) -> Self {
        MachineState {
            pending: PendQueue::with_capacity(backend, cap_hint),
            running: None,
            c: 0,
            rule1_times: Vec::new(),
            rule1_prefix: vec![0.0],
        }
    }

    fn push_rule1_event(&mut self, time: f64, remaining: f64) {
        debug_assert!(self.rule1_times.last().is_none_or(|&t| t <= time));
        self.rule1_times.push(time);
        let last = *self.rule1_prefix.last().unwrap();
        self.rule1_prefix.push(last + remaining);
    }

    /// Sum of remaining-times of Rule-1 rejections in `[lo, hi]`.
    fn rule1_window(&self, lo: f64, hi: f64) -> f64 {
        let a = self.rule1_times.partition_point(|&t| t < lo);
        let b = self.rule1_times.partition_point(|&t| t <= hi);
        self.rule1_prefix[b] - self.rule1_prefix[a]
    }
}

impl FlowScheduler {
    /// Validates `params` and builds the scheduler.
    pub fn new(params: FlowParams) -> Result<Self, String> {
        let thresholds = Thresholds::new(params.eps)?;
        Ok(FlowScheduler {
            params,
            thresholds,
            capacity: CapacityPlan::empty(),
        })
    }

    /// Convenience constructor with default parameters for `eps`.
    pub fn with_eps(eps: f64) -> Result<Self, String> {
        Self::new(FlowParams::new(eps))
    }

    /// Attaches a capacity plan (builder-style): the run replays the
    /// plan's join/drain/crash stream alongside arrivals, re-dispatching
    /// the jobs of draining/crashing machines.
    pub fn with_capacity(mut self, plan: CapacityPlan) -> Self {
        self.capacity = plan;
        self
    }

    /// The thresholds in effect.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Runs the algorithm over `instance`, producing the full outcome.
    ///
    /// The event loop itself — the three-way arrival/completion/capacity
    /// merge, the re-dispatch discipline, the shared reject accounting —
    /// lives in [`osr_sim::driver`]; this method supplies the §2 policy
    /// (`FlowPolicy`) and assembles the dual from the driver's
    /// whole-run state.
    pub fn run(&self, instance: &Instance) -> FlowOutcome {
        let th = self.thresholds;
        let m = instance.machines();
        let n = instance.len();
        let jobs = instance.jobs();

        // Preallocate each machine's pending arena for an even share of
        // the jobs (clamped: adversarial instances can pile everything
        // onto one machine, which then grows once past the hint).
        let cap_hint = (n / m + 1).min(1 << 16);
        let policy = FlowPolicy {
            jobs,
            th,
            params: self.params,
            m,
            cap_hint,
        };
        let mut global = FlowGlobal {
            lambda: vec![0.0f64; n],
            exit: vec![f64::NAN; n],
            c_tilde: vec![f64::NAN; n],
            machine_of: vec![u32::MAX; n],
        };
        let (log, trace, effective_shards) = osr_sim::drive(
            &policy,
            jobs,
            m,
            &self.capacity,
            self.params.events,
            self.params.shards,
            &mut global,
        );
        let log = log.finish().expect("every job completed or rejected");
        let releases: Vec<f64> = jobs.iter().map(|j| j.release).collect();
        let dual = FlowDual::assemble(
            th,
            global.lambda,
            releases,
            global.exit,
            global.c_tilde,
            global.machine_of,
        );
        FlowOutcome {
            log,
            dual,
            trace,
            effective_dispatch: dispatch::effective_dispatch_index(self.params.dispatch, m),
            effective_shards,
        }
    }
}

/// A deferred, job-keyed write into the §2 dual arrays, buffered
/// per-shard and folded into [`FlowGlobal`] at every driver barrier.
enum FlowOp {
    /// First-arrival dual price `λ_j` (never re-set on redispatch).
    Lambda(JobId, f64),
    /// Final placement (overwritten by later re-dispatches).
    Machine(JobId, u32),
    /// Exit instant and definitive finish `C̃_j`.
    Exit { job: JobId, exit: f64, c_tilde: f64 },
}

/// Whole-run dual state the driver folds shard results into.
/// `pub(crate)` with open fields so [`crate::session`] can grow it one
/// arrival at a time in serve mode.
pub(crate) struct FlowGlobal {
    pub(crate) lambda: Vec<f64>,
    pub(crate) exit: Vec<f64>,
    pub(crate) c_tilde: Vec<f64>,
    pub(crate) machine_of: Vec<u32>,
}

/// One driver shard's §2 state: the machines it owns (locally
/// indexed — machine `li` is global `base + li`), its slice of the
/// pruned dispatch index, and the buffered dual writes.
pub(crate) struct FlowShard {
    base: usize,
    len: usize,
    machines: Vec<MachineState>,
    dindex: Option<MachineIndex>,
    scratch: ShardMaskScratch,
    ops: Vec<FlowOp>,
}

/// The §2 algorithm as an [`EventPolicy`]: dispatch argmin + both
/// rejection rules + dual bookkeeping. The driver owns event ordering
/// and re-dispatch. `pub(crate)` with open fields so
/// [`crate::session`] can rebuild the (cheap, borrow-carrying) policy
/// per ingest call.
pub(crate) struct FlowPolicy<'a> {
    pub(crate) jobs: &'a [Job],
    pub(crate) th: Thresholds,
    pub(crate) params: FlowParams,
    /// Global machine count (the pruned-index crossover and the trace's
    /// `candidates` field are defined on the whole pool, not a shard).
    pub(crate) m: usize,
    pub(crate) cap_hint: usize,
}

/// Machine `q`'s current stats row for the dispatch index.
fn stats_of(q: &PendQueue) -> MachineStats {
    MachineStats {
        count: q.len() as u64,
        wsum: q.total().sum,
        min_size: q.min_size(),
    }
}

impl FlowPolicy<'_> {
    /// Pushes machine `li`'s refreshed queue stats into the shard
    /// index; call after every pending-queue mutation.
    fn sync_index(dindex: &mut Option<MachineIndex>, li: usize, q: &PendQueue) {
        if let Some(ix) = dindex {
            ix.update(li, stats_of(q));
        }
    }

    /// Starts the shortest pending job on local machine `li` if idle
    /// (and still in the pool — a draining machine finishes its running
    /// job but starts nothing new).
    fn start_next(&self, sh: &mut FlowShard, cx: &mut ShardCtx<'_>, li: usize, t: f64) {
        let mi = sh.base + li;
        let ms = &mut sh.machines[li];
        if ms.running.is_some() || !cx.online.is_online(mi) {
            return;
        }
        if let Some(((p, _r, id), _w)) = ms.pending.pop_first() {
            let job = JobId(id);
            let completion = t + p.get();
            ms.running = Some(Running {
                job,
                start: t,
                completion,
                v: 0,
            });
            cx.completions.push(completion, (mi, job));
            cx.io.trace.push(DecisionEvent::Start {
                time: t,
                job,
                machine: MachineId(mi as u32),
                speed: 1.0,
            });
            Self::sync_index(&mut sh.dindex, li, &ms.pending);
        }
    }
}

impl EventPolicy for FlowPolicy<'_> {
    type Shard = FlowShard;
    type Global = FlowGlobal;

    fn make_shard(&self, base: usize, len: usize, online: &OnlineSet) -> FlowShard {
        // Pruned dispatch: a tournament tree over per-machine stats,
        // with offline machines tombstoned. Below the crossover the
        // plain scan is cheaper than any bookkeeping (results are
        // identical either way). The crossover is defined on the
        // *global* pool so shard counts never change the strategy.
        let dindex = (self.params.dispatch == DispatchIndex::Pruned
            && self.m >= PRUNED_MIN_MACHINES)
            .then(|| {
                dispatch::rebuild_shard_index(
                    base,
                    len,
                    online,
                    self.params.propagation,
                    self.params.kernels,
                    |_| MachineStats::EMPTY,
                )
            });
        FlowShard {
            base,
            len,
            machines: (0..len)
                .map(|_| MachineState::new(self.params.backend, self.cap_hint))
                .collect(),
            dindex,
            scratch: ShardMaskScratch::new(),
            ops: Vec::new(),
        }
    }

    fn candidate(
        &self,
        sh: &mut FlowShard,
        job: &Job,
        t: f64,
        online: &OnlineSet,
    ) -> Option<(usize, f64)> {
        // Dispatch: argmin over this shard's eligible *online* machines
        // of λ_ij (lowest index on ties). The pruned path and the
        // linear scan are bit-identical; see `crate::dispatch` for the
        // bound soundness argument. Offline machines are tombstoned in
        // the index and skipped by the scan. `p̂` (global + rack-local
        // layers) and the eligibility mask (the job-side inputs to the
        // subtree bounds and the subtree skip) are precomputed at
        // generation time — no per-arrival rescan of `job.sizes`.
        let FlowShard {
            base,
            len,
            machines,
            dindex,
            scratch,
            ..
        } = sh;
        let (base, len) = (*base, *len);
        let j = job.id;
        let inv_eps = self.th.inv_eps;
        let best = match dindex.as_mut() {
            Some(ix) => {
                let ph = dispatch::p_hat_view(job);
                let mask = scratch.rebase(dispatch::mask_view(job.elig()), base, len);
                ix.search_masked_rows(
                    mask,
                    |s, lo, span| {
                        dispatch::flow_lambda_bound(
                            s.min_count,
                            s.min_size,
                            ph.for_range(base + lo, span),
                            inv_eps,
                        )
                    },
                    // Leaf-row-slice form of the bound below: the same
                    // per-lane expression over an aligned quad of stat
                    // rows (bit-identical by construction), which is
                    // what the chunked flat scan autovectorizes.
                    |lo, rows, out| {
                        for k in 0..osr_dstruct::kernel::LANES {
                            let p = job.sizes[base + lo + k];
                            out[k] = if p.is_finite() {
                                dispatch::flow_lambda_bound(
                                    rows[k].count,
                                    rows[k].min_size,
                                    p,
                                    inv_eps,
                                )
                            } else {
                                f64::INFINITY
                            };
                        }
                    },
                    |li, s| {
                        let p = job.sizes[base + li];
                        if p.is_finite() {
                            dispatch::flow_lambda_bound(s.count, s.min_size, p, inv_eps)
                        } else {
                            f64::INFINITY
                        }
                    },
                    |li| {
                        let p = job.sizes[base + li];
                        p.is_finite().then(|| {
                            lambda_ij(&machines[li].pending, &pend_key(p, t, j), p, inv_eps)
                        })
                    },
                )
            }
            None => {
                let mut best: Option<(usize, f64)> = None;
                for li in 0..len {
                    let p = job.sizes[base + li];
                    if !p.is_finite() || !online.is_online(base + li) {
                        continue;
                    }
                    let key = pend_key(p, t, j);
                    let l = lambda_ij(&machines[li].pending, &key, p, inv_eps);
                    if best.is_none_or(|(_, bl)| l < bl) {
                        best = Some((li, l));
                    }
                }
                best
            }
        };
        best.map(|(li, lam)| (base + li, lam))
    }

    fn dispatch(&self, sh: &mut FlowShard, cx: &mut ShardCtx<'_>, job: &Job, p: &Placement) {
        let Placement {
            time: t,
            machine: mi,
            lambda: lam,
            redispatch,
        } = *p;
        let j = job.id;
        // The dual λ_j keeps its first-arrival value on capacity-churn
        // re-dispatch (the lower bound prices the original arrival; the
        // churn is the adversary's doing), while `machine_of` tracks
        // the final placement.
        if !redispatch {
            sh.ops.push(FlowOp::Lambda(j, self.th.lambda_scale() * lam));
        }
        sh.ops.push(FlowOp::Machine(j, mi as u32));
        let li = mi - sh.base;

        let p_ij = job.sizes[mi];
        sh.machines[li].pending.insert(pend_key(p_ij, t, j), p_ij);
        Self::sync_index(&mut sh.dindex, li, &sh.machines[li].pending);

        // Rule 1: the dispatch counts against the running job.
        if let Some(run) = sh.machines[li].running.as_mut() {
            run.v += 1;
            if self.params.rule1 && run.v >= self.th.rule1_at {
                let run = sh.machines[li].running.take().expect("present");
                let k = run.job;
                let remaining = run.completion - t;
                cx.io.ops.push(LogOp::Reject(
                    k,
                    Rejection {
                        time: t,
                        reason: RejectReason::RuleOne,
                        partial: Some(PartialRun {
                            machine: MachineId(mi as u32),
                            start: run.start,
                            end: t,
                            speed: 1.0,
                        }),
                    },
                ));
                cx.io.trace.push(DecisionEvent::Reject {
                    time: t,
                    job: k,
                    machine: MachineId(mi as u32),
                    reason: RejectReason::RuleOne,
                    counter: run.v as f64,
                });
                // Dual bookkeeping: the rejected job's remaining time is
                // charged to every job whose [r, C] window covers t —
                // including k itself ("including j in case it is
                // rejected"): push the event before finalizing C̃_k.
                sh.machines[li].push_rule1_event(t, remaining);
                let rk = self.jobs[k.idx()].release;
                let c_tilde = t + sh.machines[li].rule1_window(rk, t);
                sh.ops.push(FlowOp::Exit {
                    job: k,
                    exit: t,
                    c_tilde,
                });
            }
        }

        // Rule 2: every `1 + ⌈1/ε⌉` dispatches, drop the largest
        // pending job.
        sh.machines[li].c += 1;
        if self.params.rule2 && sh.machines[li].c >= self.th.rule2_at {
            sh.machines[li].c = 0;
            if let Some(((p_max, _r, id), _w)) = sh.machines[li].pending.pop_last() {
                Self::sync_index(&mut sh.dindex, li, &sh.machines[li].pending);
                let jmax = JobId(id);
                cx.io.ops.push(LogOp::Reject(
                    jmax,
                    Rejection {
                        time: t,
                        reason: RejectReason::RuleTwo,
                        partial: None,
                    },
                ));
                cx.io.trace.push(DecisionEvent::Reject {
                    time: t,
                    job: jmax,
                    machine: MachineId(mi as u32),
                    reason: RejectReason::RuleTwo,
                    counter: self.th.rule2_at as f64,
                });
                // C̃ for a Rule-2 rejection adds the estimated
                // completion had it stayed: remaining of the running
                // job + pending work except the triggering arrival +
                // its own size (§2, definition of C̃_j).
                let ms = &sh.machines[li];
                let rem_running = ms.running.as_ref().map_or(0.0, |r| r.completion - t);
                let mut pend_sum = ms.pending.total().sum;
                if jmax != j {
                    // The triggering arrival j is still pending;
                    // exclude it (`ℓ ≠ j_j` in the paper's formula).
                    pend_sum -= p_ij;
                }
                let term = rem_running + pend_sum + p_max.get();
                let rjmax = self.jobs[jmax.idx()].release;
                let c_tilde = t + ms.rule1_window(rjmax, t) + term;
                sh.ops.push(FlowOp::Exit {
                    job: jmax,
                    exit: t,
                    c_tilde,
                });
            }
        }

        self.start_next(sh, cx, li, t);
    }

    fn note_unplaced(&self, sh: &mut FlowShard, job: &Job, t: f64) {
        // No machine can take j (the driver has recorded the standard
        // rejection): it contributes nothing to the dual
        // (λ_j = 0, C̃_j = t).
        sh.ops.push(FlowOp::Exit {
            job: job.id,
            exit: t,
            c_tilde: t,
        });
    }

    fn complete(&self, sh: &mut FlowShard, cx: &mut ShardCtx<'_>, mi: usize, job: JobId, t: f64) {
        let li = mi - sh.base;
        let ms = &mut sh.machines[li];
        // Stale events: the job was Rule-1-rejected mid-run, or
        // crash-killed and re-dispatched (possibly back onto the same
        // machine — hence the completion-time check too).
        let matches = ms
            .running
            .as_ref()
            .is_some_and(|r| r.job == job && r.completion == t);
        if !matches {
            return;
        }
        let r = ms.running.take().expect("matched");
        cx.io.ops.push(LogOp::Complete(
            job,
            Execution {
                machine: MachineId(mi as u32),
                start: r.start,
                completion: r.completion,
                speed: 1.0,
            },
        ));
        cx.io.trace.push(DecisionEvent::Complete {
            time: t,
            job,
            machine: MachineId(mi as u32),
        });
        // Finalize dual bookkeeping for the completed job: all Rule-1
        // events in [r_j, C_j] are in the past.
        let rj = self.jobs[job.idx()].release;
        let c_tilde = t + sh.machines[li].rule1_window(rj, t);
        sh.ops.push(FlowOp::Exit {
            job,
            exit: t,
            c_tilde,
        });
        self.start_next(sh, cx, li, t);
    }

    fn capacity_sync(
        &self,
        sh: &mut FlowShard,
        change: CapacityChange,
        mi: usize,
        online: &OnlineSet,
    ) {
        let FlowShard {
            base,
            len,
            machines,
            dindex,
            ..
        } = sh;
        let base = *base;
        dispatch::sync_shard_index(
            dindex,
            self.params.capacity_index,
            change,
            mi,
            base,
            *len,
            online,
            self.params.propagation,
            self.params.kernels,
            |i| stats_of(&machines[i - base].pending),
        );
    }

    fn evict(
        &self,
        sh: &mut FlowShard,
        _cx: &mut ShardCtx<'_>,
        change: CapacityChange,
        mi: usize,
        t: f64,
        victims: &mut Vec<(JobId, Option<PartialRun>)>,
    ) {
        // A crash kills the running job at `t` (a drain lets it
        // finish); either way every queued job leaves with the machine.
        let li = mi - sh.base;
        if change == CapacityChange::Crash {
            if let Some(run) = sh.machines[li].running.take() {
                victims.push((
                    run.job,
                    Some(PartialRun {
                        machine: MachineId(mi as u32),
                        start: run.start,
                        end: t,
                        speed: 1.0,
                    }),
                ));
            }
        }
        while let Some(((_p, _r, id), _w)) = sh.machines[li].pending.pop_first() {
            victims.push((JobId(id), None));
        }
    }

    fn drain(&self, sh: &mut FlowShard, global: &mut FlowGlobal) {
        for op in sh.ops.drain(..) {
            match op {
                FlowOp::Lambda(j, v) => global.lambda[j.idx()] = v,
                FlowOp::Machine(j, mi) => global.machine_of[j.idx()] = mi,
                FlowOp::Exit { job, exit, c_tilde } => {
                    global.exit[job.idx()] = exit;
                    global.c_tilde[job.idx()] = c_tilde;
                }
            }
        }
    }

    fn probe(&self, sh: &FlowShard) -> ShardProbe {
        ShardProbe {
            queued: sh.machines.iter().map(|ms| ms.pending.len()).sum(),
            running: sh.machines.iter().filter(|ms| ms.running.is_some()).count(),
            index: sh.dindex.as_ref().map(|ix| ix.index_stats()),
        }
    }

    fn probe_machines(&self, sh: &FlowShard, out: &mut Vec<(usize, usize)>) {
        out.extend(
            sh.machines
                .iter()
                .enumerate()
                .map(|(li, ms)| (sh.base + li, ms.pending.len())),
        );
    }
}

impl OnlineScheduler for FlowScheduler {
    fn name(&self) -> String {
        format!(
            "spaa18-flow(eps={}, rules={}{})",
            self.params.eps,
            if self.params.rule1 { "1" } else { "-" },
            if self.params.rule2 { "2" } else { "-" },
        )
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).log
    }
}

/// Key type re-export for tests and benches.
pub type PendingKey = PendKey;

/// Re-exported for benches that need raw keys.
pub fn make_pend_key(p: f64, release: f64, id: JobId) -> PendKey {
    (TotalF64(p), TotalF64(release), id.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, JobFate, Metrics};
    use osr_sim::{validate_log, ValidationConfig};

    fn run_eps(inst: &Instance, eps: f64) -> FlowOutcome {
        FlowScheduler::with_eps(eps).unwrap().run(inst)
    }

    fn assert_valid(inst: &Instance, out: &FlowOutcome) {
        let rep = validate_log(inst, &out.log, &ValidationConfig::flow_time());
        assert!(rep.is_valid(), "invalid schedule: {:?}", rep.errors);
    }

    #[test]
    fn single_job_runs_immediately() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![3.0])
            .build()
            .unwrap();
        let out = run_eps(&inst, 0.5);
        assert_valid(&inst, &out);
        match out.log.fate(JobId(0)) {
            JobFate::Completed(e) => {
                assert_eq!(e.start, 0.0);
                assert_eq!(e.completion, 3.0);
            }
            other => panic!("unexpected fate {other:?}"),
        }
    }

    #[test]
    fn spt_order_on_single_machine() {
        // Three jobs at t=0 with eps=1 (rule2 threshold 2 → one Rule-2
        // rejection of the largest on the second dispatch).
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![5.0])
            .job(0.0, vec![1.0])
            .job(0.0, vec![3.0])
            .build()
            .unwrap();
        // Large eps disables rejections quickly? eps=1 → rule2 fires at
        // every 2nd dispatch. Use tiny rejection pressure instead:
        let sched = FlowScheduler::new(FlowParams::with_rules(0.5, false, false)).unwrap();
        let out = sched.run(&inst);
        assert_valid(&inst, &out);
        // All complete; SPT after the first (j0 starts first at t=0
        // since the queue then holds only j0 — arrival order matters:
        // j0 arrives, starts immediately; j1, j2 queue up; after j0,
        // SPT picks j1 then j2.
        let c: Vec<f64> = (0..3)
            .map(|k| out.log.fate(JobId(k)).execution().unwrap().completion)
            .collect();
        assert_eq!(c, vec![5.0, 6.0, 9.0]);
    }

    #[test]
    fn rule1_rejects_running_long_job() {
        // eps = 0.5 → rule1 fires when v reaches 2.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![100.0])
            .job(1.0, vec![1.0])
            .job(2.0, vec![1.0])
            .build()
            .unwrap();
        let out = run_eps(&inst, 0.5);
        assert_valid(&inst, &out);
        let rej = out
            .log
            .fate(JobId(0))
            .rejection()
            .expect("long job rejected");
        assert_eq!(rej.reason, RejectReason::RuleOne);
        assert_eq!(rej.time, 2.0);
        let p = rej.partial.expect("was running");
        assert_eq!(p.start, 0.0);
        assert_eq!(p.end, 2.0);
        // The same (third) dispatch also trips Rule 2 (c_i = 3 = 1+⌈1/ε⌉),
        // which drops the largest pending job — the tie between the two
        // unit jobs breaks towards the later release, j2.
        let rej2 = out.log.fate(JobId(2)).rejection().expect("rule 2 victim");
        assert_eq!(rej2.reason, RejectReason::RuleTwo);
        // The surviving short job completes promptly after the rejection.
        assert!(out.log.fate(JobId(1)).is_completed());
        let m = Metrics::compute(&inst, &out.log, 2.0);
        assert!(m.flow.flow_served < 10.0);
    }

    #[test]
    fn rule2_rejects_largest_pending() {
        // eps = 1 → rule2_at = 2: every second dispatch drops the
        // largest pending job. Rule 1 fires at v=1: disable it to
        // isolate Rule 2.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![4.0])
            .job(0.5, vec![9.0])
            .job(1.0, vec![1.0])
            .build()
            .unwrap();
        let sched = FlowScheduler::new(FlowParams::with_rules(1.0, false, true)).unwrap();
        let out = sched.run(&inst);
        assert_valid(&inst, &out);
        // Dispatches: j0 (c=1, starts), j1 (c=2 → Rule 2 drops largest
        // pending = j1 itself), j2 (c=1).
        let rej = out
            .log
            .fate(JobId(1))
            .rejection()
            .expect("largest rejected");
        assert_eq!(rej.reason, RejectReason::RuleTwo);
        assert_eq!(rej.time, 0.5);
        assert!(rej.partial.is_none());
        assert!(out.log.fate(JobId(0)).is_completed());
        assert!(out.log.fate(JobId(2)).is_completed());
    }

    #[test]
    fn rejection_budget_respected_on_burst() {
        // n jobs at once; Theorem 1 allows at most 2ε·n rejections.
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        let n = 400;
        for k in 0..n {
            b = b.job(k as f64 * 0.01, vec![1.0 + (k % 7) as f64]);
        }
        let inst = b.build().unwrap();
        for eps in [0.1, 0.25, 0.5] {
            let out = run_eps(&inst, eps);
            assert_valid(&inst, &out);
            let rejected = out.log.rejected_count();
            let budget = (2.0 * eps * n as f64).ceil() as usize;
            assert!(
                rejected <= budget,
                "eps={eps}: rejected {rejected} > budget {budget}"
            );
        }
    }

    #[test]
    fn two_machines_split_load() {
        // Unrelated: j0 fast on m0, j1 fast on m1 — dispatch must
        // separate them.
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![1.0, 10.0])
            .job(0.0, vec![10.0, 1.0])
            .build()
            .unwrap();
        let out = run_eps(&inst, 0.5);
        assert_valid(&inst, &out);
        let e0 = out.log.fate(JobId(0)).execution().unwrap();
        let e1 = out.log.fate(JobId(1)).execution().unwrap();
        assert_eq!(e0.machine, MachineId(0));
        assert_eq!(e1.machine, MachineId(1));
        assert_eq!(e0.completion, 1.0);
        assert_eq!(e1.completion, 1.0);
    }

    #[test]
    fn restricted_assignment_respected() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![f64::INFINITY, 2.0])
            .job(0.0, vec![f64::INFINITY, 2.0])
            .build()
            .unwrap();
        let out = run_eps(&inst, 0.5);
        assert_valid(&inst, &out);
        for (_, e) in out.log.executions() {
            assert_eq!(e.machine, MachineId(1));
        }
    }

    #[test]
    fn dual_lower_bound_is_sane() {
        let mut b = InstanceBuilder::new(2, InstanceKind::FlowTime);
        for k in 0..60 {
            b = b.job(
                k as f64 * 0.3,
                vec![1.0 + (k % 5) as f64, 2.0 + (k % 3) as f64],
            );
        }
        let inst = b.build().unwrap();
        let out = run_eps(&inst, 0.25);
        assert_valid(&inst, &out);
        let metrics = Metrics::compute(&inst, &out.log, 2.0);
        let lb = out.dual.opt_lower_bound();
        assert!(lb >= 0.0);
        // The algorithm's own cost (flow over all jobs) must be at least
        // the certified lower bound on OPT.
        assert!(
            metrics.flow.flow_all + 1e-6 >= lb,
            "algorithm cost {} below its own certified LB {lb}",
            metrics.flow.flow_all
        );
        // And within the Theorem 1 factor of it (trivially true when lb
        // is loose; the ratio experiments tighten this).
        let bound = crate::bounds::flowtime_competitive_bound(0.25);
        if lb > 0.0 {
            assert!(metrics.flow.flow_all / lb <= bound * 2.0 + 1.0);
        }
    }

    #[test]
    fn c_tilde_dominates_exit_times() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..100 {
            b = b.job(k as f64 * 0.1, vec![0.5 + (k % 11) as f64]);
        }
        let inst = b.build().unwrap();
        let out = run_eps(&inst, 0.2);
        for j in 0..inst.len() {
            assert!(out.dual.c_tilde[j] + 1e-9 >= out.dual.exit[j]);
            assert!(out.dual.exit[j] >= out.dual.release[j]);
        }
    }

    #[test]
    fn theorem1_lambda_dominates_scaled_flow() {
        // The analysis shows Σλ_j ≥ ε/(1+ε)·Σ(C̃_j − r_j). Verify on a
        // random-ish instance.
        let mut b = InstanceBuilder::new(2, InstanceKind::FlowTime);
        for k in 0..150 {
            let p = 0.5 + ((k * 7919) % 13) as f64;
            b = b.job((k as f64) * 0.37, vec![p, ((k % 3) + 1) as f64 * p]);
        }
        let inst = b.build().unwrap();
        for eps in [0.2, 0.5, 1.0] {
            let out = run_eps(&inst, eps);
            let sum_lambda: f64 = out.dual.lambda.iter().sum();
            let sum_span: f64 = out
                .dual
                .c_tilde
                .iter()
                .zip(&out.dual.release)
                .map(|(ct, r)| ct - r)
                .sum();
            let scale = eps / (1.0 + eps);
            assert!(
                sum_lambda + 1e-6 >= scale * sum_span,
                "eps={eps}: Σλ={sum_lambda} < {}",
                scale * sum_span
            );
        }
    }

    #[test]
    fn disabling_both_rules_never_rejects() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..50 {
            b = b.job(k as f64 * 0.05, vec![1.0]);
        }
        let inst = b.build().unwrap();
        let sched = FlowScheduler::new(FlowParams::with_rules(0.1, false, false)).unwrap();
        let out = sched.run(&inst);
        assert_eq!(out.log.rejected_count(), 0);
        assert_valid(&inst, &out);
    }

    #[test]
    fn naive_and_treap_backends_agree() {
        let mut b = InstanceBuilder::new(3, InstanceKind::FlowTime);
        for k in 0..200u64 {
            let r = (k as f64) * 0.2;
            let p1 = 0.5 + ((k.wrapping_mul(2654435761)) % 17) as f64;
            let p2 = 0.5 + ((k.wrapping_mul(40503)) % 23) as f64;
            let p3 = 0.5 + ((k.wrapping_mul(9176)) % 11) as f64;
            b = b.job(r, vec![p1, p2, p3]);
        }
        let inst = b.build().unwrap();
        let mut pt = FlowParams::new(0.3);
        pt.backend = QueueBackend::Treap;
        let mut pn = FlowParams::new(0.3);
        pn.backend = QueueBackend::Naive;
        let a = FlowScheduler::new(pt).unwrap().run(&inst);
        let b2 = FlowScheduler::new(pn).unwrap().run(&inst);
        assert_eq!(a.log, b2.log, "backends must produce identical schedules");
        assert_eq!(a.dual.sum_lambda(), b2.dual.sum_lambda());
    }

    #[test]
    fn pruned_and_linear_dispatch_are_bit_identical() {
        // Tie-heavy: many machines with *identical* sizes, plus an
        // unrelated stretch — both regimes must agree exactly, machine
        // choices and λ values included.
        for (m, identical) in [(12usize, true), (16, false)] {
            let mut b = InstanceBuilder::new(m, InstanceKind::FlowTime);
            let mut s = 0x5EEDu64 | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let mut t = 0.0;
            for _ in 0..300 {
                t += (next() % 40) as f64 / 20.0;
                let base = 1.0 + (next() % 4) as f64;
                let sizes: Vec<f64> = (0..m)
                    .map(|k| {
                        if identical {
                            base
                        } else {
                            base * (1.0 + (next().wrapping_add(k as u64) % 5) as f64 / 2.0)
                        }
                    })
                    .collect();
                b = b.job(t, sizes);
            }
            let inst = b.build().unwrap();
            for eps in [0.2, 0.5] {
                let mut pp = FlowParams::new(eps);
                pp.dispatch = crate::DispatchIndex::Pruned;
                let mut pl = FlowParams::new(eps);
                pl.dispatch = crate::DispatchIndex::Linear;
                let a = FlowScheduler::new(pp).unwrap().run(&inst);
                let b2 = FlowScheduler::new(pl).unwrap().run(&inst);
                assert_eq!(a.log, b2.log, "m={m} identical={identical} eps={eps}");
                assert_eq!(a.dual.lambda, b2.dual.lambda);
                assert_eq!(a.dual.c_tilde, b2.dual.c_tilde);
            }
        }
    }

    #[test]
    fn pruned_dispatch_locks_lowest_index_tie_break() {
        // All machines identical and idle: every λ_ij ties exactly, and
        // the winner must be machine 0 — the contract the linear scan
        // established and the pruned index must preserve.
        let m = 8; // ≥ PRUNED_MIN_MACHINES so the index actually engages
        let inst = InstanceBuilder::new(m, InstanceKind::FlowTime)
            .job(0.0, vec![3.0; 8])
            .build()
            .unwrap();
        let mut params = FlowParams::with_rules(0.5, false, false);
        params.dispatch = crate::DispatchIndex::Pruned;
        let out = FlowScheduler::new(params).unwrap().run(&inst);
        let e = out.log.fate(JobId(0)).execution().unwrap();
        assert_eq!(e.machine, MachineId(0));
    }

    #[test]
    fn everywhere_ineligible_job_is_rejected_not_a_panic() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![2.0, 3.0])
            .job(1.0, vec![f64::INFINITY, f64::INFINITY])
            .job(2.0, vec![1.0, 4.0])
            .build()
            .unwrap();
        for dispatch in [crate::DispatchIndex::Linear, crate::DispatchIndex::Pruned] {
            let mut params = FlowParams::new(0.5);
            params.dispatch = dispatch;
            let out = FlowScheduler::new(params).unwrap().run(&inst);
            assert_valid(&inst, &out);
            let rej = out.log.fate(JobId(1)).rejection().expect("dropped");
            assert_eq!(rej.reason, RejectReason::Ineligible);
            assert_eq!(rej.time, 1.0);
            assert!(rej.partial.is_none());
            // The dual ignores it: λ_j = 0, C̃_j = r_j.
            assert_eq!(out.dual.lambda[1], 0.0);
            assert_eq!(out.dual.c_tilde[1], 1.0);
            // Other jobs are unaffected.
            assert!(out.log.fate(JobId(0)).is_completed());
            assert!(out.log.fate(JobId(2)).is_completed());
            // The feasibility audit must not index the sentinel machine.
            let audit = check_dual_feasibility(&inst, &out.dual, usize::MAX);
            assert!(audit.is_feasible(), "{:?}", audit.violations.first());
        }
    }

    #[test]
    fn outcome_records_the_effective_dispatch_index() {
        // Below the crossover a Pruned request degrades to the linear
        // scan — and the outcome must say so, so ablation harnesses
        // can't mislabel their rows.
        let small = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![1.0, 2.0])
            .build()
            .unwrap();
        let big = InstanceBuilder::new(PRUNED_MIN_MACHINES, InstanceKind::FlowTime)
            .job(0.0, vec![1.0; PRUNED_MIN_MACHINES])
            .build()
            .unwrap();
        let mut params = FlowParams::new(0.5);
        params.dispatch = crate::DispatchIndex::Pruned;
        let sched = FlowScheduler::new(params).unwrap();
        assert_eq!(
            sched.run(&small).effective_dispatch,
            crate::DispatchIndex::Linear
        );
        assert_eq!(
            sched.run(&big).effective_dispatch,
            crate::DispatchIndex::Pruned
        );
        params.dispatch = crate::DispatchIndex::Linear;
        let sched = FlowScheduler::new(params).unwrap();
        assert_eq!(
            sched.run(&small).effective_dispatch,
            crate::DispatchIndex::Linear
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_knob_accessors_pass_through_the_config() {
        // Old-style field access (now routed through the embedded
        // `SchedulerConfig` by Deref) and the deprecated accessor
        // methods must observe the same knobs.
        let mut p = FlowParams::new(0.5);
        p.dispatch = crate::DispatchIndex::Linear;
        p.backend = QueueBackend::Naive;
        p.shards = 3;
        assert_eq!(p.dispatch(), crate::DispatchIndex::Linear);
        assert_eq!(p.backend(), QueueBackend::Naive);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.events(), p.config.events);
        assert_eq!(p.capacity_index(), p.config.capacity_index);
        // The embedded config is the single source of truth.
        assert_eq!(p.config.dispatch, crate::DispatchIndex::Linear);
    }

    #[test]
    fn arrival_at_completion_instant_sees_idle_machine() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![2.0])
            .job(2.0, vec![1.0])
            .build()
            .unwrap();
        let out = run_eps(&inst, 0.5);
        assert_valid(&inst, &out);
        // j1 arrives exactly when j0 completes: it must start at 2.0,
        // and j0's Rule-1 counter must not have been incremented (it
        // already completed).
        assert!(out.log.fate(JobId(0)).is_completed());
        let e1 = out.log.fate(JobId(1)).execution().unwrap();
        assert_eq!(e1.start, 2.0);
    }
}
