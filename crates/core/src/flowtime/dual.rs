//! Dual-variable accounting for §2 and the runtime feasibility audit
//! (Lemma 4).
//!
//! The analysis assigns:
//!
//! * `λ_j = ε/(1+ε) · min_i λ_ij` at each arrival (never changed);
//! * `β_i(t) = ε/(1+ε)² · (|U_i(t)| + |V_i(t)|)` where `U_i` is the
//!   pending set and `V_i` holds jobs that exited (completed or
//!   rejected) but are not yet *definitively finished* at their `C̃_j`.
//!
//! A job contributes to `|U_i(t)| + |V_i(t)|` exactly on `[r_j, C̃_j)`,
//! so the per-machine count is reconstructible from the per-job triple
//! `(r_j, machine, C̃_j)` — no time-stepped simulation needed.
//!
//! **Why this matters:** by weak LP duality, any feasible dual solution
//! lower-bounds the LP optimum, and the paper's LP is within a factor 2
//! of the optimal non-preemptive schedule. So
//!
//! ```text
//! OPT ≥ (Σ_j λ_j − Σ_i ∫ β_i(t) dt) / 2
//! ```
//!
//! whenever the dual is feasible — which [`check_dual_feasibility`]
//! verifies constraint-by-constraint. Every competitive ratio reported
//! by the experiment harness uses this certified denominator.

use osr_model::Instance;

use crate::epsilon::Thresholds;

/// The dual solution built during a §2 run.
#[derive(Debug, Clone)]
pub struct FlowDual {
    /// `ε` and derived scales.
    pub thresholds: Thresholds,
    /// `λ_j` per job (already scaled by `ε/(1+ε)`).
    pub lambda: Vec<f64>,
    /// Release times `r_j` (copied for self-containedness).
    pub release: Vec<f64>,
    /// Exit times `C_j` (completion or rejection).
    pub exit: Vec<f64>,
    /// Definitive-finish times `C̃_j ≥ C_j`.
    pub c_tilde: Vec<f64>,
    /// Machine each job was dispatched to.
    pub machine_of: Vec<u32>,
}

impl FlowDual {
    /// Assembles the record (called by the scheduler at end of run).
    pub fn assemble(
        thresholds: Thresholds,
        lambda: Vec<f64>,
        release: Vec<f64>,
        exit: Vec<f64>,
        c_tilde: Vec<f64>,
        machine_of: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(lambda.len(), release.len());
        debug_assert_eq!(lambda.len(), exit.len());
        debug_assert_eq!(lambda.len(), c_tilde.len());
        debug_assert_eq!(lambda.len(), machine_of.len());
        FlowDual {
            thresholds,
            lambda,
            release,
            exit,
            c_tilde,
            machine_of,
        }
    }

    /// `Σ_j λ_j`.
    pub fn sum_lambda(&self) -> f64 {
        self.lambda.iter().sum()
    }

    /// `Σ_i ∫ β_i(t) dt = ε/(1+ε)² · Σ_j (C̃_j − r_j)`.
    pub fn beta_integral(&self) -> f64 {
        let span: f64 = self
            .c_tilde
            .iter()
            .zip(&self.release)
            .map(|(ct, r)| ct - r)
            .sum();
        self.thresholds.beta_scale() * span
    }

    /// Dual objective `Σλ_j − Σ∫β_i`.
    pub fn objective(&self) -> f64 {
        self.sum_lambda() - self.beta_integral()
    }

    /// Certified lower bound on the optimal non-preemptive total
    /// flow-time: `max(objective/2, Σ_j min_i p_ij)` would require the
    /// instance; this returns `max(objective/2, 0)` — callers combine
    /// it with instance-level trivial bounds via
    /// `osr_baselines::lower_bounds`.
    pub fn opt_lower_bound(&self) -> f64 {
        (self.objective() / 2.0).max(0.0)
    }

    /// Number of jobs covered.
    pub fn len(&self) -> usize {
        self.lambda.len()
    }

    /// Whether the record is empty.
    pub fn is_empty(&self) -> bool {
        self.lambda.is_empty()
    }
}

/// One violated dual constraint found by the audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualViolation {
    /// Job index of the constraint.
    pub job: u32,
    /// Machine index of the constraint.
    pub machine: u32,
    /// Time at which it is violated.
    pub t: f64,
    /// By how much (negative slack).
    pub margin: f64,
}

/// Result of auditing the dual constraints.
#[derive(Debug, Clone)]
pub struct DualAudit {
    /// Number of `(j, i, t)` constraint evaluations performed.
    pub constraints_checked: usize,
    /// All violations (empty ⇒ dual certified feasible).
    pub violations: Vec<DualViolation>,
    /// Smallest slack seen (how tight Lemma 4 is in practice).
    pub min_margin: f64,
}

impl DualAudit {
    /// Whether every checked constraint held.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively audits the dual constraint of §2,
///
/// ```text
/// λ_j / p_ij − β_i(t) ≤ (t − r_j)/p_ij + 1     ∀ i, j, t ≥ r_j,
/// ```
///
/// at every point where it could first fail: `t = r_j` and every
/// downward step of `β_i` (the right side grows linearly inside each
/// step interval, so interval left edges are the worst cases — the
/// check is exact, not sampled).
///
/// `max_jobs` caps the number of (smallest-index) jobs audited to keep
/// the `O(n·m·n)` cost manageable in experiments.
pub fn check_dual_feasibility(instance: &Instance, dual: &FlowDual, max_jobs: usize) -> DualAudit {
    let m = instance.machines();
    let n = dual.len().min(max_jobs);
    let beta_scale = dual.thresholds.beta_scale();

    // Per-machine β step function: +1 at r_j, −1 at C̃_j for each job
    // dispatched there. Sorted event lists of (time, delta). Jobs that
    // were never dispatched (ineligible everywhere, machine sentinel
    // `u32::MAX`) carry λ_j = 0 and contribute to no machine's β.
    let mut events: Vec<Vec<(f64, i64)>> = vec![Vec::new(); m];
    for j in 0..dual.len() {
        let mi = dual.machine_of[j] as usize;
        if mi >= m {
            continue;
        }
        events[mi].push((dual.release[j], 1));
        events[mi].push((dual.c_tilde[j], -1));
    }
    for ev in &mut events {
        ev.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }
    // Collapse to (time, count-after) breakpoints.
    let mut steps: Vec<Vec<(f64, i64)>> = Vec::with_capacity(m);
    for ev in &events {
        let mut acc = 0i64;
        let mut out: Vec<(f64, i64)> = Vec::with_capacity(ev.len());
        for &(t, d) in ev {
            acc += d;
            if let Some(last) = out.last_mut() {
                if last.0 == t {
                    last.1 = acc;
                    continue;
                }
            }
            out.push((t, acc));
        }
        steps.push(out);
    }

    let count_at = |mi: usize, t: f64| -> i64 {
        let s = &steps[mi];
        let pos = s.partition_point(|&(et, _)| et <= t);
        if pos == 0 {
            0
        } else {
            s[pos - 1].1
        }
    };

    let mut audit = DualAudit {
        constraints_checked: 0,
        violations: Vec::new(),
        min_margin: f64::INFINITY,
    };

    for j in 0..n {
        let job = instance.job(osr_model::JobId(j as u32));
        let rj = dual.release[j];
        let lam = dual.lambda[j];
        for mi in 0..m {
            let p = job.sizes[mi];
            if !p.is_finite() {
                continue;
            }
            // Candidate worst times: r_j itself plus every β breakpoint
            // at or after r_j on this machine.
            let s = &steps[mi];
            let from = s.partition_point(|&(et, _)| et < rj);
            let candidates = std::iter::once(rj).chain(s[from..].iter().map(|&(t, _)| t));
            for t in candidates {
                let beta = beta_scale * count_at(mi, t) as f64;
                let margin = (t - rj) / p + 1.0 + beta - lam / p;
                audit.constraints_checked += 1;
                if margin < audit.min_margin {
                    audit.min_margin = margin;
                }
                if margin < -1e-7 {
                    audit.violations.push(DualViolation {
                        job: j as u32,
                        machine: mi as u32,
                        t,
                        margin,
                    });
                }
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtime::{FlowParams, FlowScheduler};
    use osr_model::{InstanceBuilder, InstanceKind};

    fn random_ish_instance(n: usize, m: usize, seed: u64) -> Instance {
        let mut b = InstanceBuilder::new(m, InstanceKind::FlowTime);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 100) as f64 / 50.0;
            let sizes: Vec<f64> = (0..m).map(|_| 0.5 + (next() % 40) as f64 / 4.0).collect();
            b = b.job(t, sizes);
        }
        b.build().unwrap()
    }

    #[test]
    fn dual_is_feasible_on_random_instances() {
        for seed in [1u64, 7, 42] {
            let inst = random_ish_instance(120, 3, seed);
            for eps in [0.2, 0.5, 1.0] {
                let out = FlowScheduler::new(FlowParams::new(eps)).unwrap().run(&inst);
                let audit = check_dual_feasibility(&inst, &out.dual, usize::MAX);
                assert!(
                    audit.is_feasible(),
                    "seed={seed} eps={eps}: {} violations, worst {:?}",
                    audit.violations.len(),
                    audit.violations.first()
                );
                assert!(audit.constraints_checked > 0);
            }
        }
    }

    #[test]
    fn dual_feasible_on_single_machine_burst() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..80 {
            b = b.job(0.001 * k as f64, vec![1.0 + (k % 9) as f64]);
        }
        let inst = b.build().unwrap();
        let out = FlowScheduler::with_eps(0.25).unwrap().run(&inst);
        let audit = check_dual_feasibility(&inst, &out.dual, usize::MAX);
        assert!(audit.is_feasible(), "{:?}", audit.violations.first());
    }

    #[test]
    fn objective_components_consistent() {
        let inst = random_ish_instance(60, 2, 5);
        let out = FlowScheduler::with_eps(0.5).unwrap().run(&inst);
        let d = &out.dual;
        assert!((d.objective() - (d.sum_lambda() - d.beta_integral())).abs() < 1e-9);
        assert!(d.opt_lower_bound() >= 0.0);
        assert_eq!(d.len(), inst.len());
    }

    #[test]
    fn audit_detects_a_corrupted_dual() {
        let inst = random_ish_instance(40, 2, 9);
        let out = FlowScheduler::with_eps(0.5).unwrap().run(&inst);
        let mut bad = out.dual.clone();
        // Inflate one λ_j beyond any feasible value.
        bad.lambda[0] += 1e6;
        let audit = check_dual_feasibility(&inst, &bad, usize::MAX);
        assert!(!audit.is_feasible());
        assert_eq!(audit.violations[0].job, 0);
    }

    #[test]
    fn max_jobs_caps_the_audit() {
        let inst = random_ish_instance(50, 2, 3);
        let out = FlowScheduler::with_eps(0.5).unwrap().run(&inst);
        let full = check_dual_feasibility(&inst, &out.dual, usize::MAX);
        let capped = check_dual_feasibility(&inst, &out.dual, 5);
        assert!(capped.constraints_checked < full.constraints_checked);
    }
}
