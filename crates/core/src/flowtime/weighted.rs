//! **Extension beyond the paper**: weighted total flow-time with
//! rejections (no energy term).
//!
//! The paper proves Theorem 1 for *unweighted* flow-time (§2) and
//! handles weights only together with energy under speed scaling (§3).
//! The natural gap — weighted flow-time on unit-speed machines — is a
//! direct hybrid of the two algorithms, implemented here as an
//! experimental feature:
//!
//! * local order: **highest density first** (`δ_ij = w_j/p_ij`, the
//!   weighted analogue of SPT; ties earliest release) — from §3;
//! * dispatch: the unit-speed specialization of §3's `λ_ij`:
//!
//!   ```text
//!   λ_ij = w_j·p_ij/ε + w_j·Σ_{ℓ⪯j} p_iℓ + (Σ_{ℓ≻j} w_ℓ)·p_ij
//!   ```
//!
//! * **Rule 1 (weighted)** — reject the running job `k` when the weight
//!   dispatched during its run exceeds `w_k/ε` — from §3;
//! * **Rule 2 (weighted)** — per machine, after every `(1+⌈1/ε⌉)·w̄`
//!   of dispatched weight (`w̄` = running mean job weight), reject the
//!   **lowest-density** pending job — the weighted analogue of "largest
//!   processing time".
//!
//! **No competitive-ratio proof accompanies this variant.** Unlike the
//! §2/§3 rules, the Rule-2 cadence does not by itself bound the
//! rejected weight, so the implementation additionally *enforces* a
//! hard `2ε` rejected-weight budget: a rule may only fire while
//! `rejected weight ≤ 2ε · (arrived weight)`. Experiments treat it as a
//! well-behaved heuristic; its value is letting users study the paper's
//! mechanism on weighted workloads.

use osr_dstruct::{MachineIndex, MachineStats};
use osr_model::{
    Execution, FinishedLog, Instance, Job, JobId, MachineId, OnlineSet, PartialRun, RejectReason,
    Rejection, ScheduleLog,
};
use osr_sim::{
    CapacityChange, CapacityPlan, DecisionEvent, DecisionTrace, EventBackend, EventQueue,
    OnlineScheduler,
};

use crate::dispatch::{self, CapacityIndexMode, DispatchIndex, PRUNED_MIN_MACHINES};

/// Parameters for the weighted variant.
#[derive(Debug, Clone, Copy)]
pub struct WeightedFlowParams {
    /// Budget parameter `ε ∈ (0, 1]`; enforced rejected-weight cap is
    /// `2ε` of arrived weight.
    pub eps: f64,
    /// Dispatch argmin strategy (identical results; `Linear` ablation).
    pub dispatch: DispatchIndex,
    /// Completion event-queue backend.
    pub events: EventBackend,
    /// How the pruned index tracks capacity churn (results are
    /// identical either way; `Rebuild` is the audit oracle).
    pub capacity_index: CapacityIndexMode,
}

impl WeightedFlowParams {
    /// Standard parameters for `eps` (process-default dispatch).
    pub fn new(eps: f64) -> Self {
        WeightedFlowParams {
            eps,
            dispatch: dispatch::default_dispatch_index(),
            events: EventBackend::default(),
            capacity_index: dispatch::default_capacity_index(),
        }
    }
}

/// Outcome of a weighted run.
#[derive(Debug)]
pub struct WeightedFlowOutcome {
    /// The schedule log.
    pub log: FinishedLog,
    /// Decision trail.
    pub trace: DecisionTrace,
    /// The dispatch strategy that actually ran (`Pruned` degrades to
    /// `Linear` below [`PRUNED_MIN_MACHINES`]; label ablations by
    /// this).
    pub effective_dispatch: DispatchIndex,
}

/// The weighted flow-time scheduler (extension; see module docs).
#[derive(Debug, Clone)]
pub struct WeightedFlowScheduler {
    params: WeightedFlowParams,
    capacity: CapacityPlan,
}

#[derive(Debug, Clone, Copy)]
struct PendW {
    job: JobId,
    p: f64,
    w: f64,
    d: f64,
    r: f64,
}

impl PendW {
    /// Higher density first; ties earliest release then id.
    fn precedes(&self, other: &PendW) -> bool {
        match self.d.total_cmp(&other.d) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.r.total_cmp(&other.r) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => self.job < other.job,
            },
        }
    }
}

struct RunningW {
    job: JobId,
    start: f64,
    completion: f64,
    v: f64,
    w: f64,
}

struct MachW {
    /// Sorted by `precedes` (densest first).
    pending: Vec<PendW>,
    running: Option<RunningW>,
    /// Rule-2 weight counter.
    c: f64,
    /// Cached Σ of pending weights (reset to exactly 0 when the queue
    /// empties so incremental `±` drift cannot accumulate across busy
    /// periods).
    pend_wsum: f64,
    /// Lazy lower bound on the smallest pending size: tightened on
    /// insert, left alone on removal (a stale-low value only loosens
    /// the dispatch bound, never breaks it), reset to `∞` on empty.
    pend_min_p: f64,
}

impl MachW {
    fn insert(&mut self, e: PendW) {
        let pos = self.pending.partition_point(|x| x.precedes(&e));
        self.pending.insert(pos, e);
        self.pend_wsum += e.w;
        self.pend_min_p = self.pend_min_p.min(e.p);
    }

    fn remove_at(&mut self, pos: usize) -> PendW {
        let e = self.pending.remove(pos);
        self.pend_wsum -= e.w;
        if self.pending.is_empty() {
            self.pend_wsum = 0.0;
            self.pend_min_p = f64::INFINITY;
        }
        e
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            count: self.pending.len() as u64,
            wsum: self.pend_wsum,
            min_size: self.pend_min_p,
        }
    }
}

impl WeightedFlowScheduler {
    /// Validates `eps` and constructs the scheduler.
    pub fn new(params: WeightedFlowParams) -> Result<Self, String> {
        if !(params.eps > 0.0 && params.eps <= 1.0 && params.eps.is_finite()) {
            return Err(format!("eps must be in (0, 1], got {}", params.eps));
        }
        Ok(WeightedFlowScheduler {
            params,
            capacity: CapacityPlan::empty(),
        })
    }

    /// Convenience constructor.
    pub fn with_eps(eps: f64) -> Result<Self, String> {
        Self::new(WeightedFlowParams::new(eps))
    }

    /// Attaches a capacity plan (builder-style): the run replays the
    /// plan's join/drain/crash stream alongside arrivals, re-dispatching
    /// the jobs of draining/crashing machines.
    pub fn with_capacity(mut self, plan: CapacityPlan) -> Self {
        self.capacity = plan;
        self
    }

    fn lambda_ij(&self, ms: &MachW, p: f64, w: f64, r: f64, id: JobId) -> f64 {
        let probe = PendW {
            job: id,
            p,
            w,
            d: w / p,
            r,
        };
        let mut lam = w * p / self.params.eps;
        let mut pre_p = 0.0;
        let mut succ_w = 0.0;
        for e in &ms.pending {
            if e.precedes(&probe) {
                pre_p += e.p;
            } else {
                succ_w += e.w;
            }
        }
        lam += w * (pre_p + p);
        lam += succ_w * p;
        lam
    }

    /// Runs the variant over `instance`.
    pub fn run(&self, instance: &Instance) -> WeightedFlowOutcome {
        let eps = self.params.eps;
        let m = instance.machines();
        let n = instance.len();
        let jobs = instance.jobs();
        let mut machines: Vec<MachW> = (0..m)
            .map(|_| MachW {
                pending: Vec::new(),
                running: None,
                c: 0.0,
                pend_wsum: 0.0,
                pend_min_p: f64::INFINITY,
            })
            .collect();
        let mut log = ScheduleLog::new(m, n);
        let mut trace = DecisionTrace::new();
        let mut completions: EventQueue<(usize, JobId)> =
            EventQueue::with_backend(self.params.events);
        // Elastic pool: replay the capacity plan's join/drain/crash
        // stream alongside arrivals (completions < capacity < arrivals
        // at equal instants).
        let plan = &self.capacity;
        plan.check_machines(m)
            .expect("capacity plan fits the instance");
        let cap_events = plan.events();
        let mut next_cap = 0usize;
        let mut online = plan.initial_online(m);

        let mut dindex = (self.params.dispatch == DispatchIndex::Pruned
            && m >= PRUNED_MIN_MACHINES)
            .then(|| dispatch::rebuild_capacity_index(m, &online, |_| MachineStats::EMPTY));
        let sync_index = |dindex: &mut Option<MachineIndex>, mi: usize, ms: &MachW| {
            if let Some(ix) = dindex {
                ix.update(mi, ms.stats());
            }
        };

        // Hard budget enforcement (extension-specific; see module
        // docs). Only *dispatchable* arrivals count: an ineligible job
        // never enters any queue and must not widen the budget.
        let mut arrived_weight = 0.0f64;
        let mut dispatched_jobs = 0usize;
        let mut rejected_weight = 0.0f64;
        let rule2_threshold = |mean_w: f64| (1.0 + (1.0 / eps).ceil()) * mean_w;

        let start_next = |mi: usize,
                          t: f64,
                          machines: &mut Vec<MachW>,
                          completions: &mut EventQueue<(usize, JobId)>,
                          trace: &mut DecisionTrace,
                          dindex: &mut Option<MachineIndex>,
                          online: &OnlineSet| {
            let ms = &mut machines[mi];
            if ms.running.is_some() || ms.pending.is_empty() || !online.is_online(mi) {
                return;
            }
            let e = ms.remove_at(0);
            let completion = t + e.p;
            ms.running = Some(RunningW {
                job: e.job,
                start: t,
                completion,
                v: 0.0,
                w: e.w,
            });
            completions.push(completion, (mi, e.job));
            trace.push(DecisionEvent::Start {
                time: t,
                job: e.job,
                machine: MachineId(mi as u32),
                speed: 1.0,
            });
            sync_index(dindex, mi, &machines[mi]);
        };

        // Dispatches (or re-dispatches) `job` at `t` through the density
        // argmin and runs both weighted rules. Re-dispatches skip the
        // arrived-weight accounting — the job's weight was counted at
        // its first arrival, and double-counting would widen the 2ε
        // rejected-weight budget.
        #[allow(clippy::too_many_arguments)]
        let place_job = |job: &Job,
                         t: f64,
                         redispatch: bool,
                         lost_partial: Option<PartialRun>,
                         machines: &mut Vec<MachW>,
                         log: &mut ScheduleLog,
                         trace: &mut DecisionTrace,
                         completions: &mut EventQueue<(usize, JobId)>,
                         dindex: &mut Option<MachineIndex>,
                         online: &OnlineSet,
                         arrived_weight: &mut f64,
                         dispatched_jobs: &mut usize,
                         rejected_weight: &mut f64| {
            // `p̂` comes precomputed from the model (no per-arrival
            // O(m) rescan of `job.sizes`); an everywhere-ineligible job
            // short-circuits straight to the rejection below.
            let best: Option<(usize, f64)> = if !job.has_eligible() {
                None
            } else {
                match dindex.as_mut() {
                    Some(ix) => {
                        let ph = dispatch::p_hat_view(job);
                        let w = job.weight;
                        ix.search_masked(
                            dispatch::mask_view(job.elig()),
                            |s, lo, span| {
                                dispatch::weighted_lambda_bound(
                                    s.min_count,
                                    s.min_wsum,
                                    s.min_size,
                                    ph.for_range(lo, span),
                                    w,
                                    eps,
                                )
                            },
                            |mi, s| {
                                let p = job.sizes[mi];
                                if p.is_finite() {
                                    dispatch::weighted_lambda_bound(
                                        s.count, s.wsum, s.min_size, p, w, eps,
                                    )
                                } else {
                                    f64::INFINITY
                                }
                            },
                            |mi| {
                                let p = job.sizes[mi];
                                p.is_finite()
                                    .then(|| self.lambda_ij(&machines[mi], p, w, t, job.id))
                            },
                        )
                    }
                    None => {
                        let mut best: Option<(usize, f64)> = None;
                        for (mi, ms) in machines.iter().enumerate() {
                            let p = job.sizes[mi];
                            if !p.is_finite() || !online.is_online(mi) {
                                continue;
                            }
                            let lam = self.lambda_ij(ms, p, job.weight, t, job.id);
                            if best.is_none_or(|(_, bl)| lam < bl) {
                                best = Some((mi, lam));
                            }
                        }
                        best
                    }
                }
            };
            let Some((mi, lam)) = best else {
                // Eligible nowhere (or nowhere still in the pool): drop
                // the job instead of aborting. Crucially *before* the
                // budget accounting below — an undispatchable job must
                // not inflate `arrived_weight` (that would let the rules
                // reject extra servable weight past the documented 2ε
                // cap). A machine-lost drop likewise leaves
                // `rejected_weight` alone: it counts against no rule.
                if job.has_eligible() {
                    osr_sim::reject_machine_lost(log, trace, job.id, t, lost_partial);
                } else {
                    osr_sim::reject_ineligible(log, trace, job.id, t);
                }
                return;
            };
            if !redispatch {
                *arrived_weight += job.weight;
                *dispatched_jobs += 1;
            }
            let mean_weight = *arrived_weight / (*dispatched_jobs).max(1) as f64;
            trace.push(DecisionEvent::Dispatch {
                time: t,
                job: job.id,
                machine: MachineId(mi as u32),
                lambda: lam,
                candidates: m,
            });
            let p_ij = job.sizes[mi];
            machines[mi].insert(PendW {
                job: job.id,
                p: p_ij,
                w: job.weight,
                d: job.weight / p_ij,
                r: t,
            });
            sync_index(dindex, mi, &machines[mi]);

            let budget_ok = |rej: f64, arr: f64, extra: f64| rej + extra <= 2.0 * eps * arr + 1e-12;

            // Weighted Rule 1.
            if let Some(run) = machines[mi].running.as_mut() {
                run.v += job.weight;
                if run.v > run.w / eps && budget_ok(*rejected_weight, *arrived_weight, run.w) {
                    let run = machines[mi].running.take().expect("present");
                    *rejected_weight += run.w;
                    log.reject(
                        run.job,
                        Rejection {
                            time: t,
                            reason: RejectReason::RuleOne,
                            partial: Some(PartialRun {
                                machine: MachineId(mi as u32),
                                start: run.start,
                                end: t,
                                speed: 1.0,
                            }),
                        },
                    );
                    trace.push(DecisionEvent::Reject {
                        time: t,
                        job: run.job,
                        machine: MachineId(mi as u32),
                        reason: RejectReason::RuleOne,
                        counter: run.v,
                    });
                }
            }

            // Weighted Rule 2: fire on weight cadence; victim = lowest
            // density pending.
            machines[mi].c += job.weight;
            let threshold = rule2_threshold(mean_weight);
            if machines[mi].c >= threshold {
                machines[mi].c = 0.0;
                // Victim is the last in the density order.
                if let Some(victim) = machines[mi].pending.last().copied() {
                    if budget_ok(*rejected_weight, *arrived_weight, victim.w) {
                        let last = machines[mi].pending.len() - 1;
                        machines[mi].remove_at(last);
                        sync_index(dindex, mi, &machines[mi]);
                        *rejected_weight += victim.w;
                        log.reject(
                            victim.job,
                            Rejection {
                                time: t,
                                reason: RejectReason::RuleTwo,
                                partial: None,
                            },
                        );
                        trace.push(DecisionEvent::Reject {
                            time: t,
                            job: victim.job,
                            machine: MachineId(mi as u32),
                            reason: RejectReason::RuleTwo,
                            counter: threshold,
                        });
                    }
                }
            }

            start_next(mi, t, machines, completions, trace, dindex, online);
        };

        let mut next_arrival = 0usize;
        loop {
            let ta = jobs.get(next_arrival).map(|j| j.release);
            let tk = cap_events.get(next_cap).map(|e| e.time);
            let tc = completions.peek_time();
            let inf = f64::INFINITY;
            let do_completion =
                tc.is_some_and(|c| c <= ta.unwrap_or(inf) && c <= tk.unwrap_or(inf));
            let do_capacity = !do_completion && tk.is_some_and(|k| k <= ta.unwrap_or(inf));
            if !do_completion && !do_capacity && ta.is_none() {
                break;
            }

            if do_completion {
                let (t, (mi, job)) = completions.pop().expect("peeked");
                // Completion-time check too: a crash victim re-dispatched
                // onto the same machine must not match its stale event.
                let matches = machines[mi]
                    .running
                    .as_ref()
                    .is_some_and(|r| r.job == job && r.completion == t);
                if !matches {
                    continue;
                }
                let r = machines[mi].running.take().expect("matched");
                log.complete(
                    job,
                    Execution {
                        machine: MachineId(mi as u32),
                        start: r.start,
                        completion: r.completion,
                        speed: 1.0,
                    },
                );
                trace.push(DecisionEvent::Complete {
                    time: t,
                    job,
                    machine: MachineId(mi as u32),
                });
                start_next(
                    mi,
                    t,
                    &mut machines,
                    &mut completions,
                    &mut trace,
                    &mut dindex,
                    &online,
                );
                continue;
            }

            if do_capacity {
                let ev = cap_events[next_cap];
                next_cap += 1;
                let t = ev.time;
                let mi = ev.machine.idx();
                match ev.change {
                    CapacityChange::Join => {
                        if online.set_online(mi) {
                            dispatch::sync_capacity_index(
                                &mut dindex,
                                self.params.capacity_index,
                                ev.change,
                                mi,
                                m,
                                &online,
                                |i| machines[i].stats(),
                            );
                        }
                    }
                    CapacityChange::Drain | CapacityChange::Crash => {
                        if online.set_offline(mi) {
                            let mut victims: Vec<(JobId, Option<PartialRun>)> = Vec::new();
                            if ev.change == CapacityChange::Crash {
                                if let Some(run) = machines[mi].running.take() {
                                    victims.push((
                                        run.job,
                                        Some(PartialRun {
                                            machine: MachineId(mi as u32),
                                            start: run.start,
                                            end: t,
                                            speed: 1.0,
                                        }),
                                    ));
                                }
                            }
                            while !machines[mi].pending.is_empty() {
                                let e = machines[mi].remove_at(0);
                                victims.push((e.job, None));
                            }
                            victims.sort_by_key(|&(id, _)| id);
                            dispatch::sync_capacity_index(
                                &mut dindex,
                                self.params.capacity_index,
                                ev.change,
                                mi,
                                m,
                                &online,
                                |i| machines[i].stats(),
                            );
                            for (vid, partial) in victims {
                                log.note_redispatch(vid);
                                place_job(
                                    instance.job(vid),
                                    t,
                                    true,
                                    partial,
                                    &mut machines,
                                    &mut log,
                                    &mut trace,
                                    &mut completions,
                                    &mut dindex,
                                    &online,
                                    &mut arrived_weight,
                                    &mut dispatched_jobs,
                                    &mut rejected_weight,
                                );
                            }
                        }
                    }
                }
                continue;
            }

            let job = &jobs[next_arrival];
            next_arrival += 1;
            place_job(
                job,
                job.release,
                false,
                None,
                &mut machines,
                &mut log,
                &mut trace,
                &mut completions,
                &mut dindex,
                &online,
                &mut arrived_weight,
                &mut dispatched_jobs,
                &mut rejected_weight,
            );
        }

        WeightedFlowOutcome {
            log: log.finish().expect("all decided"),
            trace,
            effective_dispatch: dispatch::effective_dispatch_index(self.params.dispatch, m),
        }
    }
}

impl OnlineScheduler for WeightedFlowScheduler {
    fn name(&self) -> String {
        format!("wflow-ext(eps={})", self.params.eps)
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, Metrics};
    use osr_sim::{validate_log, ValidationConfig};

    fn weighted_instance(n: usize, m: usize, seed: u64) -> Instance {
        let mut b = InstanceBuilder::new(m, InstanceKind::FlowEnergy);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 100) as f64 / 40.0;
            let w = 1.0 + (next() % 9) as f64;
            let sizes: Vec<f64> = (0..m).map(|_| 0.5 + (next() % 25) as f64 / 2.0).collect();
            b = b.weighted_job(t, w, sizes);
        }
        b.build().unwrap()
    }

    fn assert_valid(inst: &Instance, out: &WeightedFlowOutcome) {
        let rep = validate_log(inst, &out.log, &ValidationConfig::flow_time());
        assert!(rep.is_valid(), "{:?}", rep.errors.first());
    }

    #[test]
    fn produces_valid_schedules() {
        let inst = weighted_instance(300, 3, 5);
        for eps in [0.1, 0.3, 0.8] {
            let out = WeightedFlowScheduler::with_eps(eps).unwrap().run(&inst);
            assert_valid(&inst, &out);
        }
    }

    #[test]
    fn enforced_weight_budget_holds() {
        let inst = weighted_instance(400, 2, 9);
        let total = inst.total_weight();
        for eps in [0.1, 0.25, 0.5] {
            let out = WeightedFlowScheduler::with_eps(eps).unwrap().run(&inst);
            let m = Metrics::compute(&inst, &out.log, 2.0);
            assert!(
                m.flow.rejected_weight <= 2.0 * eps * total + 1e-9,
                "eps={eps}: {} > {}",
                m.flow.rejected_weight,
                2.0 * eps * total
            );
        }
    }

    #[test]
    fn wspt_order_respected() {
        // Dense (heavy, short) job must start before a light long one.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 1.0, vec![10.0]) // starts first (alone)
            .weighted_job(0.1, 1.0, vec![5.0]) // density 0.2
            .weighted_job(0.2, 9.0, vec![3.0]) // density 3.0
            .build()
            .unwrap();
        let out = WeightedFlowScheduler::with_eps(0.9).unwrap().run(&inst);
        assert_valid(&inst, &out);
        let s1 = out.log.fate(JobId(1)).execution().map(|e| e.start);
        let s2 = out.log.fate(JobId(2)).execution().map(|e| e.start);
        if let (Some(s1), Some(s2)) = (s1, s2) {
            assert!(s2 < s1, "denser job must start first");
        }
    }

    #[test]
    fn beats_unweighted_variant_on_weighted_objective() {
        // Heavy short jobs stuck behind light long ones: the weighted
        // variant should achieve lower weighted flow than the paper's
        // unweighted algorithm (which ignores weights entirely).
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowEnergy);
        for k in 0..60 {
            let t = k as f64 * 0.5;
            if k % 3 == 0 {
                b = b.weighted_job(t, 1.0, vec![20.0]);
            } else {
                b = b.weighted_job(t, 10.0, vec![1.0]);
            }
        }
        let inst = b.build().unwrap();
        let wout = WeightedFlowScheduler::with_eps(0.25).unwrap().run(&inst);
        assert_valid(&inst, &wout);
        let w_obj = Metrics::compute(&inst, &wout.log, 2.0)
            .flow
            .weighted_flow_all;

        let uout = crate::FlowScheduler::with_eps(0.25).unwrap().run(&inst);
        let u_obj = Metrics::compute(&inst, &uout.log, 2.0)
            .flow
            .weighted_flow_all;
        assert!(
            w_obj < u_obj,
            "weighted variant {w_obj} should beat unweighted {u_obj} on weighted flow"
        );
    }

    #[test]
    fn rejections_target_low_density_jobs() {
        let inst = weighted_instance(300, 1, 21);
        let out = WeightedFlowScheduler::with_eps(0.2).unwrap().run(&inst);
        // Mean density of rejected jobs must not exceed the mean density
        // of all jobs (the rules prefer low-density victims; Rule 1 can
        // catch anything that was running, so compare means, loosely).
        let dens = |id: JobId| {
            let j = inst.job(id);
            j.weight / j.min_size()
        };
        let all_mean: f64 = inst
            .jobs()
            .iter()
            .map(|j| j.weight / j.min_size())
            .sum::<f64>()
            / inst.len() as f64;
        let rejected: Vec<f64> = out.log.rejections().map(|(id, _)| dens(id)).collect();
        if rejected.len() >= 5 {
            let rej_mean: f64 = rejected.iter().sum::<f64>() / rejected.len() as f64;
            assert!(
                rej_mean <= all_mean * 1.5,
                "rejections should skew low-density: {rej_mean} vs {all_mean}"
            );
        }
    }

    #[test]
    fn invalid_eps_rejected() {
        assert!(WeightedFlowScheduler::with_eps(0.0).is_err());
        assert!(WeightedFlowScheduler::with_eps(1.5).is_err());
    }

    #[test]
    fn pruned_and_linear_dispatch_agree() {
        let inst = weighted_instance(400, 10, 33);
        for eps in [0.15, 0.4] {
            let mut pp = WeightedFlowParams::new(eps);
            pp.dispatch = crate::DispatchIndex::Pruned;
            let mut pl = WeightedFlowParams::new(eps);
            pl.dispatch = crate::DispatchIndex::Linear;
            let a = WeightedFlowScheduler::new(pp).unwrap().run(&inst);
            let b = WeightedFlowScheduler::new(pl).unwrap().run(&inst);
            assert_eq!(a.log, b.log, "eps={eps}");
        }
    }

    #[test]
    fn everywhere_ineligible_job_is_rejected_not_a_panic() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 2.0, vec![1.0, 2.0])
            .weighted_job(0.5, 5.0, vec![f64::INFINITY, f64::INFINITY])
            .build()
            .unwrap();
        let out = WeightedFlowScheduler::with_eps(0.3).unwrap().run(&inst);
        assert_valid(&inst, &out);
        let rej = out.log.fate(JobId(1)).rejection().expect("dropped");
        assert_eq!(rej.reason, RejectReason::Ineligible);
        assert!(out.log.fate(JobId(0)).is_completed());
    }
}
