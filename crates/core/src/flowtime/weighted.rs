//! **Extension beyond the paper**: weighted total flow-time with
//! rejections (no energy term).
//!
//! The paper proves Theorem 1 for *unweighted* flow-time (§2) and
//! handles weights only together with energy under speed scaling (§3).
//! The natural gap — weighted flow-time on unit-speed machines — is a
//! direct hybrid of the two algorithms, implemented here as an
//! experimental feature:
//!
//! * local order: **highest density first** (`δ_ij = w_j/p_ij`, the
//!   weighted analogue of SPT; ties earliest release) — from §3;
//! * dispatch: the unit-speed specialization of §3's `λ_ij`:
//!
//!   ```text
//!   λ_ij = w_j·p_ij/ε + w_j·Σ_{ℓ⪯j} p_iℓ + (Σ_{ℓ≻j} w_ℓ)·p_ij
//!   ```
//!
//! * **Rule 1 (weighted)** — reject the running job `k` when the weight
//!   dispatched during its run exceeds `w_k/ε` — from §3;
//! * **Rule 2 (weighted)** — per machine, after every `(1+⌈1/ε⌉)·w̄`
//!   of dispatched weight (`w̄` = running mean job weight), reject the
//!   **lowest-density** pending job — the weighted analogue of "largest
//!   processing time".
//!
//! **No competitive-ratio proof accompanies this variant.** Unlike the
//! §2/§3 rules, the Rule-2 cadence does not by itself bound the
//! rejected weight, so the implementation additionally *enforces* a
//! hard `2ε` rejected-weight budget: a rule may only fire while
//! `rejected weight ≤ 2ε · (arrived weight)`. Experiments treat it as a
//! well-behaved heuristic; its value is letting users study the paper's
//! mechanism on weighted workloads.

use std::sync::Mutex;

use osr_dstruct::{MachineIndex, MachineStats, ShardMaskScratch};
use osr_model::{
    Execution, FinishedLog, Instance, Job, JobId, MachineId, OnlineSet, PartialRun, RejectReason,
    Rejection,
};
use osr_sim::{
    driver::{EventPolicy, LogOp, Placement, ShardCtx, ShardProbe},
    CapacityChange, CapacityPlan, DecisionEvent, DecisionTrace, EventBackend, OnlineScheduler,
};

use crate::config::SchedulerConfig;
use crate::dispatch::{self, CapacityIndexMode, DispatchIndex, PRUNED_MIN_MACHINES};

/// Parameters for the weighted variant.
///
/// The runtime knobs live in the embedded [`SchedulerConfig`]
/// (`params.config`); the struct derefs to it, so `params.dispatch`
/// etc. keep working as plain field accesses. The `backend` knob is
/// inert here (the weighted queues are density-sorted `Vec`s), and
/// because this variant's dispatch reads the global rejection budget,
/// every arrival is a barrier (`serial_arrivals`) — the `shards` knob
/// only parallelizes completion drains.
#[derive(Debug, Clone, Copy)]
pub struct WeightedFlowParams {
    /// Budget parameter `ε ∈ (0, 1]`; enforced rejected-weight cap is
    /// `2ε` of arrived weight.
    pub eps: f64,
    /// Shared runtime knobs (see [`SchedulerConfig`]).
    pub config: SchedulerConfig,
}

impl std::ops::Deref for WeightedFlowParams {
    type Target = SchedulerConfig;
    fn deref(&self) -> &SchedulerConfig {
        &self.config
    }
}

impl std::ops::DerefMut for WeightedFlowParams {
    fn deref_mut(&mut self) -> &mut SchedulerConfig {
        &mut self.config
    }
}

impl WeightedFlowParams {
    /// Standard parameters for `eps` (process-default runtime knobs).
    pub fn new(eps: f64) -> Self {
        WeightedFlowParams {
            eps,
            config: SchedulerConfig::default(),
        }
    }

    /// The dispatch-strategy knob.
    #[deprecated(note = "read `params.dispatch` (via the embedded `config`) instead")]
    pub fn dispatch(&self) -> DispatchIndex {
        self.config.dispatch
    }

    /// The event-queue backend knob.
    #[deprecated(note = "read `params.events` (via the embedded `config`) instead")]
    pub fn events(&self) -> EventBackend {
        self.config.events
    }

    /// The capacity-index mode knob.
    #[deprecated(note = "read `params.capacity_index` (via the embedded `config`) instead")]
    pub fn capacity_index(&self) -> CapacityIndexMode {
        self.config.capacity_index
    }

    /// The requested driver shard count.
    #[deprecated(note = "read `params.shards` (via the embedded `config`) instead")]
    pub fn shards(&self) -> usize {
        self.config.shards
    }
}

/// Outcome of a weighted run.
#[derive(Debug)]
pub struct WeightedFlowOutcome {
    /// The schedule log.
    pub log: FinishedLog,
    /// Decision trail.
    pub trace: DecisionTrace,
    /// The dispatch strategy that actually ran (`Pruned` degrades to
    /// `Linear` below [`PRUNED_MIN_MACHINES`]; label ablations by
    /// this).
    pub effective_dispatch: DispatchIndex,
    /// The driver shard count that actually ran (requests clamp to the
    /// rack count; `1` = the serial oracle path).
    pub effective_shards: usize,
}

/// The weighted flow-time scheduler (extension; see module docs).
#[derive(Debug, Clone)]
pub struct WeightedFlowScheduler {
    params: WeightedFlowParams,
    capacity: CapacityPlan,
}

#[derive(Debug, Clone, Copy)]
struct PendW {
    job: JobId,
    p: f64,
    w: f64,
    d: f64,
    r: f64,
}

impl PendW {
    /// Higher density first; ties earliest release then id.
    fn precedes(&self, other: &PendW) -> bool {
        match self.d.total_cmp(&other.d) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.r.total_cmp(&other.r) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => self.job < other.job,
            },
        }
    }
}

struct RunningW {
    job: JobId,
    start: f64,
    completion: f64,
    v: f64,
    w: f64,
}

struct MachW {
    /// Sorted by `precedes` (densest first).
    pending: Vec<PendW>,
    running: Option<RunningW>,
    /// Rule-2 weight counter.
    c: f64,
    /// Cached Σ of pending weights (reset to exactly 0 when the queue
    /// empties so incremental `±` drift cannot accumulate across busy
    /// periods).
    pend_wsum: f64,
    /// Lazy lower bound on the smallest pending size: tightened on
    /// insert, left alone on removal (a stale-low value only loosens
    /// the dispatch bound, never breaks it), reset to `∞` on empty.
    pend_min_p: f64,
}

impl MachW {
    fn insert(&mut self, e: PendW) {
        let pos = self.pending.partition_point(|x| x.precedes(&e));
        self.pending.insert(pos, e);
        self.pend_wsum += e.w;
        self.pend_min_p = self.pend_min_p.min(e.p);
    }

    fn remove_at(&mut self, pos: usize) -> PendW {
        let e = self.pending.remove(pos);
        self.pend_wsum -= e.w;
        if self.pending.is_empty() {
            self.pend_wsum = 0.0;
            self.pend_min_p = f64::INFINITY;
        }
        e
    }

    fn stats(&self) -> MachineStats {
        MachineStats {
            count: self.pending.len() as u64,
            wsum: self.pend_wsum,
            min_size: self.pend_min_p,
        }
    }
}

impl WeightedFlowScheduler {
    /// Validates `eps` and constructs the scheduler.
    pub fn new(params: WeightedFlowParams) -> Result<Self, String> {
        if !(params.eps > 0.0 && params.eps <= 1.0 && params.eps.is_finite()) {
            return Err(format!("eps must be in (0, 1], got {}", params.eps));
        }
        Ok(WeightedFlowScheduler {
            params,
            capacity: CapacityPlan::empty(),
        })
    }

    /// Convenience constructor.
    pub fn with_eps(eps: f64) -> Result<Self, String> {
        Self::new(WeightedFlowParams::new(eps))
    }

    /// Attaches a capacity plan (builder-style): the run replays the
    /// plan's join/drain/crash stream alongside arrivals, re-dispatching
    /// the jobs of draining/crashing machines.
    pub fn with_capacity(mut self, plan: CapacityPlan) -> Self {
        self.capacity = plan;
        self
    }

    /// Runs the variant over `instance`.
    ///
    /// The event loop lives in [`osr_sim::driver`]; this method supplies
    /// the weighted policy (`WeightedPolicy`). Because dispatch reads
    /// the global rejection budget, the policy opts into
    /// `serial_arrivals` — every arrival is a barrier, and sharding only
    /// parallelizes completion drains.
    pub fn run(&self, instance: &Instance) -> WeightedFlowOutcome {
        let m = instance.machines();
        let jobs = instance.jobs();
        let policy = WeightedPolicy {
            eps: self.params.eps,
            params: self.params,
            m,
            budget: Mutex::new(WeightBudget::default()),
        };
        let (log, trace, effective_shards) = osr_sim::drive(
            &policy,
            jobs,
            m,
            &self.capacity,
            self.params.events,
            self.params.shards,
            &mut (),
        );
        WeightedFlowOutcome {
            log: log.finish().expect("all decided"),
            trace,
            effective_dispatch: dispatch::effective_dispatch_index(self.params.dispatch, m),
            effective_shards,
        }
    }
}

/// Hard budget enforcement (extension-specific; see module docs). Only
/// *dispatchable* arrivals count: an ineligible job never enters any
/// queue and must not widen the budget.
#[derive(Debug, Default)]
pub(crate) struct WeightBudget {
    arrived_weight: f64,
    dispatched_jobs: usize,
    rejected_weight: f64,
}

impl WeightBudget {
    /// A rule may only fire while staying within the hard `2ε`
    /// rejected-weight cap.
    fn allows(&self, eps: f64, extra: f64) -> bool {
        self.rejected_weight + extra <= 2.0 * eps * self.arrived_weight + 1e-12
    }
}

/// One driver shard's weighted state: locally indexed machines plus its
/// slice of the pruned dispatch index.
pub(crate) struct WeightedShard {
    base: usize,
    len: usize,
    machines: Vec<MachW>,
    dindex: Option<MachineIndex>,
    scratch: ShardMaskScratch,
}

/// The weighted variant as an [`EventPolicy`]. The global rejection
/// budget sits behind a mutex, but it is only touched from `dispatch`
/// — and `serial_arrivals` guarantees dispatches run serially in the
/// driver's phase 2, so the lock is never contended. `pub(crate)` with
/// open fields so [`crate::session`] can host the (job-independent,
/// state-carrying) policy across serve-mode arrivals.
pub(crate) struct WeightedPolicy {
    pub(crate) eps: f64,
    pub(crate) params: WeightedFlowParams,
    /// Global machine count (pruned-index crossover is defined on the
    /// whole pool).
    pub(crate) m: usize,
    pub(crate) budget: Mutex<WeightBudget>,
}

impl WeightedPolicy {
    fn lambda_ij(&self, ms: &MachW, p: f64, w: f64, r: f64, id: JobId) -> f64 {
        let probe = PendW {
            job: id,
            p,
            w,
            d: w / p,
            r,
        };
        let mut lam = w * p / self.eps;
        let mut pre_p = 0.0;
        let mut succ_w = 0.0;
        for e in &ms.pending {
            if e.precedes(&probe) {
                pre_p += e.p;
            } else {
                succ_w += e.w;
            }
        }
        lam += w * (pre_p + p);
        lam += succ_w * p;
        lam
    }

    fn sync_index(dindex: &mut Option<MachineIndex>, li: usize, ms: &MachW) {
        if let Some(ix) = dindex {
            ix.update(li, ms.stats());
        }
    }

    fn start_next(&self, sh: &mut WeightedShard, cx: &mut ShardCtx<'_>, li: usize, t: f64) {
        let mi = sh.base + li;
        let ms = &mut sh.machines[li];
        if ms.running.is_some() || ms.pending.is_empty() || !cx.online.is_online(mi) {
            return;
        }
        let e = ms.remove_at(0);
        let completion = t + e.p;
        ms.running = Some(RunningW {
            job: e.job,
            start: t,
            completion,
            v: 0.0,
            w: e.w,
        });
        cx.completions.push(completion, (mi, e.job));
        cx.io.trace.push(DecisionEvent::Start {
            time: t,
            job: e.job,
            machine: MachineId(mi as u32),
            speed: 1.0,
        });
        Self::sync_index(&mut sh.dindex, li, &sh.machines[li]);
    }
}

impl EventPolicy for WeightedPolicy {
    type Shard = WeightedShard;
    type Global = ();

    fn serial_arrivals(&self) -> bool {
        true
    }

    fn make_shard(&self, base: usize, len: usize, online: &OnlineSet) -> WeightedShard {
        let dindex = (self.params.dispatch == DispatchIndex::Pruned
            && self.m >= PRUNED_MIN_MACHINES)
            .then(|| {
                dispatch::rebuild_shard_index(
                    base,
                    len,
                    online,
                    self.params.propagation,
                    self.params.kernels,
                    |_| MachineStats::EMPTY,
                )
            });
        WeightedShard {
            base,
            len,
            machines: (0..len)
                .map(|_| MachW {
                    pending: Vec::new(),
                    running: None,
                    c: 0.0,
                    pend_wsum: 0.0,
                    pend_min_p: f64::INFINITY,
                })
                .collect(),
            dindex,
            scratch: ShardMaskScratch::new(),
        }
    }

    fn candidate(
        &self,
        sh: &mut WeightedShard,
        job: &Job,
        t: f64,
        online: &OnlineSet,
    ) -> Option<(usize, f64)> {
        // `p̂` comes precomputed from the model (no per-arrival O(m)
        // rescan of `job.sizes`).
        let WeightedShard {
            base,
            len,
            machines,
            dindex,
            scratch,
        } = sh;
        let (base, len) = (*base, *len);
        let eps = self.eps;
        let best = match dindex.as_mut() {
            Some(ix) => {
                let ph = dispatch::p_hat_view(job);
                let w = job.weight;
                let mask = scratch.rebase(dispatch::mask_view(job.elig()), base, len);
                ix.search_masked_rows(
                    mask,
                    |s, lo, span| {
                        dispatch::weighted_lambda_bound(
                            s.min_count,
                            s.min_wsum,
                            s.min_size,
                            ph.for_range(base + lo, span),
                            w,
                            eps,
                        )
                    },
                    // Leaf-row-slice form: the scalar bound below, one
                    // lane per stat row (bit-identical by construction).
                    |lo, rows, out| {
                        for k in 0..osr_dstruct::kernel::LANES {
                            let p = job.sizes[base + lo + k];
                            out[k] = if p.is_finite() {
                                dispatch::weighted_lambda_bound(
                                    rows[k].count,
                                    rows[k].wsum,
                                    rows[k].min_size,
                                    p,
                                    w,
                                    eps,
                                )
                            } else {
                                f64::INFINITY
                            };
                        }
                    },
                    |li, s| {
                        let p = job.sizes[base + li];
                        if p.is_finite() {
                            dispatch::weighted_lambda_bound(s.count, s.wsum, s.min_size, p, w, eps)
                        } else {
                            f64::INFINITY
                        }
                    },
                    |li| {
                        let p = job.sizes[base + li];
                        p.is_finite()
                            .then(|| self.lambda_ij(&machines[li], p, w, t, job.id))
                    },
                )
            }
            None => {
                let mut best: Option<(usize, f64)> = None;
                for (li, ms) in machines.iter().enumerate().take(len) {
                    let p = job.sizes[base + li];
                    if !p.is_finite() || !online.is_online(base + li) {
                        continue;
                    }
                    let lam = self.lambda_ij(ms, p, job.weight, t, job.id);
                    if best.is_none_or(|(_, bl)| lam < bl) {
                        best = Some((li, lam));
                    }
                }
                best
            }
        };
        best.map(|(li, lam)| (base + li, lam))
    }

    fn dispatch(&self, sh: &mut WeightedShard, cx: &mut ShardCtx<'_>, job: &Job, p: &Placement) {
        let Placement {
            time: t,
            machine: mi,
            redispatch,
            ..
        } = *p;
        // Re-dispatches skip the arrived-weight accounting — the job's
        // weight was counted at its first arrival, and double-counting
        // would widen the 2ε rejected-weight budget.
        let mut budget = self.budget.lock().expect("budget lock");
        if !redispatch {
            budget.arrived_weight += job.weight;
            budget.dispatched_jobs += 1;
        }
        let mean_weight = budget.arrived_weight / budget.dispatched_jobs.max(1) as f64;
        let li = mi - sh.base;
        let p_ij = job.sizes[mi];
        sh.machines[li].insert(PendW {
            job: job.id,
            p: p_ij,
            w: job.weight,
            d: job.weight / p_ij,
            r: t,
        });
        Self::sync_index(&mut sh.dindex, li, &sh.machines[li]);

        // Weighted Rule 1.
        if let Some(run) = sh.machines[li].running.as_mut() {
            run.v += job.weight;
            if run.v > run.w / self.eps && budget.allows(self.eps, run.w) {
                let run = sh.machines[li].running.take().expect("present");
                budget.rejected_weight += run.w;
                cx.io.ops.push(LogOp::Reject(
                    run.job,
                    Rejection {
                        time: t,
                        reason: RejectReason::RuleOne,
                        partial: Some(PartialRun {
                            machine: MachineId(mi as u32),
                            start: run.start,
                            end: t,
                            speed: 1.0,
                        }),
                    },
                ));
                cx.io.trace.push(DecisionEvent::Reject {
                    time: t,
                    job: run.job,
                    machine: MachineId(mi as u32),
                    reason: RejectReason::RuleOne,
                    counter: run.v,
                });
            }
        }

        // Weighted Rule 2: fire on weight cadence; victim = lowest
        // density pending.
        sh.machines[li].c += job.weight;
        let threshold = (1.0 + (1.0 / self.eps).ceil()) * mean_weight;
        if sh.machines[li].c >= threshold {
            sh.machines[li].c = 0.0;
            // Victim is the last in the density order.
            if let Some(victim) = sh.machines[li].pending.last().copied() {
                if budget.allows(self.eps, victim.w) {
                    let last = sh.machines[li].pending.len() - 1;
                    sh.machines[li].remove_at(last);
                    Self::sync_index(&mut sh.dindex, li, &sh.machines[li]);
                    budget.rejected_weight += victim.w;
                    cx.io.ops.push(LogOp::Reject(
                        victim.job,
                        Rejection {
                            time: t,
                            reason: RejectReason::RuleTwo,
                            partial: None,
                        },
                    ));
                    cx.io.trace.push(DecisionEvent::Reject {
                        time: t,
                        job: victim.job,
                        machine: MachineId(mi as u32),
                        reason: RejectReason::RuleTwo,
                        counter: threshold,
                    });
                }
            }
        }
        drop(budget);

        self.start_next(sh, cx, li, t);
    }

    fn note_unplaced(&self, _sh: &mut WeightedShard, _job: &Job, _t: f64) {
        // An undispatchable job must not inflate `arrived_weight` (that
        // would let the rules reject extra servable weight past the
        // documented 2ε cap); a machine-lost drop likewise leaves
        // `rejected_weight` alone: it counts against no rule.
    }

    fn complete(
        &self,
        sh: &mut WeightedShard,
        cx: &mut ShardCtx<'_>,
        mi: usize,
        job: JobId,
        t: f64,
    ) {
        let li = mi - sh.base;
        // Completion-time check too: a crash victim re-dispatched onto
        // the same machine must not match its stale event.
        let matches = sh.machines[li]
            .running
            .as_ref()
            .is_some_and(|r| r.job == job && r.completion == t);
        if !matches {
            return;
        }
        let r = sh.machines[li].running.take().expect("matched");
        cx.io.ops.push(LogOp::Complete(
            job,
            Execution {
                machine: MachineId(mi as u32),
                start: r.start,
                completion: r.completion,
                speed: 1.0,
            },
        ));
        cx.io.trace.push(DecisionEvent::Complete {
            time: t,
            job,
            machine: MachineId(mi as u32),
        });
        self.start_next(sh, cx, li, t);
    }

    fn capacity_sync(
        &self,
        sh: &mut WeightedShard,
        change: CapacityChange,
        mi: usize,
        online: &OnlineSet,
    ) {
        let WeightedShard {
            base,
            len,
            machines,
            dindex,
            ..
        } = sh;
        let base = *base;
        dispatch::sync_shard_index(
            dindex,
            self.params.capacity_index,
            change,
            mi,
            base,
            *len,
            online,
            self.params.propagation,
            self.params.kernels,
            |i| machines[i - base].stats(),
        );
    }

    fn evict(
        &self,
        sh: &mut WeightedShard,
        _cx: &mut ShardCtx<'_>,
        change: CapacityChange,
        mi: usize,
        t: f64,
        victims: &mut Vec<(JobId, Option<PartialRun>)>,
    ) {
        let li = mi - sh.base;
        if change == CapacityChange::Crash {
            if let Some(run) = sh.machines[li].running.take() {
                victims.push((
                    run.job,
                    Some(PartialRun {
                        machine: MachineId(mi as u32),
                        start: run.start,
                        end: t,
                        speed: 1.0,
                    }),
                ));
            }
        }
        while !sh.machines[li].pending.is_empty() {
            let e = sh.machines[li].remove_at(0);
            victims.push((e.job, None));
        }
    }

    fn drain(&self, _sh: &mut WeightedShard, _global: &mut ()) {}

    fn probe(&self, sh: &WeightedShard) -> ShardProbe {
        ShardProbe {
            queued: sh.machines.iter().map(|ms| ms.pending.len()).sum(),
            running: sh.machines.iter().filter(|ms| ms.running.is_some()).count(),
            index: sh.dindex.as_ref().map(|ix| ix.index_stats()),
        }
    }

    fn probe_machines(&self, sh: &WeightedShard, out: &mut Vec<(usize, usize)>) {
        out.extend(
            sh.machines
                .iter()
                .enumerate()
                .map(|(li, ms)| (sh.base + li, ms.pending.len())),
        );
    }
}

impl OnlineScheduler for WeightedFlowScheduler {
    fn name(&self) -> String {
        format!("wflow-ext(eps={})", self.params.eps)
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, Metrics};
    use osr_sim::{validate_log, ValidationConfig};

    fn weighted_instance(n: usize, m: usize, seed: u64) -> Instance {
        let mut b = InstanceBuilder::new(m, InstanceKind::FlowEnergy);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 100) as f64 / 40.0;
            let w = 1.0 + (next() % 9) as f64;
            let sizes: Vec<f64> = (0..m).map(|_| 0.5 + (next() % 25) as f64 / 2.0).collect();
            b = b.weighted_job(t, w, sizes);
        }
        b.build().unwrap()
    }

    fn assert_valid(inst: &Instance, out: &WeightedFlowOutcome) {
        let rep = validate_log(inst, &out.log, &ValidationConfig::flow_time());
        assert!(rep.is_valid(), "{:?}", rep.errors.first());
    }

    #[test]
    fn produces_valid_schedules() {
        let inst = weighted_instance(300, 3, 5);
        for eps in [0.1, 0.3, 0.8] {
            let out = WeightedFlowScheduler::with_eps(eps).unwrap().run(&inst);
            assert_valid(&inst, &out);
        }
    }

    #[test]
    fn enforced_weight_budget_holds() {
        let inst = weighted_instance(400, 2, 9);
        let total = inst.total_weight();
        for eps in [0.1, 0.25, 0.5] {
            let out = WeightedFlowScheduler::with_eps(eps).unwrap().run(&inst);
            let m = Metrics::compute(&inst, &out.log, 2.0);
            assert!(
                m.flow.rejected_weight <= 2.0 * eps * total + 1e-9,
                "eps={eps}: {} > {}",
                m.flow.rejected_weight,
                2.0 * eps * total
            );
        }
    }

    #[test]
    fn wspt_order_respected() {
        // Dense (heavy, short) job must start before a light long one.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 1.0, vec![10.0]) // starts first (alone)
            .weighted_job(0.1, 1.0, vec![5.0]) // density 0.2
            .weighted_job(0.2, 9.0, vec![3.0]) // density 3.0
            .build()
            .unwrap();
        let out = WeightedFlowScheduler::with_eps(0.9).unwrap().run(&inst);
        assert_valid(&inst, &out);
        let s1 = out.log.fate(JobId(1)).execution().map(|e| e.start);
        let s2 = out.log.fate(JobId(2)).execution().map(|e| e.start);
        if let (Some(s1), Some(s2)) = (s1, s2) {
            assert!(s2 < s1, "denser job must start first");
        }
    }

    #[test]
    fn beats_unweighted_variant_on_weighted_objective() {
        // Heavy short jobs stuck behind light long ones: the weighted
        // variant should achieve lower weighted flow than the paper's
        // unweighted algorithm (which ignores weights entirely).
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowEnergy);
        for k in 0..60 {
            let t = k as f64 * 0.5;
            if k % 3 == 0 {
                b = b.weighted_job(t, 1.0, vec![20.0]);
            } else {
                b = b.weighted_job(t, 10.0, vec![1.0]);
            }
        }
        let inst = b.build().unwrap();
        let wout = WeightedFlowScheduler::with_eps(0.25).unwrap().run(&inst);
        assert_valid(&inst, &wout);
        let w_obj = Metrics::compute(&inst, &wout.log, 2.0)
            .flow
            .weighted_flow_all;

        let uout = crate::FlowScheduler::with_eps(0.25).unwrap().run(&inst);
        let u_obj = Metrics::compute(&inst, &uout.log, 2.0)
            .flow
            .weighted_flow_all;
        assert!(
            w_obj < u_obj,
            "weighted variant {w_obj} should beat unweighted {u_obj} on weighted flow"
        );
    }

    #[test]
    fn rejections_target_low_density_jobs() {
        let inst = weighted_instance(300, 1, 21);
        let out = WeightedFlowScheduler::with_eps(0.2).unwrap().run(&inst);
        // Mean density of rejected jobs must not exceed the mean density
        // of all jobs (the rules prefer low-density victims; Rule 1 can
        // catch anything that was running, so compare means, loosely).
        let dens = |id: JobId| {
            let j = inst.job(id);
            j.weight / j.min_size()
        };
        let all_mean: f64 = inst
            .jobs()
            .iter()
            .map(|j| j.weight / j.min_size())
            .sum::<f64>()
            / inst.len() as f64;
        let rejected: Vec<f64> = out.log.rejections().map(|(id, _)| dens(id)).collect();
        if rejected.len() >= 5 {
            let rej_mean: f64 = rejected.iter().sum::<f64>() / rejected.len() as f64;
            assert!(
                rej_mean <= all_mean * 1.5,
                "rejections should skew low-density: {rej_mean} vs {all_mean}"
            );
        }
    }

    #[test]
    fn invalid_eps_rejected() {
        assert!(WeightedFlowScheduler::with_eps(0.0).is_err());
        assert!(WeightedFlowScheduler::with_eps(1.5).is_err());
    }

    #[test]
    fn pruned_and_linear_dispatch_agree() {
        let inst = weighted_instance(400, 10, 33);
        for eps in [0.15, 0.4] {
            let mut pp = WeightedFlowParams::new(eps);
            pp.dispatch = crate::DispatchIndex::Pruned;
            let mut pl = WeightedFlowParams::new(eps);
            pl.dispatch = crate::DispatchIndex::Linear;
            let a = WeightedFlowScheduler::new(pp).unwrap().run(&inst);
            let b = WeightedFlowScheduler::new(pl).unwrap().run(&inst);
            assert_eq!(a.log, b.log, "eps={eps}");
        }
    }

    #[test]
    fn everywhere_ineligible_job_is_rejected_not_a_panic() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 2.0, vec![1.0, 2.0])
            .weighted_job(0.5, 5.0, vec![f64::INFINITY, f64::INFINITY])
            .build()
            .unwrap();
        let out = WeightedFlowScheduler::with_eps(0.3).unwrap().run(&inst);
        assert_valid(&inst, &out);
        let rej = out.log.fate(JobId(1)).rejection().expect("dropped");
        assert_eq!(rej.reason, RejectReason::Ineligible);
        assert!(out.log.fate(JobId(0)).is_completed());
    }
}
