//! Write-ahead event journal and crash recovery for serve sessions.
//!
//! The serve stack (PR 8) keeps every accepted arrival, capacity event,
//! and the clock in memory; a crash loses the run. Because the whole
//! stack is bit-deterministic under every runtime knob, durability is
//! recovery-by-replay: journal each accepted event *before* applying it
//! (write-ahead + fsync), and after a crash rebuild the session by
//! replaying the journal through the normal
//! [`ServeSession::arrive_batch`]/[`ServeSession::capacity`]/
//! [`ServeSession::advance`] path — the rebuilt [`FinishedLog`] is
//! byte-identical to an uninterrupted run.
//!
//! # Journal format
//!
//! An append-only text file. The first line is a header carrying a
//! config [`fingerprint`] (algorithm spec + machine count + initial
//! offline set — deliberately *not* the result-neutral runtime knobs,
//! so recovery may flip `--shards`/`--kernels` and stay byte-exact).
//! Every subsequent line is one event in the serve-script dialect plus
//! a trailing FNV-1a checksum token:
//!
//! ```text
//! #osr-journal v1 fp=00498c2a1f6d9e03
//! arrive 0 @0.125 w=1 2.5 inf 3 #h93ad2f6b01c44e17
//! drain 3 @1.5 #h5b0e9cc2d1a07f28
//! advance 7 #h0ac1...
//! ```
//!
//! The checksum exists because a torn tail can truncate a decimal
//! literal into a *different valid number* (`3.7310627019737903` →
//! `3.73`); newline-termination alone cannot catch that. A record is
//! valid iff it is newline-terminated **and** its checksum verifies;
//! on recovery, invalid records are accepted only as a suffix (the
//! torn tail — dropped and physically truncated, never half-applied),
//! while an invalid record *followed by a valid one* means mid-file
//! corruption and recovery refuses.
//!
//! # Snapshots
//!
//! Every `snap_every` appended records (and at [`ServeSession::finish`])
//! the journal writes a sidecar `<path>.snap` atomically
//! (temp + fsync + rename): the fingerprint, the accepted-record
//! high-water mark, and the stream cursor (`next_id`, clock). Scheduler
//! state is *not* serialized — replay is a full pass over the journal
//! (it costs what the original run cost) — so the snapshot's honest
//! role is an integrity cross-check: it proves the journal still holds
//! every record that was fsync'd as of the snapshot, and pins the
//! replay cursor at its high-water mark. A torn or corrupt snapshot is
//! ignored with a warning; a journal *shorter* than its snapshot claims
//! is a hard error (fsync'd data went missing).
//!
//! # Write-ahead ordering
//!
//! [`JournaledSession`] journals first, then applies. An event the
//! session then *rejects* (clock regression, bad operand) stays in the
//! journal: replaying it reproduces the identical rejection without
//! mutating state, so recovery stays exact. The one exception is a
//! batch failing at entry `k`: entries `k..` were never attempted, the
//! serve loop will re-feed `k+1..` one by one (journaling each), so the
//! journal is truncated back to entry `k` to keep it an exact mirror.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use osr_model::{FinishedLog, JobId};
use osr_sim::failpoint::{self, FailHit};
use osr_sim::CapacityChange;

use crate::session::{Arrival, ServeSession, ServeSnapshot};

/// FNV-1a 64-bit hash — the record and snapshot checksum. Not
/// cryptographic; it guards against torn writes and bit rot, not
/// adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The configuration fingerprint stored in journal headers and
/// snapshots: algorithm spec, machine-universe size, and the initial
/// offline set. Runtime knobs are excluded on purpose — they are
/// result-neutral, so a recovery may run with different
/// `--shards`/`--kernels`/… and still reproduce the log byte-exactly.
pub fn fingerprint(algo_spec: &str, machines: usize, offline: &[usize]) -> u64 {
    let mut s = format!("algo={algo_spec} machines={machines} offline=");
    for (i, m) in offline.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&m.to_string());
    }
    fnv1a(s.as_bytes())
}

/// One parsed journal record (the serve-script dialect, canonical
/// form: explicit `@T` on every event).
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `arrive <id> @T w=W <sizes…>` — the id is the session's dense
    /// cursor at append time (an apply-rejected arrive does not
    /// advance it, so a repeated id marks a rejected predecessor).
    Arrive {
        /// Dense job id expected by the stream cursor.
        id: usize,
        /// The arrival payload.
        arrival: Arrival,
    },
    /// `join|drain|crash <machine> @T`.
    Capacity {
        /// Pool change kind.
        change: CapacityChange,
        /// Machine index.
        machine: usize,
        /// Event time.
        time: f64,
    },
    /// `advance <T>`.
    Advance {
        /// Completion high-water time.
        time: f64,
    },
}

/// Encodes an arrive record body (no checksum suffix). `{}` formatting
/// is Rust's shortest round-trip for `f64`, so replay re-parses every
/// value bit-exactly; `inf` marks ineligible machines as in the wire
/// protocol.
pub fn encode_arrive(id: usize, release: f64, weight: f64, sizes: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("arrive {id} @{release} w={weight}");
    for sz in sizes {
        let _ = write!(s, " {sz}");
    }
    s
}

/// Encodes a capacity record body.
pub fn encode_capacity(change: CapacityChange, machine: usize, time: f64) -> String {
    let kind = match change {
        CapacityChange::Join => "join",
        CapacityChange::Drain => "drain",
        CapacityChange::Crash => "crash",
    };
    format!("{kind} {machine} @{time}")
}

/// Encodes an advance record body.
pub fn encode_advance(time: f64) -> String {
    format!("advance {time}")
}

fn parse_f64(tok: &str, what: &str) -> Result<f64, String> {
    tok.parse::<f64>()
        .map_err(|_| format!("journal record has bad {what} `{tok}`"))
}

/// Parses a record body (checksum already stripped and verified).
pub fn parse_record(body: &str) -> Result<Record, String> {
    let mut toks = body.split_whitespace();
    let cmd = toks.next().ok_or("empty journal record")?;
    match cmd {
        "arrive" => {
            let id_tok = toks.next().ok_or("arrive record missing id")?;
            let id: usize = id_tok
                .parse()
                .map_err(|_| format!("journal record has bad id `{id_tok}`"))?;
            let mut release = None;
            let mut weight = 1.0;
            let mut sizes = Vec::new();
            for t in toks {
                if let Some(v) = t.strip_prefix('@') {
                    release = Some(parse_f64(v, "release")?);
                } else if let Some(v) = t.strip_prefix("w=") {
                    weight = parse_f64(v, "weight")?;
                } else {
                    sizes.push(parse_f64(t, "size")?);
                }
            }
            let release = release.ok_or("arrive record missing @T")?;
            Ok(Record::Arrive {
                id,
                arrival: Arrival {
                    release,
                    weight,
                    sizes,
                },
            })
        }
        "join" | "drain" | "crash" => {
            let change = match cmd {
                "join" => CapacityChange::Join,
                "drain" => CapacityChange::Drain,
                _ => CapacityChange::Crash,
            };
            let m_tok = toks.next().ok_or("capacity record missing machine")?;
            let machine: usize = m_tok
                .parse()
                .map_err(|_| format!("journal record has bad machine `{m_tok}`"))?;
            let t_tok = toks.next().ok_or("capacity record missing @T")?;
            let time = parse_f64(t_tok.strip_prefix('@').unwrap_or(t_tok), "time")?;
            Ok(Record::Capacity {
                change,
                machine,
                time,
            })
        }
        "advance" => {
            let t_tok = toks.next().ok_or("advance record missing time")?;
            let time = parse_f64(t_tok.strip_prefix('@').unwrap_or(t_tok), "time")?;
            Ok(Record::Advance { time })
        }
        other => Err(format!("unknown journal record `{other}`")),
    }
}

const HEADER_PREFIX: &str = "#osr-journal v1 fp=";
const CHECK_SEP: &str = " #h";

fn raw_line(body: &str) -> String {
    format!("{body}{CHECK_SEP}{:016x}\n", fnv1a(body.as_bytes()))
}

/// Splits a complete (newline-stripped) journal line into its body if
/// the checksum token verifies.
fn validate_line(line: &[u8]) -> Option<&str> {
    let line = std::str::from_utf8(line).ok()?;
    let at = line.rfind(CHECK_SEP)?;
    let (body, suffix) = line.split_at(at);
    let hex = &suffix[CHECK_SEP.len()..];
    if hex.len() != 16 {
        return None;
    }
    let sum = u64::from_str_radix(hex, 16).ok()?;
    (sum == fnv1a(body.as_bytes())).then_some(body)
}

/// Cursor metadata from a `<path>.snap` sidecar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Appended-record high-water mark when the snapshot was taken.
    pub records: u64,
    /// The dense-id stream cursor at that point.
    pub next_id: usize,
    /// The event-time stream cursor at that point.
    pub clock: f64,
}

/// An open write-ahead journal: an append handle plus the bookkeeping
/// (logical length, record count, snapshot cadence) the
/// [`JournaledSession`] wrapper drives.
pub struct Journal {
    path: PathBuf,
    file: File,
    len: u64,
    records: u64,
    snap_every: u64,
    fingerprint: u64,
}

/// Everything [`Journal::recover`] reconstructs from disk.
pub struct Recovered {
    /// The journal, re-opened for appending past the valid tail.
    pub journal: Journal,
    /// Valid record bodies, in append order.
    pub records: Vec<String>,
    /// Torn/invalid tail records dropped (and physically truncated).
    pub dropped: usize,
    /// The snapshot sidecar, if present and intact.
    pub snapshot: Option<Snapshot>,
    /// Human-readable warnings (e.g. a corrupt snapshot was ignored)
    /// for the caller to route to stderr.
    pub warnings: Vec<String>,
}

impl Journal {
    fn io_err(path: &Path, what: &str, e: std::io::Error) -> String {
        format!("journal {}: {what}: {e}", path.display())
    }

    /// Creates a fresh journal at `path` (header + fsync). Refuses if
    /// a non-empty file already exists — that journal may be the only
    /// copy of a crashed run, so overwriting needs an explicit
    /// `--recover` or a manual delete.
    pub fn create(path: &Path, fingerprint: u64, snap_every: u64) -> Result<Journal, String> {
        if let Ok(meta) = std::fs::metadata(path) {
            if meta.len() > 0 {
                return Err(format!(
                    "journal {} already exists ({} bytes); pass --recover to resume it or delete it first",
                    path.display(),
                    meta.len()
                ));
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Self::io_err(path, "open", e))?;
        let header = format!("{HEADER_PREFIX}{fingerprint:016x}\n");
        file.write_all(header.as_bytes())
            .map_err(|e| Self::io_err(path, "write header", e))?;
        file.sync_data()
            .map_err(|e| Self::io_err(path, "fsync header", e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            len: header.len() as u64,
            records: 0,
            snap_every,
            fingerprint,
        })
    }

    /// Re-opens an existing journal for recovery: verifies the header
    /// fingerprint, validates every record line, drops (and physically
    /// truncates) a torn tail, and loads the snapshot sidecar. See the
    /// module docs for the exact validity and corruption rules.
    pub fn recover(path: &Path, fingerprint: u64, snap_every: u64) -> Result<Recovered, String> {
        let data = std::fs::read(path).map_err(|e| Self::io_err(path, "read", e))?;
        let mut warnings = Vec::new();

        // Header: everything up to the first newline. A file torn
        // inside its own header holds no records — start fresh.
        let (header_end, mut records, mut dropped) = match data.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let header = std::str::from_utf8(&data[..nl])
                    .map_err(|_| format!("journal {}: header is not UTF-8", path.display()))?;
                let hex = header
                    .strip_prefix(HEADER_PREFIX)
                    .ok_or_else(|| format!("journal {}: bad header `{header}`", path.display()))?;
                let fp = u64::from_str_radix(hex, 16)
                    .map_err(|_| format!("journal {}: bad header fingerprint", path.display()))?;
                if fp != fingerprint {
                    return Err(format!(
                        "journal {} was written for a different configuration \
                         (fingerprint {fp:016x}, this session is {fingerprint:016x}); \
                         algorithm/machines/offline must match the original run",
                        path.display()
                    ));
                }
                (nl + 1, Vec::new(), 0usize)
            }
            None => {
                if !data.is_empty() {
                    warnings.push(format!(
                        "journal {}: torn header ({} bytes, no newline) — treating as empty",
                        path.display(),
                        data.len()
                    ));
                }
                (0, Vec::new(), 0usize)
            }
        };

        // Record lines: the longest valid prefix survives; invalid
        // lines are legal only as the tail.
        let mut valid_end = header_end;
        let mut at = header_end;
        while at < data.len() {
            let Some(rel_nl) = data[at..].iter().position(|&b| b == b'\n') else {
                dropped += 1; // unterminated final fragment
                break;
            };
            let line = &data[at..at + rel_nl];
            at += rel_nl + 1;
            match validate_line(line) {
                Some(body) if dropped == 0 => {
                    records.push(body.to_string());
                    valid_end = at;
                }
                Some(_) => {
                    return Err(format!(
                        "journal {}: valid record after an invalid one (offset {at}) — \
                         mid-file corruption, refusing to recover",
                        path.display()
                    ));
                }
                None => dropped += 1,
            }
        }

        // Physically drop the torn tail (and rebuild a torn header)
        // before appending resumes.
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Self::io_err(path, "open", e))?;
        file.set_len(valid_end as u64)
            .map_err(|e| Self::io_err(path, "truncate torn tail", e))?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file,
            len: valid_end as u64,
            records: records.len() as u64,
            snap_every,
            fingerprint,
        };
        if header_end == 0 {
            let header = format!("{HEADER_PREFIX}{fingerprint:016x}\n");
            journal
                .file
                .write_all(header.as_bytes())
                .map_err(|e| Self::io_err(path, "write header", e))?;
            journal.len = header.len() as u64;
        }
        journal
            .file
            .sync_data()
            .map_err(|e| Self::io_err(path, "fsync", e))?;

        let snapshot = match Self::read_snapshot(&journal.snap_path(), fingerprint) {
            Ok(s) => s,
            Err(w) => {
                warnings.push(w);
                None
            }
        };
        if let Some(s) = &snapshot {
            if s.records > records.len() as u64 {
                return Err(format!(
                    "journal {} holds {} record(s) but its snapshot was taken at {} — \
                     fsync'd records went missing, refusing to recover",
                    path.display(),
                    records.len(),
                    s.records
                ));
            }
        }
        Ok(Recovered {
            journal,
            records,
            dropped,
            snapshot,
            warnings,
        })
    }

    fn snap_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(".snap");
        PathBuf::from(os)
    }

    fn read_snapshot(path: &Path, fingerprint: u64) -> Result<Option<Snapshot>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(format!(
                    "snapshot {}: unreadable ({e}) — ignoring",
                    path.display()
                ))
            }
        };
        let corrupt = |why: &str| {
            format!(
                "snapshot {}: {why} — ignoring (full journal replay covers it)",
                path.display()
            )
        };
        let Some(at) = text.rfind("#h") else {
            return Err(corrupt("no checksum"));
        };
        let (body, suffix) = text.split_at(at);
        let hex = suffix[2..].trim_end();
        let Ok(sum) = u64::from_str_radix(hex, 16) else {
            return Err(corrupt("bad checksum token"));
        };
        if hex.len() != 16 || sum != fnv1a(body.as_bytes()) {
            return Err(corrupt("checksum mismatch (torn write?)"));
        }
        let mut fp = None;
        let mut records = None;
        let mut next_id = None;
        let mut clock = None;
        for line in body.lines() {
            if let Some(hex) = line.strip_prefix("#osr-snap v1 fp=") {
                fp = u64::from_str_radix(hex, 16).ok();
            } else if let Some(v) = line.strip_prefix("records ") {
                records = v.parse::<u64>().ok();
            } else if let Some(v) = line.strip_prefix("next_id ") {
                next_id = v.parse::<usize>().ok();
            } else if let Some(v) = line.strip_prefix("clock ") {
                clock = v.parse::<f64>().ok();
            }
        }
        let (Some(fp), Some(records), Some(next_id), Some(clock)) = (fp, records, next_id, clock)
        else {
            return Err(corrupt("missing field"));
        };
        if fp != fingerprint {
            return Err(corrupt("fingerprint mismatch"));
        }
        Ok(Some(Snapshot {
            records,
            next_id,
            clock,
        }))
    }

    /// Appends one record (write, `pre-fsync` failpoint, fsync).
    /// Returns the byte offset the record starts at.
    pub fn append(&mut self, body: &str) -> Result<u64, String> {
        self.append_batch(std::slice::from_ref(&body.to_string()))
            .map(|offs| offs[0])
    }

    /// Appends a batch of records as one buffered write and **one**
    /// fsync (so batch ingest amortizes the sync cost). Returns each
    /// record's start offset, for [`Self::truncate_to`] on a partial
    /// batch failure.
    pub fn append_batch(&mut self, bodies: &[String]) -> Result<Vec<u64>, String> {
        if bodies.is_empty() {
            return Ok(Vec::new());
        }
        let mut offsets = Vec::with_capacity(bodies.len());
        let mut buf = String::new();
        let mut at = self.len;
        for body in bodies {
            offsets.push(at);
            let line = raw_line(body);
            at += line.len() as u64;
            buf.push_str(&line);
        }
        self.file
            .write_all(buf.as_bytes())
            .map_err(|e| Self::io_err(&self.path, "append", e))?;
        match failpoint::hit("pre-fsync") {
            FailHit::Proceed => {}
            FailHit::Error(e) => {
                // The records were written but will never be applied;
                // drop them so the journal mirrors the session exactly.
                self.file
                    .set_len(self.len)
                    .map_err(|te| Self::io_err(&self.path, "truncate", te))?;
                return Err(e);
            }
            FailHit::Torn => {
                // Manufacture the torn tail deterministically: rewind
                // to the last record's start, leave half of it, die.
                let last = *offsets.last().expect("non-empty batch");
                let line = raw_line(bodies.last().expect("non-empty batch"));
                let _ = self.file.set_len(last);
                let _ = self.file.write_all(&line.as_bytes()[..line.len() / 2]);
                let _ = self.file.sync_data();
                failpoint::kill_now("pre-fsync");
            }
        }
        self.file
            .sync_data()
            .map_err(|e| Self::io_err(&self.path, "fsync", e))?;
        self.len = at;
        self.records += bodies.len() as u64;
        Ok(offsets)
    }

    /// Truncates the journal back to `offset`, un-appending
    /// `records_dropped` records — used when a batch fails mid-way so
    /// the never-attempted suffix does not get journaled twice when
    /// the serve loop replays it serially.
    pub fn truncate_to(&mut self, offset: u64, records_dropped: u64) -> Result<(), String> {
        self.file
            .set_len(offset)
            .map_err(|e| Self::io_err(&self.path, "truncate", e))?;
        self.file
            .sync_data()
            .map_err(|e| Self::io_err(&self.path, "fsync", e))?;
        self.len = offset;
        self.records -= records_dropped.min(self.records);
        Ok(())
    }

    /// Records appended so far (including ones recovered from disk).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Fsyncs outstanding appends (appends already sync per call; this
    /// is the belt-and-braces flush at graceful shutdown).
    pub fn sync(&mut self) -> Result<(), String> {
        self.file
            .sync_data()
            .map_err(|e| Self::io_err(&self.path, "fsync", e))
    }

    /// Writes the snapshot sidecar if the cadence says so (every
    /// `snap_every` records; `0` disables periodic snapshots).
    pub fn maybe_snapshot(&mut self, next_id: usize, clock: f64) -> Result<(), String> {
        if self.snap_every > 0 && self.records > 0 && self.records.is_multiple_of(self.snap_every) {
            self.write_snapshot(next_id, clock)?;
        }
        Ok(())
    }

    /// Writes the snapshot sidecar atomically: temp file + fsync +
    /// rename, with the `snapshot-write` failpoint between the two (a
    /// kill there leaves the previous snapshot intact — recovery never
    /// observes a half-written sidecar through the rename path).
    pub fn write_snapshot(&mut self, next_id: usize, clock: f64) -> Result<(), String> {
        let body = format!(
            "#osr-snap v1 fp={:016x}\nrecords {}\nnext_id {next_id}\nclock {clock}\n",
            self.fingerprint, self.records
        );
        let text = format!("{body}#h{:016x}\n", fnv1a(body.as_bytes()));
        let snap = self.snap_path();
        let tmp = {
            let mut os = snap.as_os_str().to_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let write_all = |path: &Path, bytes: &[u8]| -> Result<(), String> {
            let mut f = File::create(path).map_err(|e| Self::io_err(path, "create", e))?;
            f.write_all(bytes)
                .map_err(|e| Self::io_err(path, "write", e))?;
            f.sync_data().map_err(|e| Self::io_err(path, "fsync", e))
        };
        write_all(&tmp, text.as_bytes())?;
        match failpoint::hit("snapshot-write") {
            FailHit::Proceed => {}
            FailHit::Error(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
            FailHit::Torn => {
                // Corrupt the *final* path on purpose: recovery must
                // ignore a torn sidecar and fall back to full replay.
                let half = &text.as_bytes()[..text.len() / 2];
                let _ = write_all(&snap, half);
                let _ = std::fs::remove_file(&tmp);
                failpoint::kill_now("snapshot-write");
            }
        }
        std::fs::rename(&tmp, &snap).map_err(|e| Self::io_err(&snap, "rename", e))
    }
}

/// What [`replay`] did: the recovered stream cursor plus audit counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// The dense-id cursor after replay (the next expected job id).
    pub next_id: usize,
    /// The event-time cursor after replay.
    pub clock: f64,
    /// Records the session rejected during replay. Rejections are
    /// deterministic re-runs of rejections the original run produced
    /// (they never mutate state), so they are counted, not fatal.
    pub rejected: usize,
}

/// Replays recovered record bodies into a fresh session through the
/// normal ingest path: runs of dense-id arrives go through
/// [`ServeSession::arrive_batch`], everything else through
/// [`ServeSession::capacity`]/[`ServeSession::advance`]. If `snapshot`
/// is given, the cursor is cross-checked when replay passes its
/// high-water record.
pub fn replay(
    sess: &mut dyn ServeSession,
    records: &[String],
    snapshot: Option<&Snapshot>,
) -> Result<ReplayOutcome, String> {
    let mut out = ReplayOutcome {
        next_id: 0,
        clock: 0.0,
        rejected: 0,
    };
    let boundary = snapshot.map(|s| s.records as usize);
    let mut pending: Vec<Arrival> = Vec::new();

    fn flush(sess: &mut dyn ServeSession, pending: &mut Vec<Arrival>, out: &mut ReplayOutcome) {
        let mut rest = std::mem::take(pending);
        while !rest.is_empty() {
            let releases: Vec<f64> = rest.iter().map(|a| a.release).collect();
            match sess.arrive_batch(rest.clone()) {
                Ok(()) => {
                    out.next_id += releases.len();
                    out.clock = *releases.last().expect("non-empty");
                    rest.clear();
                }
                Err((k, _e)) => {
                    // Entry k re-rejects exactly as in the original
                    // run (state untouched); the prefix landed.
                    out.next_id += k;
                    if k > 0 {
                        out.clock = releases[k - 1];
                    }
                    out.rejected += 1;
                    rest.drain(..=k);
                }
            }
        }
    }

    for (i, body) in records.iter().enumerate() {
        if boundary == Some(i) {
            flush(sess, &mut pending, &mut out);
            check_snapshot_cursor(snapshot.expect("boundary set"), &out, i)?;
        }
        let rec = parse_record(body)?;
        match rec {
            Record::Arrive { id, arrival } => {
                if id != out.next_id + pending.len() {
                    // Density break: the previous same-id record was an
                    // apply-rejected arrive. Resolve it, then re-check.
                    flush(sess, &mut pending, &mut out);
                    if id != out.next_id {
                        return Err(format!(
                            "journal record {i} carries id {id} but the replay cursor is {} — \
                             journal does not mirror a single session stream",
                            out.next_id
                        ));
                    }
                }
                pending.push(arrival);
            }
            Record::Capacity {
                change,
                machine,
                time,
            } => {
                flush(sess, &mut pending, &mut out);
                match sess.capacity(change, machine, time) {
                    Ok(()) => out.clock = time,
                    Err(_) => out.rejected += 1,
                }
            }
            Record::Advance { time } => {
                flush(sess, &mut pending, &mut out);
                match sess.advance(time) {
                    Ok(()) => out.clock = time,
                    Err(_) => out.rejected += 1,
                }
            }
        }
    }
    flush(sess, &mut pending, &mut out);
    if boundary == Some(records.len()) {
        check_snapshot_cursor(snapshot.expect("boundary set"), &out, records.len())?;
    }
    Ok(out)
}

fn check_snapshot_cursor(snap: &Snapshot, out: &ReplayOutcome, at: usize) -> Result<(), String> {
    // Exact f64 equality is correct here: replay is bit-deterministic,
    // so any drift means the journal and snapshot disagree.
    if snap.next_id != out.next_id || snap.clock != out.clock {
        return Err(format!(
            "snapshot cross-check failed after {at} record(s): snapshot cursor \
             (next_id {}, clock {}) vs replayed (next_id {}, clock {}) — \
             journal and snapshot disagree, refusing to recover",
            snap.next_id, snap.clock, out.next_id, out.clock
        ));
    }
    Ok(())
}

/// Summary of one recovery, for operator notices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Valid records replayed from the journal.
    pub records_replayed: usize,
    /// Torn-tail records dropped and truncated.
    pub dropped_torn: usize,
    /// Deterministic per-record rejections reproduced during replay.
    pub rejected_replays: usize,
    /// Whether a snapshot sidecar cross-checked the replay cursor.
    pub snapshot_checked: bool,
    /// The recovered dense-id cursor.
    pub next_id: usize,
    /// The recovered event-time cursor.
    pub clock: f64,
}

/// A [`ServeSession`] decorator that write-ahead journals every event
/// before delegating to the wrapped session. The serve loop holds one
/// of these exactly like a plain session; all durability (appends,
/// fsync, snapshots, batch truncation) lives here.
pub struct JournaledSession {
    inner: Box<dyn ServeSession>,
    journal: Journal,
    next_id: usize,
    clock: f64,
}

impl JournaledSession {
    /// Starts journaling a fresh session into a new journal at `path`.
    pub fn create(
        inner: Box<dyn ServeSession>,
        path: &Path,
        fingerprint: u64,
        snap_every: u64,
    ) -> Result<JournaledSession, String> {
        Ok(JournaledSession {
            inner,
            journal: Journal::create(path, fingerprint, snap_every)?,
            next_id: 0,
            clock: 0.0,
        })
    }

    /// Recovers a crashed run: validates and truncates the journal at
    /// `path`, replays every surviving record into `inner` (which must
    /// be freshly built with the fingerprinted configuration), and
    /// returns the journaling session positioned to accept the rest of
    /// the stream, plus the report and any non-fatal warnings.
    pub fn recover(
        inner: Box<dyn ServeSession>,
        path: &Path,
        fingerprint: u64,
        snap_every: u64,
    ) -> Result<(JournaledSession, RecoveryReport, Vec<String>), String> {
        let mut inner = inner;
        let rec = Journal::recover(path, fingerprint, snap_every)?;
        let outcome = replay(inner.as_mut(), &rec.records, rec.snapshot.as_ref())?;
        let report = RecoveryReport {
            records_replayed: rec.records.len(),
            dropped_torn: rec.dropped,
            rejected_replays: outcome.rejected,
            snapshot_checked: rec.snapshot.is_some(),
            next_id: outcome.next_id,
            clock: outcome.clock,
        };
        Ok((
            JournaledSession {
                inner,
                journal: rec.journal,
                next_id: outcome.next_id,
                clock: outcome.clock,
            },
            report,
            rec.warnings,
        ))
    }

    /// The stream cursor `(next_id, clock)` the serve loop should
    /// resume from (equals the replay outcome after recovery).
    pub fn cursor(&self) -> (usize, f64) {
        (self.next_id, self.clock)
    }
}

impl ServeSession for JournaledSession {
    fn algorithm(&self) -> &'static str {
        self.inner.algorithm()
    }

    fn machines(&self) -> usize {
        self.inner.machines()
    }

    fn arrive(&mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Result<JobId, String> {
        let body = encode_arrive(self.next_id, release, weight, &sizes);
        self.journal.append(&body)?;
        // Write-ahead: if the session rejects, the record stays —
        // replay reproduces the rejection without mutating state.
        let id = self.inner.arrive(release, weight, sizes)?;
        self.next_id += 1;
        self.clock = release;
        self.journal.maybe_snapshot(self.next_id, self.clock)?;
        Ok(id)
    }

    fn arrive_batch(&mut self, batch: Vec<Arrival>) -> Result<(), (usize, String)> {
        if batch.is_empty() {
            return self.inner.arrive_batch(batch);
        }
        let bodies: Vec<String> = batch
            .iter()
            .enumerate()
            .map(|(k, a)| encode_arrive(self.next_id + k, a.release, a.weight, &a.sizes))
            .collect();
        let offsets = self.journal.append_batch(&bodies).map_err(|e| (0, e))?;
        match failpoint::hit("mid-batch") {
            FailHit::Proceed => {}
            FailHit::Error(e) => {
                // Nothing was applied; un-journal the whole batch so
                // the serial re-feed does not double-journal it.
                let _ = self.journal.truncate_to(offsets[0], bodies.len() as u64);
                return Err((0, e));
            }
            FailHit::Torn => failpoint::kill_now("mid-batch"),
        }
        let releases: Vec<f64> = batch.iter().map(|a| a.release).collect();
        match self.inner.arrive_batch(batch) {
            Ok(()) => {
                self.next_id += releases.len();
                self.clock = *releases.last().expect("non-empty batch");
                self.journal
                    .maybe_snapshot(self.next_id, self.clock)
                    .map_err(|e| (releases.len(), e))?;
                Ok(())
            }
            Err((k, e)) => {
                // Entries k.. were never attempted; the serve loop will
                // replay k+1.. serially (journaling each), so drop them
                // here to keep the journal an exact mirror.
                if let Err(te) = self
                    .journal
                    .truncate_to(offsets[k], (bodies.len() - k) as u64)
                {
                    return Err((k, format!("{e} (and journal truncate failed: {te})")));
                }
                self.next_id += k;
                if k > 0 {
                    self.clock = releases[k - 1];
                }
                Err((k, e))
            }
        }
    }

    fn capacity(
        &mut self,
        change: CapacityChange,
        machine: usize,
        time: f64,
    ) -> Result<(), String> {
        let body = encode_capacity(change, machine, time);
        self.journal.append(&body)?;
        self.inner.capacity(change, machine, time)?;
        self.clock = time;
        self.journal.maybe_snapshot(self.next_id, self.clock)?;
        Ok(())
    }

    fn advance(&mut self, time: f64) -> Result<(), String> {
        let body = encode_advance(time);
        self.journal.append(&body)?;
        self.inner.advance(time)?;
        self.clock = time;
        self.journal.maybe_snapshot(self.next_id, self.clock)?;
        Ok(())
    }

    fn snapshot(&self) -> ServeSnapshot {
        self.inner.snapshot()
    }

    fn finish(self: Box<Self>) -> Result<FinishedLog, String> {
        let mut s = *self;
        // Graceful shutdown: flush, pin the final cursor in the
        // sidecar, then emit the log. Appends fsync as they happen, so
        // no partially-written record is ever observable here.
        s.journal.sync()?;
        if s.journal.records() > 0 {
            s.journal.write_snapshot(s.next_id, s.clock)?;
        }
        s.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtime::FlowParams;
    use crate::session::FlowSession;
    use osr_model::io as model_io;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("osr-journal-test-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("events.journal")
    }

    fn sess(m: usize) -> Box<dyn ServeSession> {
        Box::new(FlowSession::new(FlowParams::new(0.5), m).unwrap())
    }

    /// Feed a small deterministic stream through a journaled session.
    fn feed(js: &mut JournaledSession, n: usize) {
        for k in 0..n {
            let t = k as f64 * 0.5;
            js.arrive(t, 1.0, vec![1.0 + k as f64 % 3.0, 2.0]).unwrap();
            if k == 2 {
                js.capacity(CapacityChange::Drain, 1, t).unwrap();
            }
            if k == 4 {
                js.capacity(CapacityChange::Join, 1, t).unwrap();
            }
        }
    }

    #[test]
    fn records_round_trip_through_encode_and_parse() {
        let a = Arrival {
            release: 3.7310627019737903,
            weight: 0.125,
            sizes: vec![1.5, f64::INFINITY, 0.1],
        };
        let body = encode_arrive(7, a.release, a.weight, &a.sizes);
        assert_eq!(
            parse_record(&body).unwrap(),
            Record::Arrive { id: 7, arrival: a }
        );
        let body = encode_capacity(CapacityChange::Crash, 3, 1.25);
        assert!(matches!(
            parse_record(&body).unwrap(),
            Record::Capacity {
                change: CapacityChange::Crash,
                machine: 3,
                time
            } if time == 1.25
        ));
        assert!(matches!(
            parse_record(&encode_advance(9.5)).unwrap(),
            Record::Advance { time } if time == 9.5
        ));
        assert!(parse_record("explode 1 2").is_err());
    }

    #[test]
    fn recover_replays_to_identical_cursor_and_rejects_fingerprint_drift() {
        let path = tmp("roundtrip");
        let fp = fingerprint("flow:0.5", 2, &[]);
        let mut js = JournaledSession::create(sess(2), &path, fp, 3).unwrap();
        feed(&mut js, 6);
        let cursor = js.cursor();
        drop(js); // crash: no finish()

        let (js2, report, warnings) = JournaledSession::recover(sess(2), &path, fp, 3).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(js2.cursor(), cursor);
        assert_eq!(report.records_replayed, 8); // 6 arrives + 2 capacity
        assert_eq!(report.dropped_torn, 0);
        assert!(report.snapshot_checked, "cadence 3 must have snapshotted");
        assert_eq!(report.rejected_replays, 0);

        // A different configuration must refuse the journal outright.
        let bad = fingerprint("flow:0.5", 3, &[]);
        let err = JournaledSession::recover(sess(3), &path, bad, 3)
            .err()
            .unwrap();
        assert!(err.contains("different configuration"), "{err}");
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_never_half_applied() {
        use std::io::Write as _;
        let path = tmp("torn");
        let fp = fingerprint("flow:0.5", 2, &[]);
        let mut js = JournaledSession::create(sess(2), &path, fp, 0).unwrap();
        feed(&mut js, 4);
        drop(js);

        // Tear the tail: a checksummed record cut mid-number — the
        // truncated literal still parses as a (different) f64, so only
        // the checksum can catch it.
        let intact = std::fs::read_to_string(&path).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        let torn = raw_line("arrive 4 @2.7310627019737903 w=1 1 2");
        f.write_all(&torn.as_bytes()[..torn.len() - 20]).unwrap();
        drop(f);

        let rec = Journal::recover(&path, fp, 0).unwrap();
        assert_eq!(rec.dropped, 1);
        assert_eq!(rec.records.len(), 5);
        // Physically truncated back to the intact prefix.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), intact);

        // Mid-file corruption (a valid record *after* garbage) is not
        // a torn tail and must refuse.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let good_line = raw_line("advance 99");
        let lines: Vec<&str> = intact.lines().collect();
        let corrupt_at = lines[3].len(); // inside record territory
        text.insert_str(text.len() - corrupt_at, "XX");
        text.push_str(&good_line);
        std::fs::write(&path, text).unwrap();
        let err = Journal::recover(&path, fp, 0).err().unwrap();
        assert!(err.contains("mid-file corruption"), "{err}");
    }

    #[test]
    fn corrupt_snapshot_is_ignored_with_warning_but_short_journal_is_fatal() {
        let path = tmp("snap");
        let fp = fingerprint("flow:0.5", 2, &[]);
        let mut js = JournaledSession::create(sess(2), &path, fp, 2).unwrap();
        feed(&mut js, 6);
        drop(js);
        let snap_path = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".snap");
            PathBuf::from(os)
        };
        assert!(snap_path.exists(), "cadence 2 writes sidecars");

        // Torn sidecar: ignored with a warning, replay still exact.
        let full = std::fs::read_to_string(&snap_path).unwrap();
        std::fs::write(&snap_path, &full[..full.len() / 2]).unwrap();
        let (_js2, report, warnings) = JournaledSession::recover(sess(2), &path, fp, 2).unwrap();
        assert!(!report.snapshot_checked);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("ignoring"), "{warnings:?}");

        // A journal shorter than the (intact) snapshot claims means
        // fsync'd records vanished — hard error.
        std::fs::write(&snap_path, &full).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, keep).unwrap();
        let err = JournaledSession::recover(sess(2), &path, fp, 2)
            .err()
            .unwrap();
        assert!(err.contains("went missing"), "{err}");
    }

    #[test]
    fn rejected_events_stay_journaled_and_replay_deterministically() {
        let path = tmp("reject");
        let fp = fingerprint("flow:0.5", 2, &[]);
        let mut js = JournaledSession::create(sess(2), &path, fp, 0).unwrap();
        js.arrive(1.0, 1.0, vec![1.0, 2.0]).unwrap();
        // Clock regression: journaled, then rejected by the session.
        assert!(js.capacity(CapacityChange::Drain, 0, 0.5).is_err());
        assert!(js.arrive(0.25, 1.0, vec![1.0, 1.0]).is_err());
        js.arrive(2.0, 1.0, vec![1.0, 2.0]).unwrap();
        let cursor = js.cursor();
        let oracle = model_io::log_to_string(&Box::new(js).finish().unwrap());

        let (js2, report, _w) = JournaledSession::recover(sess(2), &path, fp, 0).unwrap();
        assert_eq!(js2.cursor(), cursor);
        assert_eq!(report.rejected_replays, 2);
        assert_eq!(
            model_io::log_to_string(&Box::new(js2).finish().unwrap()),
            oracle
        );
    }

    #[test]
    fn batch_failure_truncates_the_unattempted_suffix() {
        let path = tmp("batch");
        let fp = fingerprint("flow:0.5", 2, &[]);
        let mut js = JournaledSession::create(sess(2), &path, fp, 0).unwrap();
        let a = |release: f64| Arrival {
            release,
            weight: 1.0,
            sizes: vec![1.0, 2.0],
        };
        // Entry 1 regresses the clock → batch fails at k=1; entry 2
        // was never attempted and must not stay journaled.
        let (k, _e) = js.arrive_batch(vec![a(1.0), a(0.5), a(2.0)]).unwrap_err();
        assert_eq!(k, 1);
        assert_eq!(js.journal.records(), 1);
        assert_eq!(js.cursor(), (1, 1.0));
        // The serial re-feed path the serve loop uses: entry 2 again.
        js.arrive(2.0, 1.0, vec![1.0, 2.0]).unwrap();
        let cursor = js.cursor();
        drop(js);
        let (js2, report, _w) = JournaledSession::recover(sess(2), &path, fp, 0).unwrap();
        assert_eq!(js2.cursor(), cursor);
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.rejected_replays, 0);
    }

    #[test]
    fn create_refuses_a_non_empty_journal() {
        let path = tmp("refuse");
        let fp = fingerprint("flow:0.5", 2, &[]);
        let mut js = JournaledSession::create(sess(2), &path, fp, 0).unwrap();
        feed(&mut js, 2);
        drop(js);
        let err = Journal::create(&path, fp, 0).err().unwrap();
        assert!(err.contains("--recover"), "{err}");
    }
}
