//! Rejection thresholds and the `1/ε` integrality convention.
//!
//! The paper phrases both rejection rules with exact counter equalities
//! ("the first time when `v_j = 1/ε`", "the first time when
//! `c_i = 1 + 1/ε`"), implicitly assuming `1/ε` integral. For arbitrary
//! `ε ∈ (0, 1]` we use `⌈1/ε⌉`:
//!
//! * Rule 1 fires when `v_k` **reaches** `⌈1/ε⌉` — so at most one job is
//!   rejected per `⌈1/ε⌉ ≥ 1/ε` dispatches during a single execution,
//!   which only *tightens* the `ε`-fraction budget of the analysis;
//! * Rule 2 fires when `c_i` **reaches** `1 + ⌈1/ε⌉`, same reasoning.
//!
//! `λ_ij` keeps the exact real `1/ε` coefficient — the dual analysis
//! (Lemma 4) uses the real quantity, not the counter.

/// Validated `ε` plus the derived integer thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// The rejection-budget parameter `ε ∈ (0, 1]`.
    pub eps: f64,
    /// Exact `1/ε` (used in `λ_ij`).
    pub inv_eps: f64,
    /// Rule 1 fires when the running job's counter reaches this.
    pub rule1_at: u64,
    /// Rule 2 fires when the machine counter reaches this.
    pub rule2_at: u64,
}

impl Thresholds {
    /// Builds thresholds for `eps`; `Err` when `eps ∉ (0, 1]`.
    ///
    /// `ε > 1` is rejected rather than clamped: the analysis allows any
    /// `ε > 0` but the rejection budget `2ε` becomes vacuous past 1/2
    /// and the paper's regime of interest is small `ε`.
    pub fn new(eps: f64) -> Result<Self, String> {
        if !(eps > 0.0 && eps <= 1.0 && eps.is_finite()) {
            return Err(format!("eps must be in (0, 1], got {eps}"));
        }
        let inv_eps = 1.0 / eps;
        // ceil with a tolerance so eps = 0.25 gives exactly 4, not 5, in
        // the face of floating-point representation of 1/eps.
        let rule1_at = (inv_eps - 1e-9).ceil().max(1.0) as u64;
        Ok(Thresholds {
            eps,
            inv_eps,
            rule1_at,
            rule2_at: 1 + rule1_at,
        })
    }

    /// The factor `ε/(1+ε)` used when setting `λ_j`.
    #[inline]
    pub fn lambda_scale(&self) -> f64 {
        self.eps / (1.0 + self.eps)
    }

    /// The factor `ε/(1+ε)²` used when setting `β_i(t)`.
    #[inline]
    pub fn beta_scale(&self) -> f64 {
        self.eps / ((1.0 + self.eps) * (1.0 + self.eps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_inverse_eps_is_exact() {
        let t = Thresholds::new(0.25).unwrap();
        assert_eq!(t.rule1_at, 4);
        assert_eq!(t.rule2_at, 5);
        assert_eq!(t.inv_eps, 4.0);
    }

    #[test]
    fn non_integral_inverse_rounds_up() {
        let t = Thresholds::new(0.3).unwrap();
        // 1/0.3 = 3.33… → 4
        assert_eq!(t.rule1_at, 4);
        assert_eq!(t.rule2_at, 5);
    }

    #[test]
    fn eps_one_gives_unit_thresholds() {
        let t = Thresholds::new(1.0).unwrap();
        assert_eq!(t.rule1_at, 1);
        assert_eq!(t.rule2_at, 2);
    }

    #[test]
    fn invalid_eps_rejected() {
        assert!(Thresholds::new(0.0).is_err());
        assert!(Thresholds::new(-0.5).is_err());
        assert!(Thresholds::new(1.5).is_err());
        assert!(Thresholds::new(f64::NAN).is_err());
    }

    #[test]
    fn scales_match_formulas() {
        let t = Thresholds::new(0.5).unwrap();
        assert!((t.lambda_scale() - 0.5 / 1.5).abs() < 1e-12);
        assert!((t.beta_scale() - 0.5 / 2.25).abs() < 1e-12);
    }

    #[test]
    fn tiny_eps_supported() {
        let t = Thresholds::new(0.001).unwrap();
        assert_eq!(t.rule1_at, 1000);
    }
}
