//! `(λ, µ)`-smoothness (Definition 1) and the smooth inequality of
//! Cohen–Dürr–Thang used by Theorem 3.
//!
//! A set function `f` is `(λ, µ)`-smooth when for any `A = {a_1,…,a_n}`
//! and any nested collection `B_1 ⊆ … ⊆ B_n ⊆ B`,
//!
//! ```text
//! Σ_i [f(B_i ∪ a_i) − f(B_i)] ≤ λ f(A) + µ f(B).
//! ```
//!
//! For power functions `P(s) = s^α` the relevant specialization (the
//! "smooth inequality" of \[18\]) is: for non-negative reals `a_i`, `b_i`,
//!
//! ```text
//! Σ_i [ (b_i + Σ_{j≤i} a_j)^α − (Σ_{j≤i} a_j)^α ]
//!     ≤ λ(α) (Σ_i b_i)^α + µ(α) (Σ_i a_i)^α
//! ```
//!
//! with `µ(α) = (α−1)/α` and `λ(α) = Θ(α^{α−1})`. This module provides
//! the constants and a randomized auditor that searches for violations
//! (used by EXP-SMOOTH and by unit tests here).

/// `µ(α) = (α−1)/α` from the smooth inequality for `s^α`.
pub fn mu_alpha(alpha: f64) -> f64 {
    (alpha - 1.0) / alpha
}

/// `λ(α)`: a concrete constant for which the smooth inequality holds.
///
/// The literature gives `λ(α) = Θ(α^{α−1})`; we use `λ(α) = (2α)^{α−1}`
/// — comfortably inside the Θ and verified empirically by
/// [`audit_smooth_inequality`] across the `α` range the experiments use.
/// With `µ(α) = (α−1)/α` this yields the `O(α^α)` ratio of Theorem 3.
pub fn lambda_alpha(alpha: f64) -> f64 {
    (2.0 * alpha).powf(alpha - 1.0)
}

/// Left side of the smooth inequality for sequences `a`, `b`.
pub fn smooth_lhs(a: &[f64], b: &[f64], alpha: f64) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut prefix = 0.0;
    let mut lhs = 0.0;
    for i in 0..a.len() {
        prefix += a[i];
        lhs += (b[i] + prefix).powf(alpha) - prefix.powf(alpha);
    }
    lhs
}

/// Right side of the smooth inequality with constants
/// `(lambda_alpha, mu_alpha)`.
pub fn smooth_rhs(a: &[f64], b: &[f64], alpha: f64) -> f64 {
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    lambda_alpha(alpha) * sb.powf(alpha) + mu_alpha(alpha) * sa.powf(alpha)
}

/// One counterexample candidate found by the auditor.
#[derive(Debug, Clone)]
pub struct SmoothViolation {
    /// The `a` sequence.
    pub a: Vec<f64>,
    /// The `b` sequence.
    pub b: Vec<f64>,
    /// `lhs − rhs > 0`.
    pub excess: f64,
}

/// Randomized search for violations of the smooth inequality with the
/// constants above. Returns the worst `lhs/rhs` ratio observed and any
/// violations (none expected).
pub fn audit_smooth_inequality(
    alpha: f64,
    trials: usize,
    max_len: usize,
    seed: u64,
) -> (f64, Vec<SmoothViolation>) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut worst_ratio = 0.0f64;
    let mut violations = Vec::new();
    for _ in 0..trials {
        let len = 1 + (next() as usize) % max_len;
        // Mix scales so both a-dominated and b-dominated regimes are hit.
        let scale_a = 10f64.powi((next() % 5) as i32 - 2);
        let scale_b = 10f64.powi((next() % 5) as i32 - 2);
        let a: Vec<f64> = (0..len)
            .map(|_| scale_a * (next() % 1000) as f64 / 1000.0)
            .collect();
        let b: Vec<f64> = (0..len)
            .map(|_| scale_b * (next() % 1000) as f64 / 1000.0)
            .collect();
        let lhs = smooth_lhs(&a, &b, alpha);
        let rhs = smooth_rhs(&a, &b, alpha);
        if rhs > 0.0 {
            let ratio = lhs / rhs;
            if ratio > worst_ratio {
                worst_ratio = ratio;
            }
            if lhs > rhs * (1.0 + 1e-9) {
                violations.push(SmoothViolation {
                    a,
                    b,
                    excess: lhs - rhs,
                });
            }
        }
    }
    (worst_ratio, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_formulas() {
        assert!((mu_alpha(2.0) - 0.5).abs() < 1e-12);
        assert!((mu_alpha(3.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((lambda_alpha(2.0) - 4.0).abs() < 1e-12);
        assert!((lambda_alpha(3.0) - 36.0).abs() < 1e-12);
    }

    #[test]
    fn lhs_single_element() {
        // n=1: lhs = (b+a)^α − a^α.
        let lhs = smooth_lhs(&[1.0], &[2.0], 2.0);
        assert!((lhs - (9.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn inequality_holds_on_simple_cases() {
        for &alpha in &[1.5, 2.0, 2.5, 3.0] {
            for (a, b) in [
                (vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]),
                (vec![0.0, 0.0], vec![5.0, 5.0]),
                (vec![10.0], vec![0.1]),
                (vec![0.1; 10], vec![10.0; 10]),
            ] {
                let lhs = smooth_lhs(&a, &b, alpha);
                let rhs = smooth_rhs(&a, &b, alpha);
                assert!(lhs <= rhs * (1.0 + 1e-9), "alpha={alpha} a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn randomized_audit_finds_no_violations() {
        for &alpha in &[1.5, 2.0, 3.0] {
            let (worst, violations) = audit_smooth_inequality(alpha, 3000, 12, 0xABCD);
            assert!(
                violations.is_empty(),
                "alpha={alpha}: {:?}",
                violations.first()
            );
            assert!(worst <= 1.0 + 1e-9);
            assert!(worst > 0.0, "audit must exercise non-trivial cases");
        }
    }

    #[test]
    fn mu_below_one_keeps_ratio_finite() {
        for &alpha in &[1.1, 2.0, 3.0, 4.0] {
            assert!(mu_alpha(alpha) < 1.0);
            let bound =
                crate::bounds::smooth_competitive_bound(lambda_alpha(alpha), mu_alpha(alpha));
            assert!(bound.is_finite() && bound > 0.0);
        }
    }
}
