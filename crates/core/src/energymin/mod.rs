//! §4 — online non-preemptive energy minimization with deadlines
//! (Theorem 3).
//!
//! ## Model
//!
//! Each job has a release `r_j`, a hard deadline `d_j` and
//! machine-dependent volumes `p_ij`. A *strategy* fixes a machine, a
//! start time and a constant speed `v` such that the execution
//! `[τ, τ + p_ij/v]` fits inside `[r_j, d_j]`. Jobs may overlap on a
//! machine; the machine's power is `P(Σ running speeds) = (Σ s)^α`.
//! The objective is total energy; rejections are **not** allowed here.
//!
//! ## The algorithm (configuration-LP primal-dual greedy)
//!
//! At each arrival, evaluate the marginal energy
//! `Σ_t [P(u_i(t) + v) − P(u_i(t))]` of every candidate strategy and
//! commit to the cheapest — never revisiting speed or placement later.
//! The dual variables of the configuration LP are
//!
//! ```text
//! δ_j = marginal(j)/λ,   β_{ijk} = marginal-if-strategy/λ,
//! γ_i = −(µ/λ)·f_i(A*_i)
//! ```
//!
//! whose feasibility follows from `(λ, µ)`-smoothness of `P`
//! ([`crate::smooth`]); the dual objective equals
//! `((1−µ)/λ)·ALG`, which certifies `ALG ≤ (λ/(1−µ))·OPT` — `α^α` for
//! `P(s) = s^α`.
//!
//! ## Discretization
//!
//! The paper discretizes speeds and times, losing `(1+ε)`. Here the
//! *profiles* are exact piecewise-constant functions
//! ([`profile::SpeedProfile`]); only the **candidate grid** is finite:
//!
//! * speeds: `v_min·ratio^k`, `k = 0..max_speeds`, where
//!   `v_min = p_ij/(d_j − r_j)` is the minimum feasible speed — so a
//!   feasible strategy always exists;
//! * starts: `r_j`, the latest feasible start, profile breakpoints in
//!   the window, and a uniform grid (all deduplicated).

pub mod profile;

use osr_model::{Execution, FinishedLog, Instance, InstanceKind, Job, MachineId, ScheduleLog};
use osr_sim::{DecisionEvent, DecisionTrace, OnlineScheduler};

use crate::smooth::{lambda_alpha, mu_alpha};
pub use profile::SpeedProfile;

/// Parameters of the §4 greedy.
#[derive(Debug, Clone, Copy)]
pub struct EnergyMinParams {
    /// Power exponent `α > 1`.
    pub alpha: f64,
    /// Geometric ratio of the candidate speed grid (must exceed 1).
    pub speed_ratio: f64,
    /// Number of candidate speeds per (job, machine).
    pub max_speeds: usize,
    /// Number of uniform candidate starts per (job, machine) in
    /// addition to window edges and profile breakpoints.
    pub start_grid: usize,
}

impl EnergyMinParams {
    /// Reasonable defaults: ratio 1.25, 16 speeds, 16 uniform starts.
    pub fn new(alpha: f64) -> Self {
        EnergyMinParams {
            alpha,
            speed_ratio: 1.25,
            max_speeds: 16,
            start_grid: 16,
        }
    }
}

/// A committed strategy for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Chosen machine.
    pub machine: MachineId,
    /// Start time.
    pub start: f64,
    /// Constant speed.
    pub speed: f64,
    /// Completion time.
    pub completion: f64,
    /// Marginal energy paid for this strategy (the dual `λ·δ_j`).
    pub marginal: f64,
}

/// Incremental online state: usable both by [`EnergyMinScheduler`] and
/// by the adaptive Lemma-2 adversary, which feeds jobs one at a time
/// and observes each [`Assignment`].
#[derive(Debug)]
pub struct EnergyMinOnline {
    params: EnergyMinParams,
    profiles: Vec<SpeedProfile>,
}

impl EnergyMinOnline {
    /// Fresh state for `machines` machines.
    pub fn new(params: EnergyMinParams, machines: usize) -> Result<Self, String> {
        if !(params.alpha > 1.0) || !params.alpha.is_finite() {
            return Err(format!("alpha must exceed 1, got {}", params.alpha));
        }
        if !(params.speed_ratio > 1.0) {
            return Err(format!(
                "speed_ratio must exceed 1, got {}",
                params.speed_ratio
            ));
        }
        if params.max_speeds == 0 || machines == 0 {
            return Err("need at least one speed and one machine".into());
        }
        Ok(EnergyMinOnline {
            params,
            profiles: (0..machines).map(|_| SpeedProfile::new()).collect(),
        })
    }

    /// The machine profiles accumulated so far.
    pub fn profiles(&self) -> &[SpeedProfile] {
        &self.profiles
    }

    /// Total energy of the committed schedule.
    pub fn total_energy(&self) -> f64 {
        self.profiles
            .iter()
            .map(|p| p.energy(self.params.alpha))
            .sum()
    }

    /// Greedily assigns `job` (which must carry a deadline), committing
    /// the cheapest feasible strategy. Returns the assignment.
    pub fn assign(&mut self, job: &Job) -> Assignment {
        self.try_assign(job)
            .expect("a feasible strategy always exists (v_min at r)")
    }

    /// Like [`EnergyMinOnline::assign`], but returns `None` for a job
    /// that is eligible on no machine (`p_ij = ∞` everywhere) instead
    /// of panicking; the scheduler rejects such jobs at arrival.
    pub fn try_assign(&mut self, job: &Job) -> Option<Assignment> {
        let alpha = self.params.alpha;
        let r = job.release;
        let d = job.deadline.expect("§4 jobs carry deadlines");
        let window = d - r;
        assert!(window > 0.0, "deadline before release");

        let mut best: Option<Assignment> = None;
        for (mi, prof) in self.profiles.iter().enumerate() {
            let p = job.sizes[mi];
            if !p.is_finite() {
                continue;
            }
            let v_min = p / window;
            let mut v = v_min;
            for _ in 0..self.params.max_speeds {
                let dur = p / v;
                let latest = d - dur;
                // Candidate starts: window edges, uniform grid, profile
                // breakpoints inside [r, latest].
                let mut starts: Vec<f64> = vec![r, latest];
                let g = self.params.start_grid;
                for k in 1..g {
                    starts.push(r + (latest - r) * k as f64 / g as f64);
                }
                starts.extend(prof.breakpoints().filter(|&b| b >= r && b <= latest));
                starts.sort_by(f64::total_cmp);
                starts.dedup();
                for &s in &starts {
                    let marginal = prof.marginal_energy(s, s + dur, v, alpha);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            marginal < b.marginal
                                || (marginal == b.marginal && (mi as u32) < b.machine.0)
                        }
                    };
                    if better {
                        best = Some(Assignment {
                            machine: MachineId(mi as u32),
                            start: s,
                            speed: v,
                            completion: s + dur,
                            marginal,
                        });
                    }
                }
                v *= self.params.speed_ratio;
            }
        }
        let a = best?;
        self.profiles[a.machine.idx()].add(a.start, a.completion, a.speed);
        Some(a)
    }
}

/// Full outcome of a §4 run.
#[derive(Debug)]
pub struct EnergyMinOutcome {
    /// The schedule log (every job completed; §4 forbids rejection).
    pub log: FinishedLog,
    /// Decision trail (dispatches record the winning marginal).
    pub trace: DecisionTrace,
    /// Per-job assignments in arrival order.
    pub assignments: Vec<Assignment>,
    /// Total energy `Σ_i ∫ u_i(t)^α dt` (exact, accounts for overlap).
    pub total_energy: f64,
    /// Parameters used.
    pub params: EnergyMinParams,
}

impl EnergyMinOutcome {
    /// Certified lower bound on OPT from the configuration-LP dual:
    /// `((1−µ(α))/λ(α)) · ALG` with the smoothness constants of
    /// [`crate::smooth`]. Guarantees `ALG/OPT ≤ λ/(1−µ)`.
    pub fn certified_lower_bound(&self) -> f64 {
        let alpha = self.params.alpha;
        (1.0 - mu_alpha(alpha)) / lambda_alpha(alpha) * self.total_energy
    }

    /// The dual objective `Σδ_j + Σγ_i = ((1−µ)/λ)·ALG` — equals the
    /// certified lower bound by construction (tested).
    pub fn dual_objective(&self) -> f64 {
        let alpha = self.params.alpha;
        let lam = lambda_alpha(alpha);
        let mu = mu_alpha(alpha);
        let sum_delta: f64 = self.assignments.iter().map(|a| a.marginal / lam).sum();
        let sum_gamma = -(mu / lam) * self.total_energy;
        sum_delta + sum_gamma
    }
}

/// The §4 scheduler over complete instances.
///
/// ```
/// use osr_core::energymin::{EnergyMinParams, EnergyMinScheduler};
/// use osr_model::{InstanceBuilder, InstanceKind};
///
/// let instance = InstanceBuilder::new(1, InstanceKind::Energy)
///     .deadline_job(0.0, 4.0, vec![2.0])
///     .build()
///     .unwrap();
/// let out = EnergyMinScheduler::new(EnergyMinParams::new(2.0)).unwrap().run(&instance);
/// // Alone, the job runs at its minimal feasible speed: energy 4·(0.5)² = 1.
/// assert!((out.total_energy - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMinScheduler {
    params: EnergyMinParams,
}

impl EnergyMinScheduler {
    /// Validates parameters.
    pub fn new(params: EnergyMinParams) -> Result<Self, String> {
        // Delegate validation to the online state constructor.
        EnergyMinOnline::new(params, 1)?;
        Ok(EnergyMinScheduler { params })
    }

    /// Runs the greedy over all jobs in release order.
    pub fn run(&self, instance: &Instance) -> EnergyMinOutcome {
        assert_eq!(
            instance.kind(),
            InstanceKind::Energy,
            "§4 requires deadline instances"
        );
        let mut online = EnergyMinOnline::new(self.params, instance.machines())
            .expect("params validated at construction");
        let mut log = ScheduleLog::new(instance.machines(), instance.len());
        let mut trace = DecisionTrace::new();
        let mut assignments = Vec::with_capacity(instance.len());

        for job in instance.jobs() {
            let Some(a) = online.try_assign(job) else {
                // Eligible nowhere: drop the job instead of aborting.
                // (§4 forbids rejections, so validation of such a log
                // will flag it — but the run completes and reports.)
                osr_sim::reject_ineligible(&mut log, &mut trace, job.id, job.release);
                continue;
            };
            trace.push(DecisionEvent::Dispatch {
                time: job.release,
                job: job.id,
                machine: a.machine,
                lambda: a.marginal,
                candidates: instance.machines(),
            });
            log.complete(
                job.id,
                Execution {
                    machine: a.machine,
                    start: a.start,
                    completion: a.completion,
                    speed: a.speed,
                },
            );
            assignments.push(a);
        }

        let total_energy = online.total_energy();
        EnergyMinOutcome {
            log: log.finish().expect("all jobs assigned"),
            trace,
            assignments,
            total_energy,
            params: self.params,
        }
    }
}

impl OnlineScheduler for EnergyMinScheduler {
    fn name(&self) -> String {
        format!(
            "spaa18-energymin(alpha={}, speeds={}, starts={})",
            self.params.alpha, self.params.max_speeds, self.params.start_grid
        )
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).log
    }
}

/// Per-job minimal-energy lower bound: job `j` alone must spend at
/// least `p·(p/(d−r))^{α−1}` (constant minimal feasible speed on its
/// cheapest machine; convexity makes constant speed optimal).
/// Summing is a valid lower bound because `(Σs)^α ≥ Σ s^α`.
pub fn per_job_energy_lower_bound(instance: &Instance, alpha: f64) -> f64 {
    instance
        .jobs()
        .iter()
        .map(|j| {
            let d = j.deadline.expect("energy instance");
            let window = d - j.release;
            // Cheapest machine by alone-energy (volume matters more on
            // fast machines: energy = p·(p/window)^{α−1}, minimized by
            // the smallest p).
            let p = j.min_size();
            p * (p / window).powf(alpha - 1.0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, JobId};
    use osr_sim::{validate_log, ValidationConfig};

    fn assert_valid(inst: &Instance, out: &EnergyMinOutcome) {
        let rep = validate_log(inst, &out.log, &ValidationConfig::energy());
        assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    }

    fn deadline_instance(n: usize, m: usize, seed: u64, slack: f64) -> Instance {
        let mut b = InstanceBuilder::new(m, InstanceKind::Energy);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = 0.0;
        for _ in 0..n {
            t += (next() % 100) as f64 / 25.0;
            let p = 0.5 + (next() % 20) as f64 / 4.0;
            let sizes: Vec<f64> = (0..m)
                .map(|_| p * (1.0 + (next() % 3) as f64 * 0.5))
                .collect();
            let window = p * slack * (1.0 + (next() % 4) as f64 / 4.0);
            b = b.deadline_job(t, t + window, sizes);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_job_runs_at_min_feasible_speed() {
        // Alone, the cheapest strategy is the slowest feasible speed
        // over the full window (convexity).
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 4.0, vec![2.0])
            .build()
            .unwrap();
        let out = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
            .unwrap()
            .run(&inst);
        assert_valid(&inst, &out);
        let e = out.log.fate(JobId(0)).execution().unwrap();
        assert!((e.speed - 0.5).abs() < 1e-9, "speed {}", e.speed);
        // Energy = 4·(0.5)² = 1.
        assert!((out.total_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deadlines_always_met() {
        for slack in [1.05, 1.5, 3.0] {
            let inst = deadline_instance(60, 2, 77, slack);
            let out = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
                .unwrap()
                .run(&inst);
            assert_valid(&inst, &out);
        }
    }

    #[test]
    fn two_identical_wide_jobs_cost_the_offline_optimum() {
        // Two unit jobs, window [0, 10]: any schedule with constant
        // *total* speed 0.2 (overlapped at 0.1+0.1 or back-to-back at
        // 0.2) achieves the offline optimum 10·0.2^α. The greedy must
        // match it — the energy objective cannot tell the layouts apart.
        let alpha = 3.0;
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 10.0, vec![1.0])
            .deadline_job(0.0, 10.0, vec![1.0])
            .build()
            .unwrap();
        let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
            .unwrap()
            .run(&inst);
        assert_valid(&inst, &out);
        let opt = 10.0 * 0.2f64.powf(alpha);
        assert!(
            out.total_energy <= opt * 1.05 + 1e-12,
            "greedy energy {} vs offline optimum {opt}",
            out.total_energy
        );
    }

    #[test]
    fn two_machines_split_parallel_pressure() {
        let inst = InstanceBuilder::new(2, InstanceKind::Energy)
            .deadline_job(0.0, 1.0, vec![1.0, 1.0])
            .deadline_job(0.0, 1.0, vec![1.0, 1.0])
            .build()
            .unwrap();
        let out = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
            .unwrap()
            .run(&inst);
        assert_valid(&inst, &out);
        let e0 = out.log.fate(JobId(0)).execution().unwrap();
        let e1 = out.log.fate(JobId(1)).execution().unwrap();
        assert_ne!(e0.machine, e1.machine, "tight jobs must use both machines");
    }

    #[test]
    fn total_energy_matches_profile_integral() {
        let inst = deadline_instance(40, 2, 5, 2.0);
        let out = EnergyMinScheduler::new(EnergyMinParams::new(2.5))
            .unwrap()
            .run(&inst);
        // Recompute energy from scratch profiles.
        let mut profs: Vec<SpeedProfile> =
            (0..inst.machines()).map(|_| SpeedProfile::new()).collect();
        for (_, e) in out.log.executions() {
            profs[e.machine.idx()].add(e.start, e.completion, e.speed);
        }
        let recomputed: f64 = profs.iter().map(|p| p.energy(2.5)).sum();
        assert!((recomputed - out.total_energy).abs() < 1e-6 * (1.0 + recomputed));
    }

    #[test]
    fn dual_objective_equals_certified_lower_bound_identity() {
        // Σδ_j = ALG/λ only when marginals telescope to the final
        // energy, which holds exactly because strategies never change:
        // Σ marginal_j = E_final. Hence dual = ((1−µ)/λ)·ALG.
        let inst = deadline_instance(50, 2, 13, 1.8);
        let out = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
            .unwrap()
            .run(&inst);
        let marg_sum: f64 = out.assignments.iter().map(|a| a.marginal).sum();
        assert!(
            (marg_sum - out.total_energy).abs() < 1e-6 * (1.0 + out.total_energy),
            "marginals {marg_sum} must telescope to energy {}",
            out.total_energy
        );
        assert!(
            (out.dual_objective() - out.certified_lower_bound()).abs()
                < 1e-6 * (1.0 + out.certified_lower_bound())
        );
    }

    #[test]
    fn competitive_vs_per_job_bound_within_alpha_alpha_on_easy_instances() {
        // On generously slack instances the greedy should be close to
        // the per-job bound, certainly within α^α.
        let inst = deadline_instance(40, 2, 23, 4.0);
        let alpha = 2.0;
        let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
            .unwrap()
            .run(&inst);
        let lb = per_job_energy_lower_bound(&inst, alpha);
        assert!(lb > 0.0);
        let ratio = out.total_energy / lb;
        // The theorem allows α^α = 4; discretization adds slack. Assert
        // a loose factor to keep the test robust.
        assert!(ratio < 8.0, "ratio {ratio} unexpectedly large");
    }

    #[test]
    fn marginal_recorded_matches_assignment() {
        let inst = deadline_instance(20, 1, 3, 2.0);
        let out = EnergyMinScheduler::new(EnergyMinParams::new(2.0))
            .unwrap()
            .run(&inst);
        for a in &out.assignments {
            assert!(a.marginal >= 0.0);
            assert!(a.completion > a.start);
            assert!(a.speed > 0.0);
        }
    }

    #[test]
    fn online_interface_for_adversaries() {
        let mut online = EnergyMinOnline::new(EnergyMinParams::new(2.0), 1).unwrap();
        let j0 = Job::with_deadline(0, 0.0, 8.0, vec![2.0]);
        let a0 = online.assign(&j0);
        assert!(a0.completion <= 8.0 + 1e-9);
        // Adversary reacts to a0: next job inside [S+1, C].
        let r1 = a0.start + 1.0;
        let d1 = a0.completion.max(r1 + 1.1);
        let j1 = Job::with_deadline(1, r1, d1, vec![(d1 - r1) / 3.0]);
        let a1 = online.assign(&j1);
        assert!(a1.start >= r1 - 1e-9);
        assert!(a1.completion <= d1 + 1e-9);
        assert!(online.total_energy() > 0.0);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(EnergyMinScheduler::new(EnergyMinParams {
            alpha: 1.0,
            speed_ratio: 1.25,
            max_speeds: 8,
            start_grid: 8
        })
        .is_err());
        assert!(EnergyMinScheduler::new(EnergyMinParams {
            alpha: 2.0,
            speed_ratio: 1.0,
            max_speeds: 8,
            start_grid: 8
        })
        .is_err());
        assert!(EnergyMinScheduler::new(EnergyMinParams {
            alpha: 2.0,
            speed_ratio: 1.25,
            max_speeds: 0,
            start_grid: 8
        })
        .is_err());
    }

    #[test]
    fn per_job_bound_formula() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 4.0, vec![2.0])
            .build()
            .unwrap();
        // p=2, window=4 → 2·(0.5)^{α−1}; α=3 → 2·0.25 = 0.5.
        assert!((per_job_energy_lower_bound(&inst, 3.0) - 0.5).abs() < 1e-12);
    }
}
