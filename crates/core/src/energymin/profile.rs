//! Exact piecewise-constant machine speed profiles.
//!
//! §4 allows several jobs to run simultaneously on one machine; the
//! machine's power at time `t` is `P(Σ running speeds)`. Rather than
//! discretizing time into slots (which would make the marginal-energy
//! oracle approximate), profiles are stored as breakpoint maps — the
//! greedy's marginal-energy evaluations and the final energy integral
//! are then **exact** for the chosen (start, speed) strategies. The
//! paper's discretization appears only where it belongs: in the finite
//! *candidate* strategy grid (see `energymin::mod`).

use std::collections::BTreeMap;

use osr_dstruct::TotalF64;

/// Total machine speed as a step function of time.
///
/// Entries map a breakpoint `t` to the total speed on `[t, next)`;
/// speed is 0 before the first breakpoint and after the last (the last
/// entry always carries value 0).
#[derive(Debug, Clone, Default)]
pub struct SpeedProfile {
    points: BTreeMap<TotalF64, f64>,
}

impl SpeedProfile {
    /// Empty (all-idle) profile.
    pub fn new() -> Self {
        SpeedProfile {
            points: BTreeMap::new(),
        }
    }

    /// Whether no job has ever been added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Speed at time `t`.
    pub fn speed_at(&self, t: f64) -> f64 {
        self.points
            .range(..=TotalF64(t))
            .next_back()
            .map(|(_, &v)| v)
            .unwrap_or(0.0)
    }

    /// Ensures a breakpoint exists at `t` (splitting the segment).
    fn ensure_breakpoint(&mut self, t: f64) {
        let key = TotalF64(t);
        if self.points.contains_key(&key) {
            return;
        }
        let val = self.speed_at(t);
        self.points.insert(key, val);
    }

    /// Adds speed `v` on `[start, end)`.
    pub fn add(&mut self, start: f64, end: f64, v: f64) {
        assert!(end > start, "empty or negative interval");
        assert!(v > 0.0 && v.is_finite(), "speed must be positive");
        self.ensure_breakpoint(start);
        self.ensure_breakpoint(end);
        for (_, val) in self.points.range_mut(TotalF64(start)..TotalF64(end)) {
            *val += v;
        }
    }

    /// Marginal energy of adding `v` on `[start, end)` under
    /// `P(s) = s^alpha`: `Σ segments len·((u+v)^α − u^α)`, exact.
    pub fn marginal_energy(&self, start: f64, end: f64, v: f64, alpha: f64) -> f64 {
        debug_assert!(end > start);
        let mut total = 0.0;
        let mut cursor = start;
        let mut current = self.speed_at(start);
        for (&TotalF64(t), &val) in self.points.range((
            std::ops::Bound::Excluded(TotalF64(start)),
            std::ops::Bound::Excluded(TotalF64(end)),
        )) {
            total += (t - cursor) * ((current + v).powf(alpha) - current.powf(alpha));
            cursor = t;
            current = val;
        }
        total += (end - cursor) * ((current + v).powf(alpha) - current.powf(alpha));
        total
    }

    /// Total energy `∫ u(t)^α dt` of the profile.
    pub fn energy(&self, alpha: f64) -> f64 {
        let mut total = 0.0;
        let mut iter = self.points.iter().peekable();
        while let Some((&TotalF64(t), &v)) = iter.next() {
            if let Some((&TotalF64(t2), _)) = iter.peek() {
                if v > 0.0 {
                    total += (t2 - t) * v.powf(alpha);
                }
            }
        }
        total
    }

    /// Largest speed attained.
    pub fn max_speed(&self) -> f64 {
        self.points.values().copied().fold(0.0, f64::max)
    }

    /// Breakpoint times (for candidate-start enumeration).
    pub fn breakpoints(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.keys().map(|k| k.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_interval() {
        let mut p = SpeedProfile::new();
        p.add(1.0, 3.0, 2.0);
        assert_eq!(p.speed_at(0.5), 0.0);
        assert_eq!(p.speed_at(1.0), 2.0);
        assert_eq!(p.speed_at(2.9), 2.0);
        assert_eq!(p.speed_at(3.0), 0.0);
        // Energy with alpha=2: 2 time units at speed 2 → 2·4 = 8.
        assert_eq!(p.energy(2.0), 8.0);
        assert_eq!(p.max_speed(), 2.0);
    }

    #[test]
    fn overlapping_intervals_sum_speeds() {
        let mut p = SpeedProfile::new();
        p.add(0.0, 4.0, 1.0);
        p.add(2.0, 6.0, 2.0);
        assert_eq!(p.speed_at(1.0), 1.0);
        assert_eq!(p.speed_at(3.0), 3.0);
        assert_eq!(p.speed_at(5.0), 2.0);
        // Energy (α=2): [0,2)·1 + [2,4)·9 + [4,6)·4 = 2 + 18 + 8.
        assert_eq!(p.energy(2.0), 28.0);
    }

    #[test]
    fn marginal_energy_matches_before_after_difference() {
        let mut p = SpeedProfile::new();
        p.add(0.0, 4.0, 1.0);
        p.add(1.0, 2.0, 3.0);
        let alpha = 2.5;
        let before = p.energy(alpha);
        let marg = p.marginal_energy(0.5, 3.5, 2.0, alpha);
        p.add(0.5, 3.5, 2.0);
        let after = p.energy(alpha);
        assert!(
            (after - before - marg).abs() < 1e-9,
            "marginal {marg} vs {}",
            after - before
        );
    }

    #[test]
    fn marginal_on_idle_machine_is_plain_power() {
        let p = SpeedProfile::new();
        let marg = p.marginal_energy(2.0, 5.0, 2.0, 3.0);
        assert_eq!(marg, 3.0 * 8.0);
    }

    #[test]
    fn marginal_with_interior_breakpoints_exact() {
        let mut p = SpeedProfile::new();
        p.add(0.0, 1.0, 1.0);
        p.add(1.0, 2.0, 2.0);
        p.add(2.0, 3.0, 3.0);
        let alpha = 2.0;
        // add v=1 on [0.5, 2.5): segments [0.5,1)@1, [1,2)@2, [2,2.5)@3.
        let expect = 0.5 * (4.0 - 1.0) + 1.0 * (9.0 - 4.0) + 0.5 * (16.0 - 9.0);
        let marg = p.marginal_energy(0.5, 2.5, 1.0, alpha);
        assert!((marg - expect).abs() < 1e-12);
    }

    #[test]
    fn energy_of_empty_profile_is_zero() {
        assert_eq!(SpeedProfile::new().energy(3.0), 0.0);
    }

    #[test]
    fn breakpoints_listed() {
        let mut p = SpeedProfile::new();
        p.add(1.0, 2.0, 1.0);
        p.add(5.0, 7.0, 1.0);
        let bps: Vec<f64> = p.breakpoints().collect();
        assert_eq!(bps, vec![1.0, 2.0, 5.0, 7.0]);
    }

    #[test]
    fn repeated_adds_accumulate() {
        let mut p = SpeedProfile::new();
        for _ in 0..5 {
            p.add(0.0, 1.0, 1.0);
        }
        assert_eq!(p.speed_at(0.5), 5.0);
        assert_eq!(p.energy(2.0), 25.0);
    }
}
