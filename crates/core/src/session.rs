//! Streaming **serve-mode** sessions: the three schedulers opened up as
//! long-running, incrementally-fed instances for `osr serve`.
//!
//! Offline, a scheduler's `run(&Instance)` sees every arrival up front
//! and hands the whole batch to [`osr_sim::drive`]. A serve session
//! inverts that: it owns a growable job list and a resumable
//! [`DriverSession`], and each [`ServeSession::arrive`] pushes one job
//! and ingests it immediately. The *policies* are unchanged — flow and
//! energy policies (which borrow the jobs slice) are rebuilt per call
//! around the long-lived driver state; the weighted policy (which owns
//! the global rejection budget) lives inside the session.
//!
//! # Determinism contract (online = offline)
//!
//! Feeding a session the events of an offline instance in the batch
//! loop's order — capacity changes before arrivals at equal instants,
//! timestamps non-decreasing — produces a [`FinishedLog`] **byte
//! identical** (via [`osr_model::io::log_to_string`]) to the offline
//! `run` over the same instance: epoch boundaries only add flush
//! points, and flush groups cover disjoint, ordered time ranges, so
//! the concatenated stable sorts equal one whole-run stable sort (see
//! [`DriverSession`] docs). The tests below and the `serve-replay` CI
//! job pin this for all three schedulers.
//!
//! Sessions *validate* the stream rather than trusting it: sizes rows
//! must match the pool width, and event times must be non-decreasing
//! against the session's high-water clock (out-of-order input would
//! silently break the offline equivalence, so it is rejected loudly).

use std::sync::Mutex;

use osr_model::{
    FinishedLog, Job, JobFate, JobId, MachineId, OnlineSet, RejectReason, ScheduleLog,
};
use osr_sim::{CapacityChange, CapacityEvent, DriverSession, SessionStats, SummaryStats};

use crate::energyflow::{
    EnergyFlowJobRecord, EnergyFlowParams, EnergyFlowScheduler, EnergyPolicy, EnergyShard,
};
use crate::epsilon::Thresholds;
use crate::flowtime::weighted::{WeightBudget, WeightedFlowParams, WeightedPolicy, WeightedShard};
use crate::flowtime::{FlowGlobal, FlowParams, FlowPolicy, FlowShard};

/// Pending-arena preallocation per machine in serve mode. Offline runs
/// size the hint from `n / m`, but a stream's length is unknown up
/// front; any value is schedule-neutral (the hint only pre-reserves
/// arena space — treap shapes depend on the insertion sequence alone),
/// so serve uses a small constant and lets hot machines grow.
const SERVE_CAP_HINT: usize = 64;

/// Point-in-time ops snapshot of a live serve session: driver counters
/// ([`SessionStats`]) merged with fate totals and flow-time percentiles
/// read off the in-progress schedule log. Rendered by `osr serve`'s
/// `stats` command and the `osr top` TUI.
#[derive(Debug, Clone, Default)]
pub struct ServeSnapshot {
    /// High-water event time processed (`-∞` before any event).
    pub now: f64,
    /// Machine-universe size of the pool.
    pub machines: usize,
    /// Machines currently online.
    pub online: usize,
    /// Effective shard count of the driver.
    pub shards: usize,
    /// Arrivals ingested so far.
    pub arrived: usize,
    /// Jobs dispatched but not yet started.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Completion events waiting in the shard event queues.
    pub completions_pending: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs rejected (all reasons).
    pub rejected: usize,
    /// ... by §2 Rule 1 / the §3 weight rule.
    pub rejected_rule1: usize,
    /// ... by §2 Rule 2.
    pub rejected_rule2: usize,
    /// ... immediately at arrival (baseline policies).
    pub rejected_immediate: usize,
    /// ... for being eligible on no machine.
    pub rejected_ineligible: usize,
    /// ... because every eligible machine left the pool.
    pub rejected_machine_lost: usize,
    /// ... for any other baseline-specific reason.
    pub rejected_other: usize,
    /// Total capacity-churn re-dispatches across all jobs.
    pub redispatches: u64,
    /// Median flow time `C_j − r_j` over completed jobs (0 when none).
    pub flow_p50: f64,
    /// 95th-percentile flow time over completed jobs.
    pub flow_p95: f64,
    /// 99th-percentile flow time over completed jobs.
    pub flow_p99: f64,
    /// Merged dispatch-index snapshot across shards (`None` when every
    /// shard runs the linear scan).
    pub index: Option<osr_dstruct::IndexStats>,
    /// Per-machine pending-queue depths `(global machine index, depth)`
    /// in ascending machine order — the `osr top` load pane's source.
    pub machine_depths: Vec<(usize, usize)>,
}

/// One queued arrival for [`ServeSession::arrive_batch`]: the operands
/// of a single [`ServeSession::arrive`] call, with any stream defaults
/// (omitted `@T`) already resolved by the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Release time (must respect the session's monotone clock).
    pub release: f64,
    /// Job weight.
    pub weight: f64,
    /// One processing time per machine (`f64::INFINITY` = ineligible).
    pub sizes: Vec<f64>,
}

/// A scheduler running as a long-lived, incrementally-fed instance —
/// the object-safe surface `osr serve` drives. One implementation per
/// algorithm: [`FlowSession`] (§2), [`WeightedFlowSession`] (§3 weight
/// rule on unit speeds), [`EnergyFlowSession`] (§3 speed scaling).
///
/// Event times must be non-decreasing across *all* calls (`arrive`,
/// `capacity`, `advance` share one high-water clock); violations are
/// rejected with an error and leave the session state untouched.
pub trait ServeSession: Send {
    /// Short algorithm name (`"flow"`, `"weighted"`, `"energy"`).
    fn algorithm(&self) -> &'static str;

    /// Machine-universe size of the pool.
    fn machines(&self) -> usize;

    /// Feeds one arrival: a job released at `release` with `weight` and
    /// one processing time per machine (`f64::INFINITY` = ineligible),
    /// dispatched online immediately. Returns the assigned dense id.
    fn arrive(&mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Result<JobId, String>;

    /// Feeds a burst of arrivals as **one** ingest epoch. By the
    /// determinism contract, ingesting a batch at once produces the
    /// same log bytes as feeding its members through [`Self::arrive`]
    /// one by one (epoch boundaries only add flush points), so
    /// coalescing trades ingest overhead only — `osr serve` uses it to
    /// absorb queued stdin/socket bursts.
    ///
    /// On `Err((k, e))`, arrivals before index `k` were validated and
    /// ingested, arrival `k` failed with `e`, and later entries were
    /// not attempted (the caller still holds their data and can replay
    /// them individually).
    fn arrive_batch(&mut self, batch: Vec<Arrival>) -> Result<(), (usize, String)> {
        for (k, a) in batch.into_iter().enumerate() {
            self.arrive(a.release, a.weight, a.sizes)
                .map_err(|e| (k, e))?;
        }
        Ok(())
    }

    /// Applies a pool-membership change at `time`: joins bring the
    /// machine back; drains and crashes evict its jobs and re-dispatch
    /// them. No-ops (joining an online machine, draining an offline
    /// one) are accepted silently, mirroring offline replay.
    fn capacity(&mut self, change: CapacityChange, machine: usize, time: f64)
        -> Result<(), String>;

    /// Fires every completion at or before `time` without ingesting
    /// anything, so stats surfaces stay current between arrivals.
    /// Afterwards no event may carry a timestamp below `time`.
    fn advance(&mut self, time: f64) -> Result<(), String>;

    /// Read-only ops snapshot (never mutates scheduler state).
    fn snapshot(&self) -> ServeSnapshot;

    /// Ends the stream: drains every outstanding completion and returns
    /// the finished log — byte-identical to the offline run over the
    /// same event sequence.
    fn finish(self: Box<Self>) -> Result<FinishedLog, String>;
}

/// Builds the initial pool membership: all machines online except the
/// listed ones (machines whose first trace event is a `join` start
/// offline, mirroring [`osr_sim::CapacityPlan::initial_online`]).
fn initial_pool(machines: usize, offline: &[usize]) -> Result<OnlineSet, String> {
    let mut online = OnlineSet::all_online(machines);
    for &i in offline {
        if i >= machines {
            return Err(format!(
                "offline machine m{i} out of range (pool has {machines} machines)"
            ));
        }
        online.set_offline(i);
    }
    Ok(online)
}

/// Shared stream validation: a session-wide monotone clock.
fn check_clock(clock: f64, time: f64, what: &str) -> Result<(), String> {
    if time.is_nan() {
        return Err(format!("{what} time is NaN"));
    }
    if time < clock {
        return Err(format!(
            "{what} at t={time} behind the stream high-water t={clock}; serve input must be time-ordered"
        ));
    }
    Ok(())
}

/// Shared bounds check for capacity targets.
fn check_machine(machines: usize, machine: usize) -> Result<(), String> {
    if machine >= machines {
        return Err(format!(
            "machine m{machine} out of range (pool has {machines} machines)"
        ));
    }
    Ok(())
}

/// Merges driver counters with fate totals and flow percentiles read
/// off the in-progress log.
fn compose_snapshot(stats: SessionStats, log: &ScheduleLog, jobs: &[Job]) -> ServeSnapshot {
    let mut snap = ServeSnapshot {
        now: stats.now,
        machines: stats.machines,
        online: stats.online,
        shards: stats.shards,
        arrived: stats.ingested,
        queued: stats.queued,
        running: stats.running,
        completions_pending: stats.completions_pending,
        index: stats.index,
        machine_depths: stats.machine_depths,
        ..ServeSnapshot::default()
    };
    let mut flows = Vec::new();
    for (id, fate) in log.iter() {
        match fate {
            JobFate::Completed(e) => {
                snap.completed += 1;
                flows.push(e.completion - jobs[id.idx()].release);
            }
            JobFate::Rejected(r) => {
                snap.rejected += 1;
                match r.reason {
                    RejectReason::RuleOne => snap.rejected_rule1 += 1,
                    RejectReason::RuleTwo => snap.rejected_rule2 += 1,
                    RejectReason::Immediate => snap.rejected_immediate += 1,
                    RejectReason::Ineligible => snap.rejected_ineligible += 1,
                    RejectReason::MachineLost => snap.rejected_machine_lost += 1,
                    RejectReason::Other => snap.rejected_other += 1,
                }
            }
        }
    }
    for k in 0..log.len() {
        snap.redispatches += u64::from(log.redispatches(JobId(k as u32)));
    }
    let s = SummaryStats::from_values(flows);
    snap.flow_p50 = s.p50;
    snap.flow_p95 = s.p95;
    snap.flow_p99 = s.p99;
    snap
}

/// Validates an incoming arrival and appends it to the session's job
/// list, returning its id. Shared by all three sessions; callers grow
/// their global state and ingest on `Ok`.
fn push_arrival(
    jobs: &mut Vec<Job>,
    machines: usize,
    clock: &mut f64,
    release: f64,
    weight: f64,
    sizes: Vec<f64>,
) -> Result<JobId, String> {
    check_clock(*clock, release, "arrival")?;
    if jobs.len() > u32::MAX as usize {
        return Err("job id space exhausted".into());
    }
    let job = Job::weighted(jobs.len() as u32, release, weight, sizes);
    job.validate(machines)?;
    *clock = release;
    let id = job.id;
    jobs.push(job);
    Ok(id)
}

/// Rebuilds the (cheap, borrow-carrying) §2 policy around the session's
/// current job list. Free function so the borrow stays on the `jobs`
/// field alone, leaving the driver free for a simultaneous `&mut`.
fn flow_policy<'a>(
    jobs: &'a [Job],
    th: Thresholds,
    params: FlowParams,
    m: usize,
) -> FlowPolicy<'a> {
    FlowPolicy {
        jobs,
        th,
        params,
        m,
        cap_hint: SERVE_CAP_HINT,
    }
}

/// The §2 flow-time scheduler as a serve session.
pub struct FlowSession {
    jobs: Vec<Job>,
    th: Thresholds,
    params: FlowParams,
    m: usize,
    driver: DriverSession<FlowShard>,
    global: FlowGlobal,
    clock: f64,
}

impl FlowSession {
    /// Opens a session over `machines` machines, all online.
    pub fn new(params: FlowParams, machines: usize) -> Result<Self, String> {
        Self::with_offline(params, machines, &[])
    }

    /// Opens a session with the listed machines starting offline.
    pub fn with_offline(
        params: FlowParams,
        machines: usize,
        offline: &[usize],
    ) -> Result<Self, String> {
        if machines == 0 {
            return Err("pool must have at least one machine".into());
        }
        let th = Thresholds::new(params.eps)?;
        let online = initial_pool(machines, offline)?;
        let policy = flow_policy(&[], th, params, machines);
        let driver =
            DriverSession::with_online(&policy, machines, online, params.events, params.shards);
        Ok(FlowSession {
            jobs: Vec::new(),
            th,
            params,
            m: machines,
            driver,
            global: FlowGlobal {
                lambda: Vec::new(),
                exit: Vec::new(),
                c_tilde: Vec::new(),
                machine_of: Vec::new(),
            },
            clock: 0.0,
        })
    }

    /// Validates and appends one arrival (job row plus its global-state
    /// rows) without ingesting; callers ingest once per batch.
    fn push_one(&mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Result<JobId, String> {
        let id = push_arrival(
            &mut self.jobs,
            self.m,
            &mut self.clock,
            release,
            weight,
            sizes,
        )?;
        self.global.lambda.push(0.0);
        self.global.exit.push(f64::NAN);
        self.global.c_tilde.push(f64::NAN);
        self.global.machine_of.push(u32::MAX);
        Ok(id)
    }

    /// Ingests every pushed-but-uningested arrival as one epoch batch.
    fn ingest(&mut self) {
        let policy = flow_policy(&self.jobs, self.th, self.params, self.m);
        self.driver
            .ingest_all(&policy, &self.jobs, &mut self.global);
    }
}

impl ServeSession for FlowSession {
    fn algorithm(&self) -> &'static str {
        "flow"
    }

    fn machines(&self) -> usize {
        self.m
    }

    fn arrive(&mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Result<JobId, String> {
        let id = self.push_one(release, weight, sizes)?;
        self.ingest();
        Ok(id)
    }

    fn arrive_batch(&mut self, batch: Vec<Arrival>) -> Result<(), (usize, String)> {
        let mut err = None;
        for (k, a) in batch.into_iter().enumerate() {
            if let Err(e) = self.push_one(a.release, a.weight, a.sizes) {
                err = Some((k, e));
                break;
            }
        }
        self.ingest();
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn capacity(
        &mut self,
        change: CapacityChange,
        machine: usize,
        time: f64,
    ) -> Result<(), String> {
        check_machine(self.m, machine)?;
        check_clock(self.clock, time, "capacity event")?;
        self.clock = time;
        let ev = CapacityEvent {
            time,
            machine: MachineId(machine as u32),
            change,
        };
        let policy = flow_policy(&self.jobs, self.th, self.params, self.m);
        self.driver
            .capacity(&policy, &self.jobs, ev, &mut self.global);
        Ok(())
    }

    fn advance(&mut self, time: f64) -> Result<(), String> {
        check_clock(self.clock, time, "advance")?;
        self.clock = time;
        let policy = flow_policy(&self.jobs, self.th, self.params, self.m);
        self.driver.advance(&policy, time, &mut self.global);
        Ok(())
    }

    fn snapshot(&self) -> ServeSnapshot {
        let policy = flow_policy(&self.jobs, self.th, self.params, self.m);
        compose_snapshot(self.driver.probe(&policy), self.driver.log(), &self.jobs)
    }

    fn finish(self: Box<Self>) -> Result<FinishedLog, String> {
        let mut s = *self;
        let policy = flow_policy(&s.jobs, s.th, s.params, s.m);
        let (log, _trace, _shards) = s.driver.into_finished(&policy, &mut s.global);
        log.finish()
    }
}

/// The §3 weighted scheduler (unit speeds, weight-budget rejection) as
/// a serve session. The policy is job-independent and state-carrying
/// (it owns the global rejection budget), so it lives inside the
/// session rather than being rebuilt per call.
pub struct WeightedFlowSession {
    jobs: Vec<Job>,
    policy: WeightedPolicy,
    m: usize,
    driver: DriverSession<WeightedShard>,
    clock: f64,
}

impl WeightedFlowSession {
    /// Opens a session over `machines` machines, all online.
    pub fn new(params: WeightedFlowParams, machines: usize) -> Result<Self, String> {
        Self::with_offline(params, machines, &[])
    }

    /// Opens a session with the listed machines starting offline.
    pub fn with_offline(
        params: WeightedFlowParams,
        machines: usize,
        offline: &[usize],
    ) -> Result<Self, String> {
        if machines == 0 {
            return Err("pool must have at least one machine".into());
        }
        if !(params.eps > 0.0 && params.eps <= 1.0 && params.eps.is_finite()) {
            return Err(format!("eps must be in (0, 1], got {}", params.eps));
        }
        let online = initial_pool(machines, offline)?;
        let policy = WeightedPolicy {
            eps: params.eps,
            params,
            m: machines,
            budget: Mutex::new(WeightBudget::default()),
        };
        let driver =
            DriverSession::with_online(&policy, machines, online, params.events, params.shards);
        Ok(WeightedFlowSession {
            jobs: Vec::new(),
            policy,
            m: machines,
            driver,
            clock: 0.0,
        })
    }
}

impl ServeSession for WeightedFlowSession {
    fn algorithm(&self) -> &'static str {
        "weighted"
    }

    fn machines(&self) -> usize {
        self.m
    }

    fn arrive(&mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Result<JobId, String> {
        let id = push_arrival(
            &mut self.jobs,
            self.m,
            &mut self.clock,
            release,
            weight,
            sizes,
        )?;
        self.driver.ingest_all(&self.policy, &self.jobs, &mut ());
        Ok(id)
    }

    fn arrive_batch(&mut self, batch: Vec<Arrival>) -> Result<(), (usize, String)> {
        let mut err = None;
        for (k, a) in batch.into_iter().enumerate() {
            if let Err(e) = push_arrival(
                &mut self.jobs,
                self.m,
                &mut self.clock,
                a.release,
                a.weight,
                a.sizes,
            ) {
                err = Some((k, e));
                break;
            }
        }
        self.driver.ingest_all(&self.policy, &self.jobs, &mut ());
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn capacity(
        &mut self,
        change: CapacityChange,
        machine: usize,
        time: f64,
    ) -> Result<(), String> {
        check_machine(self.m, machine)?;
        check_clock(self.clock, time, "capacity event")?;
        self.clock = time;
        let ev = CapacityEvent {
            time,
            machine: MachineId(machine as u32),
            change,
        };
        self.driver.capacity(&self.policy, &self.jobs, ev, &mut ());
        Ok(())
    }

    fn advance(&mut self, time: f64) -> Result<(), String> {
        check_clock(self.clock, time, "advance")?;
        self.clock = time;
        self.driver.advance(&self.policy, time, &mut ());
        Ok(())
    }

    fn snapshot(&self) -> ServeSnapshot {
        compose_snapshot(
            self.driver.probe(&self.policy),
            self.driver.log(),
            &self.jobs,
        )
    }

    fn finish(self: Box<Self>) -> Result<FinishedLog, String> {
        let s = *self;
        let (log, _trace, _shards) = s.driver.into_finished(&s.policy, &mut ());
        log.finish()
    }
}

/// Rebuilds the §3 speed-scaling policy around the session's current
/// job list (see [`flow_policy`] for the borrow-splitting rationale).
fn energy_policy<'a>(
    jobs: &'a [Job],
    params: EnergyFlowParams,
    gamma: f64,
    m: usize,
) -> EnergyPolicy<'a> {
    EnergyPolicy {
        jobs,
        params,
        gamma,
        m,
    }
}

/// The §3 energy scheduler (speed scaling `s = γ·W^{1/α}`) as a serve
/// session.
pub struct EnergyFlowSession {
    jobs: Vec<Job>,
    params: EnergyFlowParams,
    gamma: f64,
    m: usize,
    driver: DriverSession<EnergyShard>,
    records: Vec<EnergyFlowJobRecord>,
    clock: f64,
}

impl EnergyFlowSession {
    /// Opens a session over `machines` machines, all online.
    pub fn new(params: EnergyFlowParams, machines: usize) -> Result<Self, String> {
        Self::with_offline(params, machines, &[])
    }

    /// Opens a session with the listed machines starting offline.
    pub fn with_offline(
        params: EnergyFlowParams,
        machines: usize,
        offline: &[usize],
    ) -> Result<Self, String> {
        if machines == 0 {
            return Err("pool must have at least one machine".into());
        }
        // Reuse the offline scheduler's validation and γ resolution.
        let gamma = EnergyFlowScheduler::new(params)?.gamma();
        let online = initial_pool(machines, offline)?;
        let policy = energy_policy(&[], params, gamma, machines);
        let driver =
            DriverSession::with_online(&policy, machines, online, params.events, params.shards);
        Ok(EnergyFlowSession {
            jobs: Vec::new(),
            params,
            gamma,
            m: machines,
            driver,
            records: Vec::new(),
            clock: 0.0,
        })
    }

    /// The resolved speed-scaling coefficient `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Validates and appends one arrival (job row plus its record row)
    /// without ingesting; callers ingest once per batch.
    fn push_one(&mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Result<JobId, String> {
        let id = push_arrival(
            &mut self.jobs,
            self.m,
            &mut self.clock,
            release,
            weight,
            sizes,
        )?;
        self.records.push(EnergyFlowJobRecord {
            machine: u32::MAX,
            lambda: 0.0,
            start: f64::NAN,
            speed: f64::NAN,
            exit: f64::NAN,
            def_finish: f64::NAN,
        });
        Ok(id)
    }

    /// Ingests every pushed-but-uningested arrival as one epoch batch.
    fn ingest(&mut self) {
        let policy = energy_policy(&self.jobs, self.params, self.gamma, self.m);
        self.driver
            .ingest_all(&policy, &self.jobs, &mut self.records);
    }
}

impl ServeSession for EnergyFlowSession {
    fn algorithm(&self) -> &'static str {
        "energy"
    }

    fn machines(&self) -> usize {
        self.m
    }

    fn arrive(&mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Result<JobId, String> {
        let id = self.push_one(release, weight, sizes)?;
        self.ingest();
        Ok(id)
    }

    fn arrive_batch(&mut self, batch: Vec<Arrival>) -> Result<(), (usize, String)> {
        let mut err = None;
        for (k, a) in batch.into_iter().enumerate() {
            if let Err(e) = self.push_one(a.release, a.weight, a.sizes) {
                err = Some((k, e));
                break;
            }
        }
        self.ingest();
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn capacity(
        &mut self,
        change: CapacityChange,
        machine: usize,
        time: f64,
    ) -> Result<(), String> {
        check_machine(self.m, machine)?;
        check_clock(self.clock, time, "capacity event")?;
        self.clock = time;
        let ev = CapacityEvent {
            time,
            machine: MachineId(machine as u32),
            change,
        };
        let policy = energy_policy(&self.jobs, self.params, self.gamma, self.m);
        self.driver
            .capacity(&policy, &self.jobs, ev, &mut self.records);
        Ok(())
    }

    fn advance(&mut self, time: f64) -> Result<(), String> {
        check_clock(self.clock, time, "advance")?;
        self.clock = time;
        let policy = energy_policy(&self.jobs, self.params, self.gamma, self.m);
        self.driver.advance(&policy, time, &mut self.records);
        Ok(())
    }

    fn snapshot(&self) -> ServeSnapshot {
        let policy = energy_policy(&self.jobs, self.params, self.gamma, self.m);
        compose_snapshot(self.driver.probe(&policy), self.driver.log(), &self.jobs)
    }

    fn finish(self: Box<Self>) -> Result<FinishedLog, String> {
        let mut s = *self;
        let policy = energy_policy(&s.jobs, s.params, s.gamma, s.m);
        let (log, _trace, _shards) = s.driver.into_finished(&policy, &mut s.records);
        log.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::DispatchIndex;
    use crate::flowtime::weighted::WeightedFlowScheduler;
    use crate::flowtime::FlowScheduler;
    use osr_model::io::log_to_string;
    use osr_model::{Instance, InstanceKind};
    use osr_sim::CapacityPlan;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f64) / (u32::MAX as f64 + 1.0)
    }

    /// Deterministic stream: releases non-decreasing, ~15% ineligible
    /// entries, weights in [0.5, 2.5).
    fn gen_jobs(n: usize, m: usize, seed: u64) -> Vec<Job> {
        let mut st = seed;
        let mut t = 0.0f64;
        (0..n)
            .map(|k| {
                t += lcg(&mut st) * 1.5;
                let sizes: Vec<f64> = (0..m)
                    .map(|_| {
                        let r = lcg(&mut st);
                        if r < 0.15 {
                            f64::INFINITY
                        } else {
                            0.5 + 4.0 * r
                        }
                    })
                    .collect();
                let w = 0.5 + 2.0 * lcg(&mut st);
                Job::weighted(k as u32, t, w, sizes)
            })
            .collect()
    }

    /// Feeds an offline instance through a serve session in the batch
    /// loop's order (capacity before arrivals at equal instants).
    fn replay(mut sess: Box<dyn ServeSession>, jobs: &[Job], plan: &CapacityPlan) -> FinishedLog {
        let mut evs = plan.events().iter().peekable();
        for job in jobs {
            while let Some(e) = evs.peek() {
                if e.time <= job.release {
                    sess.capacity(e.change, e.machine.idx(), e.time).unwrap();
                    evs.next();
                } else {
                    break;
                }
            }
            sess.arrive(job.release, job.weight, job.sizes.clone())
                .unwrap();
        }
        for e in evs {
            sess.capacity(e.change, e.machine.idx(), e.time).unwrap();
        }
        sess.finish().unwrap()
    }

    fn churn_plan() -> CapacityPlan {
        CapacityPlan::new(vec![
            CapacityEvent {
                time: 3.0,
                machine: MachineId(1),
                change: CapacityChange::Drain,
            },
            CapacityEvent {
                time: 7.0,
                machine: MachineId(1),
                change: CapacityChange::Join,
            },
            CapacityEvent {
                time: 9.0,
                machine: MachineId(3),
                change: CapacityChange::Crash,
            },
            // m4 starts offline (first event is a join).
            CapacityEvent {
                time: 4.0,
                machine: MachineId(4),
                change: CapacityChange::Join,
            },
        ])
        .unwrap()
    }

    /// Machines that must start offline under [`churn_plan`].
    const CHURN_OFFLINE: &[usize] = &[4];

    #[test]
    fn flow_replay_is_byte_identical_to_offline_run() {
        let m = 5;
        let jobs = gen_jobs(60, m, 7);
        let plan = churn_plan();
        let inst = Instance::new(m, jobs.clone(), InstanceKind::FlowTime).unwrap();
        let offline = FlowScheduler::with_eps(0.5)
            .unwrap()
            .with_capacity(plan.clone())
            .run(&inst);
        let sess = FlowSession::with_offline(FlowParams::new(0.5), m, CHURN_OFFLINE).unwrap();
        let served = replay(Box::new(sess), &jobs, &plan);
        assert_eq!(log_to_string(&offline.log), log_to_string(&served));
    }

    #[test]
    fn flow_replay_matches_on_the_pruned_index_path() {
        // Enough machines to clear PRUNED_MIN_MACHINES so the dispatch
        // index (with its drain tombstones) is actually exercised.
        let m = 12;
        let jobs = gen_jobs(80, m, 21);
        let plan = CapacityPlan::new(vec![
            CapacityEvent {
                time: 5.0,
                machine: MachineId(2),
                change: CapacityChange::Crash,
            },
            CapacityEvent {
                time: 11.0,
                machine: MachineId(8),
                change: CapacityChange::Drain,
            },
        ])
        .unwrap();
        let mut params = FlowParams::new(0.4);
        params.dispatch = DispatchIndex::Pruned;
        let inst = Instance::new(m, jobs.clone(), InstanceKind::FlowTime).unwrap();
        let offline = FlowScheduler::new(params)
            .unwrap()
            .with_capacity(plan.clone())
            .run(&inst);
        let sess = FlowSession::new(params, m).unwrap();
        let served = replay(Box::new(sess), &jobs, &plan);
        assert_eq!(log_to_string(&offline.log), log_to_string(&served));
        // The probe surface reports a live index on this path.
        let sess2 = FlowSession::new(params, m).unwrap();
        assert!(sess2.snapshot().index.is_some());
    }

    #[test]
    fn weighted_replay_is_byte_identical_to_offline_run() {
        let m = 5;
        let jobs = gen_jobs(60, m, 13);
        let plan = churn_plan();
        let inst = Instance::new(m, jobs.clone(), InstanceKind::FlowEnergy).unwrap();
        let params = WeightedFlowParams::new(0.5);
        let offline = WeightedFlowScheduler::new(params)
            .unwrap()
            .with_capacity(plan.clone())
            .run(&inst);
        let sess = WeightedFlowSession::with_offline(params, m, CHURN_OFFLINE).unwrap();
        let served = replay(Box::new(sess), &jobs, &plan);
        assert_eq!(log_to_string(&offline.log), log_to_string(&served));
    }

    #[test]
    fn energy_replay_is_byte_identical_to_offline_run() {
        let m = 5;
        let jobs = gen_jobs(60, m, 29);
        let plan = churn_plan();
        let inst = Instance::new(m, jobs.clone(), InstanceKind::FlowEnergy).unwrap();
        let params = EnergyFlowParams::new(0.5, 2.0);
        let offline = EnergyFlowScheduler::new(params)
            .unwrap()
            .with_capacity(plan.clone())
            .run(&inst);
        let sess = EnergyFlowSession::with_offline(params, m, CHURN_OFFLINE).unwrap();
        let served = replay(Box::new(sess), &jobs, &plan);
        assert_eq!(log_to_string(&offline.log), log_to_string(&served));
    }

    /// Coalesced ingest: feeding bursts through `arrive_batch` must
    /// reproduce the one-by-one `arrive` log byte-for-byte for all
    /// three sessions (epoch boundaries only add flush points).
    #[test]
    fn arrive_batch_matches_serial_arrivals_byte_identically() {
        let m = 5;
        let jobs = gen_jobs(60, m, 41);
        let build: [fn(usize) -> Box<dyn ServeSession>; 3] = [
            |m| Box::new(FlowSession::new(FlowParams::new(0.5), m).unwrap()),
            |m| Box::new(WeightedFlowSession::new(WeightedFlowParams::new(0.5), m).unwrap()),
            |m| Box::new(EnergyFlowSession::new(EnergyFlowParams::new(0.5, 2.0), m).unwrap()),
        ];
        for mk in build {
            let mut serial = mk(m);
            for j in &jobs {
                serial.arrive(j.release, j.weight, j.sizes.clone()).unwrap();
            }
            let mut batched = mk(m);
            // Uneven burst sizes so batches straddle several epochs.
            for chunk in jobs.chunks(7) {
                batched
                    .arrive_batch(
                        chunk
                            .iter()
                            .map(|j| Arrival {
                                release: j.release,
                                weight: j.weight,
                                sizes: j.sizes.clone(),
                            })
                            .collect(),
                    )
                    .unwrap();
            }
            assert_eq!(
                log_to_string(&serial.finish().unwrap()),
                log_to_string(&batched.finish().unwrap()),
            );
        }
    }

    /// A mid-batch validation failure ingests the prefix, reports the
    /// failing index, and leaves the session usable.
    #[test]
    fn arrive_batch_reports_failure_index_and_keeps_prefix() {
        let m = 2;
        let mut sess = FlowSession::new(FlowParams::new(0.5), m).unwrap();
        let a = |release: f64, sizes: Vec<f64>| Arrival {
            release,
            weight: 1.0,
            sizes,
        };
        let (k, e) = sess
            .arrive_batch(vec![
                a(1.0, vec![1.0, 2.0]),
                a(2.0, vec![1.0, 1.0]),
                a(1.5, vec![1.0, 1.0]), // time regression
                a(3.0, vec![1.0, 1.0]), // not attempted
            ])
            .unwrap_err();
        assert_eq!(k, 2);
        assert!(e.contains("time-ordered"), "{e}");
        let snap = sess.snapshot();
        assert_eq!(snap.arrived, 2);
        // The stream continues past the rejected entry.
        sess.arrive(3.0, 1.0, vec![1.0, 1.0]).unwrap();
        assert_eq!(Box::new(sess).finish().unwrap().len(), 3);
    }

    #[test]
    fn snapshot_counts_fates_and_percentiles() {
        let m = 3;
        let mut sess = FlowSession::new(FlowParams::new(0.5), m).unwrap();
        sess.arrive(0.0, 1.0, vec![1.0, 2.0, 3.0]).unwrap();
        sess.arrive(0.5, 1.0, vec![f64::INFINITY; 3]).unwrap(); // ineligible
        sess.arrive(1.0, 1.0, vec![2.0, 1.0, 2.0]).unwrap();
        sess.advance(100.0).unwrap();
        let snap = sess.snapshot();
        assert_eq!(snap.arrived, 3);
        assert_eq!(snap.machines, m);
        assert_eq!(snap.online, m);
        assert_eq!(snap.rejected_ineligible, 1);
        assert_eq!(snap.completed + snap.rejected, 3);
        assert!(snap.flow_p50 > 0.0);
        assert_eq!(snap.queued, 0);
        assert_eq!(snap.running, 0);
    }

    #[test]
    fn streams_are_validated() {
        let m = 2;
        let mut sess = FlowSession::new(FlowParams::new(0.5), m).unwrap();
        sess.arrive(5.0, 1.0, vec![1.0, 1.0]).unwrap();
        // Time regression.
        assert!(sess.arrive(4.0, 1.0, vec![1.0, 1.0]).is_err());
        assert!(sess.capacity(CapacityChange::Drain, 0, 4.0).is_err());
        // Wrong row width.
        assert!(sess.arrive(6.0, 1.0, vec![1.0]).is_err());
        // Bad weight / NaN size.
        assert!(sess.arrive(6.0, 0.0, vec![1.0, 1.0]).is_err());
        assert!(sess.arrive(6.0, 1.0, vec![f64::NAN, 1.0]).is_err());
        // Machine out of range.
        assert!(sess.capacity(CapacityChange::Join, 2, 6.0).is_err());
        // A failed call leaves the stream usable.
        sess.arrive(6.0, 1.0, vec![1.0, 1.0]).unwrap();
        assert!(Box::new(sess).finish().is_ok());
        // Zero machines and out-of-range offline lists are rejected.
        assert!(FlowSession::new(FlowParams::new(0.5), 0).is_err());
        assert!(FlowSession::with_offline(FlowParams::new(0.5), 2, &[2]).is_err());
    }
}
