//! Dispatch-argmin strategy shared by all three schedulers: the
//! [`DispatchIndex`] toggle and the per-machine `λ_ij` **lower bounds**
//! that drive the pruned best-first search
//! ([`osr_dstruct::MachineIndex`]).
//!
//! ## Why a toggle
//!
//! Every scheduler dispatches an arriving job to `argmin_i λ_ij`. The
//! historical implementation is a linear scan — one exact `λ_ij`
//! evaluation per machine, `O(m·log n)` per arrival in §2. The pruned
//! strategy visits machines in increasing lower-bound order and
//! evaluates the exact `λ_ij` lazily, stopping once no remaining bound
//! can beat (or lower-index-tie) the best exact value. Both strategies
//! return **bit-identical** results — machine choice, `λ` value, and
//! therefore every downstream schedule, dual variable, and experiment
//! table — which CI pins by diffing full experiment runs under both
//! settings. `Linear` survives as the ablation baseline
//! (`dstruct_ablation`/`m_scale` quantify the gap).
//!
//! ## Bound soundness, including under floating point
//!
//! Pruning is only sound if a bound never exceeds the exact `λ_ij` *as
//! actually computed in `f64`*. Two mechanisms guarantee this:
//!
//! * **§2 (`flow_lambda_bound`)** mirrors the exact evaluation's
//!   expression shape and exploits monotonicity of IEEE-754
//!   round-to-nearest: `fl(a + b) ≥ fl(a + c)` for `b ≥ c`, and the
//!   aggregate sums it understates are fl-sums of non-negative terms
//!   (each partial `≥` any single term). For an **empty queue** the
//!   bound is the *same expression* as the exact `λ_ij` — equality to
//!   the bit — which is what lets the search stop immediately after
//!   evaluating the lowest-indexed idle machine in the common
//!   many-idle-machines regime.
//! * **§3 / weighted (`energy_lambda_bound`, `weighted_lambda_bound`)**
//!   involve incremental weight-sum caches (subject to `±` rounding
//!   drift) and `powf`; busy-machine bounds are deflated by
//!   `BOUND_SAFETY`, a relative margin (`1e-7`) many orders of
//!   magnitude above any achievable accumulation error for queues that
//!   fit in memory. Empty-queue bounds again mirror the exact
//!   expression bit-for-bit and are **not** deflated, preserving the
//!   idle-machine fast path.
//!
//! A too-small bound can never change the argmin — it only costs extra
//! exact evaluations — so every approximation here errs low.
//!
//! ## The job-side input `p̂` — global and rack-local
//!
//! Subtree-level bounds need the *cheapest eligible size*
//! `p̂_j = min_i { p_ij < ∞ }` (sizes vary per machine, so a subtree
//! covering several machines can only be bounded with the job's best
//! case). Since PR 3 this value is **precomputed at generation time**
//! and cached on [`osr_model::Job`] (`Job::p_hat`, alongside an
//! eligibility bitmask), so the per-arrival `O(m)` rescan of
//! `job.sizes` is gone from the dispatch hot path. The cache is defined
//! by exactly the fold the schedulers used to perform
//! (`filter(is_finite).fold(∞, min)`), so results stay bit-identical —
//! locked by the `tests/dispatch_equivalence` proptests and the CI
//! experiment-suite diffs.
//!
//! Since PR 5 restricted jobs additionally carry **rack-local minima**
//! ([`osr_model::RackPHat`]: per-64-machine-word and per-4096-machine
//! layers mirroring the mask words), and the tournament search hands
//! every node bound its machine range, so `PHatView::for_range`
//! substitutes the *range's own* cheapest eligible size for the global
//! `p̂`. Every bound formula below is monotone non-decreasing in `p`
//! and the rack value is still `≤ p_ij` for every eligible machine in
//! the range (it is the minimum over a containing superset), so the
//! bounds stay sound lower bounds — they are merely *tighter*, which
//! prunes more subtrees without ever changing the argmin. On
//! rack-affinity workloads with heterogeneous sizes this is what keeps
//! the masked heap descent from exactly-probing every rack whose
//! global-`p̂` bound looked attractive.
//!
//! ## The job-side input: the eligibility mask
//!
//! On restricted/affinity workloads the bounds above are
//! **eligibility-blind** — a subtree of machines the job cannot run on
//! still advertises a bound built from `p̂` — so since PR 4 the
//! schedulers hand the search the job's cached eligibility bitmask
//! ([`osr_model::EligMask`], borrowed as `osr_dstruct::MaskView`):
//! any subtree whose machine range misses the mask is skipped outright
//! (an `O(1)` word intersection per node), cutting the search cost to
//! the *eligible* racks. Masked-out machines could only ever evaluate
//! to `None`, so skipping them is result-neutral: bit-identity with
//! the linear scan is preserved and locked by the
//! restricted/affinity `dispatch_equivalence` proptests. The same PR
//! moved mid-size `m` off the `BinaryHeap` entirely —
//! `osr_dstruct::MachineIndex` auto-selects a flat bound scan at
//! `m ≤ 64` (`osr_dstruct::tournament::FLAT_MAX_MACHINES`), attacking
//! the recorded m ≈ 64 crossover where heap traffic ate the win.

use std::sync::atomic::{AtomicU8, Ordering};

use osr_dstruct::{
    tournament::{SearchMode, FLAT_MAX_MACHINES},
    KernelMode, MachineIndex, MachineStats, MaskView, Propagation,
};
use osr_model::{EligMask, Job, OnlineSet, RackPHat};
use osr_sim::CapacityChange;

/// How a scheduler locates `argmin_i λ_ij` at each arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchIndex {
    /// Exact `λ_ij` on every machine, lowest index wins ties — the
    /// `O(m)` reference path, kept as the ablation baseline.
    Linear,
    /// Bound-pruned search over a tournament tree
    /// ([`osr_dstruct::MachineIndex`]): a flat bound scan at mid-size
    /// `m`, a best-first heap descent beyond, both guided by the job's
    /// eligibility mask; bit-identical results to
    /// [`DispatchIndex::Linear`].
    #[default]
    Pruned,
}

impl std::fmt::Display for DispatchIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DispatchIndex::Linear => "linear",
            DispatchIndex::Pruned => "pruned",
        })
    }
}

/// Below this machine count even `Pruned` uses the plain scan: the
/// tree walk plus bound bookkeeping costs more than `m` cheap
/// evaluations. (Results are identical either way; this is purely a
/// constant-factor crossover.)
pub const PRUNED_MIN_MACHINES: usize = 8;

/// The dispatch strategy a scheduler **actually runs** for a given
/// machine count: `Pruned` silently degrades to the linear scan below
/// [`PRUNED_MIN_MACHINES`], and an ablation row labeled "pruned" at
/// m = 4 would measure the linear path. Schedulers record this on
/// their outcomes and the CLI warns when an explicit
/// `--dispatch-index pruned` is ineffective, so results cannot
/// mislabel themselves.
pub fn effective_dispatch_index(requested: DispatchIndex, machines: usize) -> DispatchIndex {
    if machines < PRUNED_MIN_MACHINES {
        DispatchIndex::Linear
    } else {
        requested
    }
}

/// Borrows a job's cached eligibility mask in the form the
/// mask-guided tournament search consumes. The mask contract
/// (`osr_dstruct::tournament` module docs) is met by construction:
/// a machine outside the mask has `p_ij = ∞`, and every scheduler's
/// `eval` returns `None` exactly for infinite sizes.
#[inline]
pub(crate) fn mask_view(elig: &EligMask) -> MaskView<'_> {
    match elig.word_layers() {
        None => MaskView::All,
        Some((words, summary)) => MaskView::Words { words, summary },
    }
}

/// Borrowed view of a job's `p̂` inputs for the subtree bounds: the
/// global minimum plus, for restricted rows, the rack-local layers
/// (see the module docs for the soundness argument).
#[derive(Clone, Copy)]
pub(crate) struct PHatView<'a> {
    global: f64,
    racks: Option<&'a RackPHat>,
}

/// Builds the `p̂` view the schedulers hand their node-bound closures.
#[inline]
pub(crate) fn p_hat_view(job: &Job) -> PHatView<'_> {
    PHatView {
        global: job.p_hat(),
        racks: job.rack_p_hat(),
    }
}

impl PHatView<'_> {
    /// The cheapest eligible size the bound for machine range
    /// `[lo, lo + span)` may assume: the rack-local minimum when the
    /// job caches one (restricted rows), the global `p̂` otherwise.
    #[inline]
    pub(crate) fn for_range(&self, lo: usize, span: usize) -> f64 {
        match self.racks {
            Some(r) => r.range_min(lo, span),
            None => self.global,
        }
    }
}

/// Relative deflation applied to busy-machine bounds whose inputs pass
/// through incremental caches or `powf` (see module docs).
pub(crate) const BOUND_SAFETY: f64 = 1.0 - 1e-7;

const DISPATCH_LINEAR: u8 = 0;
const DISPATCH_PRUNED: u8 = 1;

/// Process-wide default consulted by the `*Params::new` constructors,
/// so harnesses (e.g. `run_experiments --dispatch linear`) can ablate
/// the whole experiment suite without touching every call site.
/// Explicitly set `dispatch` fields always win.
static DEFAULT_DISPATCH: AtomicU8 = AtomicU8::new(DISPATCH_PRUNED);

/// Sets the process-wide default dispatch strategy.
pub fn set_default_dispatch_index(d: DispatchIndex) {
    let v = match d {
        DispatchIndex::Linear => DISPATCH_LINEAR,
        DispatchIndex::Pruned => DISPATCH_PRUNED,
    };
    DEFAULT_DISPATCH.store(v, Ordering::Relaxed);
}

/// The process-wide default dispatch strategy (`Pruned` unless
/// overridden via [`set_default_dispatch_index`]).
pub fn default_dispatch_index() -> DispatchIndex {
    match DEFAULT_DISPATCH.load(Ordering::Relaxed) {
        DISPATCH_LINEAR => DispatchIndex::Linear,
        _ => DispatchIndex::Pruned,
    }
}

/// How a scheduler keeps its pruned dispatch index in sync with
/// capacity churn (`osr_sim::CapacityPlan` joins/drains/crashes).
///
/// Both modes produce **bit-identical schedules** — that is the
/// resize-correctness contract this toggle exists to audit, with the
/// same proptest + CI byte-diff discipline as
/// [`DispatchIndex::Linear`] vs [`DispatchIndex::Pruned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityIndexMode {
    /// Mutate the index in place: grow-by-rack `join`, tombstone on
    /// drain/crash, trailing-rack compaction
    /// (`osr_dstruct::MachineIndex::{join, tombstone, compact}`).
    #[default]
    Incremental,
    /// Rebuild the index from scratch after every capacity event — the
    /// oracle the incremental paths are audited against.
    Rebuild,
}

impl std::fmt::Display for CapacityIndexMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CapacityIndexMode::Incremental => "incremental",
            CapacityIndexMode::Rebuild => "rebuild",
        })
    }
}

const CAPACITY_INCREMENTAL: u8 = 0;
const CAPACITY_REBUILD: u8 = 1;

/// Process-wide default capacity-index mode, mirroring
/// [`DEFAULT_DISPATCH`]: `run_experiments --capacity rebuild` flips the
/// whole suite onto the oracle path for the byte-identity diff.
static DEFAULT_CAPACITY: AtomicU8 = AtomicU8::new(CAPACITY_INCREMENTAL);

/// Sets the process-wide default capacity-index mode.
pub fn set_default_capacity_index(mode: CapacityIndexMode) {
    let v = match mode {
        CapacityIndexMode::Incremental => CAPACITY_INCREMENTAL,
        CapacityIndexMode::Rebuild => CAPACITY_REBUILD,
    };
    DEFAULT_CAPACITY.store(v, Ordering::Relaxed);
}

/// The process-wide default capacity-index mode (`Incremental` unless
/// overridden via [`set_default_capacity_index`]).
pub fn default_capacity_index() -> CapacityIndexMode {
    match DEFAULT_CAPACITY.load(Ordering::Relaxed) {
        CAPACITY_REBUILD => CapacityIndexMode::Rebuild,
        _ => CapacityIndexMode::Incremental,
    }
}

/// Builds a dispatch index over `m` machines from scratch: online
/// machines get their current queue stats, offline machines are
/// tombstoned. This *is* the rebuild oracle of
/// [`CapacityIndexMode::Rebuild`] (called after every capacity event),
/// and also constructs every scheduler's initial index (where `stats`
/// is constantly [`MachineStats::EMPTY`]).
///
/// Machines are visited in ascending id order; a tombstone can trigger
/// trailing-rack auto-compaction only on the final id (earlier leaves
/// not yet visited are still live), so every `update` lands inside the
/// index's current width.
pub fn rebuild_capacity_index(
    m: usize,
    online: &OnlineSet,
    stats: impl Fn(usize) -> MachineStats,
) -> MachineIndex {
    rebuild_shard_index(
        0,
        m,
        online,
        osr_dstruct::default_propagation(),
        osr_dstruct::default_kernel_mode(),
        stats,
    )
}

/// Shard-local sibling of [`rebuild_capacity_index`]: builds an index
/// over the `len` machines `base..base + len` of one driver shard,
/// indexed **locally** (leaf `i` is global machine `base + i`). The
/// `online` set and the `stats` closure stay in global coordinates.
/// With `base = 0, len = m` this *is* the serial rebuild oracle.
/// `prop` selects the index's ancestor-propagation mode and `kern`
/// its kernel layer (schedulers pass their
/// [`crate::SchedulerConfig::propagation`] /
/// [`crate::SchedulerConfig::kernels`]); the search mode keeps
/// [`MachineIndex::new`]'s auto-selection (flat at or below
/// [`FLAT_MAX_MACHINES`] leaves, heap beyond).
pub fn rebuild_shard_index(
    base: usize,
    len: usize,
    online: &OnlineSet,
    prop: Propagation,
    kern: KernelMode,
    stats: impl Fn(usize) -> MachineStats,
) -> MachineIndex {
    let mode = if len <= FLAT_MAX_MACHINES {
        SearchMode::Flat
    } else {
        SearchMode::Heap
    };
    let mut ix = MachineIndex::with_kernels(len, mode, prop, kern);
    for i in 0..len {
        if online.is_online(base + i) {
            ix.update(i, stats(base + i));
        } else {
            ix.tombstone(i);
        }
    }
    ix
}

/// Applies one capacity change to a scheduler's dispatch index under
/// `mode`: incremental join/tombstone, or a full rebuild. The victim
/// machine's queue must already be emptied (drain/crash re-dispatches
/// it) before the rebuild reads `stats`.
pub fn sync_capacity_index(
    dindex: &mut Option<MachineIndex>,
    mode: CapacityIndexMode,
    change: CapacityChange,
    machine: usize,
    m: usize,
    online: &OnlineSet,
    stats: impl Fn(usize) -> MachineStats,
) {
    sync_shard_index(
        dindex,
        mode,
        change,
        machine,
        0,
        m,
        online,
        osr_dstruct::default_propagation(),
        osr_dstruct::default_kernel_mode(),
        stats,
    )
}

/// Shard-local sibling of [`sync_capacity_index`]: applies one
/// capacity change for global `machine` to the index of the shard
/// owning machines `base..base + len`. `machine` must lie in the
/// shard's range; `stats` stays global. `prop` and `kern` are the
/// propagation and kernel modes a [`CapacityIndexMode::Rebuild`]
/// reconstruction carries over (the incremental arm mutates in place
/// and never consults them).
#[allow(clippy::too_many_arguments)]
pub fn sync_shard_index(
    dindex: &mut Option<MachineIndex>,
    mode: CapacityIndexMode,
    change: CapacityChange,
    machine: usize,
    base: usize,
    len: usize,
    online: &OnlineSet,
    prop: Propagation,
    kern: KernelMode,
    stats: impl Fn(usize) -> MachineStats,
) {
    debug_assert!((base..base + len).contains(&machine));
    let Some(ix) = dindex.as_mut() else { return };
    match mode {
        CapacityIndexMode::Incremental => match change {
            CapacityChange::Join => ix.join(machine - base, stats(machine)),
            CapacityChange::Drain | CapacityChange::Crash => {
                ix.tombstone(machine - base);
            }
        },
        CapacityIndexMode::Rebuild => {
            *ix = rebuild_shard_index(base, len, online, prop, kern, stats)
        }
    }
}

/// Lower bound on the §2 dispatch quantity
/// `λ_ij = (1/ε)·p + (Σ_{ℓ⪯j} p_iℓ + p) + |{ℓ≻j}|·p`
/// from a machine's (or subtree's) cached stats.
///
/// Case split on whether `j`'s prefix in the pending order is empty:
///
/// * prefix empty → every pending job succeeds `j`, so the exact value
///   is `(1/ε)p + (0 + p) + count·p`; with the subtree-min `count`
///   this is a lower bound, and for a single empty machine it **is**
///   the exact `λ_ij` expression, bit for bit;
/// * prefix non-empty → the prefix sum contains the queue minimum, so
///   `λ_ij ≥ (1/ε)p + (min_size + p)` (the successor term is `≥ 0`).
///
/// Each case only ever drops or understates non-negative addends of
/// the exact fl-expression, so fl-monotonicity keeps the bound `≤` the
/// exact `f64` value — no safety margin needed.
#[inline]
pub(crate) fn flow_lambda_bound(min_count: u64, min_size: f64, p: f64, inv_eps: f64) -> f64 {
    let prefix_empty = inv_eps * p + (0.0 + p) + (min_count as f64) * p;
    let prefix_nonempty = inv_eps * p + (min_size + p);
    prefix_empty.min(prefix_nonempty)
}

/// Lower bound on the weighted-extension dispatch quantity
/// `λ_ij = w·p/ε + w·(Σ_{ℓ⪯j} p_iℓ + p) + (Σ_{ℓ≻j} w_ℓ)·p`
/// (pending ordered by density). Same case split as
/// [`flow_lambda_bound`]; the weight sum comes from an incrementally
/// maintained cache, so busy bounds carry [`BOUND_SAFETY`].
#[inline]
pub(crate) fn weighted_lambda_bound(
    min_count: u64,
    min_wsum: f64,
    min_size: f64,
    p: f64,
    w: f64,
    eps: f64,
) -> f64 {
    if min_count == 0 {
        // Mirrors `WeightedFlowScheduler::lambda_ij` on an empty queue.
        let mut lam = w * p / eps;
        lam += w * (0.0 + p);
        lam += 0.0 * p;
        return lam;
    }
    let prefix_empty = w * p / eps + w * (0.0 + p) + min_wsum * p;
    let prefix_nonempty = w * p / eps + w * (min_size + p);
    prefix_empty.min(prefix_nonempty) * BOUND_SAFETY
}

/// Lower bound on the §3 dispatch quantity
/// `λ_ij = w(p/ε + Σ_{ℓ⪯j} p_iℓ/(γW_ℓ^{1/α})) + (Σ_{ℓ≻j} w_ℓ)·p/(γW_j^{1/α})`.
///
/// **Unlike §2, pending work can *lower* λ here** — more queued weight
/// means a higher speed and smaller per-volume terms — so an idle
/// machine's λ is *not* a lower bound for a busy one and there is no
/// empty-queue shortcut. The two prefix cases instead:
///
/// * prefix empty → `W_j = w` exactly and the successors are the whole
///   queue: `λ ≥ w·p/ε + w·p/(γw^{1/α}) + min_wsum·p/(γw^{1/α})`.
///   With `min_wsum = 0` (an idle machine, or a subtree containing
///   one) this expression *is* the idle-machine λ, mirrored bit for
///   bit, and is left undeflated so idle-tie pruning stays exact.
/// * prefix non-empty → every prefix denominator satisfies
///   `W_ℓ ≤ W_j ≤ max_wsum + w`, and the prefix sizes contain the queue
///   minimum: `λ ≥ w·p/ε + w·(min_size + p)/(γ(max_wsum + w)^{1/α})`.
///
/// Bounds whose inputs pass through the incremental weight cache or
/// `powf` carry [`BOUND_SAFETY`].
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn energy_lambda_bound(
    min_wsum: f64,
    max_wsum: f64,
    min_size: f64,
    p: f64,
    w: f64,
    eps: f64,
    gamma: f64,
    alpha: f64,
) -> f64 {
    // Mirrors `EnergyFlowScheduler::lambda_ij`'s empty-queue shape when
    // `min_wsum == 0`: `w_j = 0.0 + w`, `term_pre = 0.0 + p/(γ·w_j^{1/α})`.
    let own = p / (gamma * (0.0 + w).powf(1.0 / alpha));
    let a = w * p / eps + w * (0.0 + own) + min_wsum * own;
    let prefix_empty = if min_wsum > 0.0 { a * BOUND_SAFETY } else { a };
    let prefix_nonempty = (w * p / eps
        + w * ((min_size + p) / (gamma * (max_wsum + w).powf(1.0 / alpha))))
        * BOUND_SAFETY;
    prefix_empty.min(prefix_nonempty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_toggle_round_trips() {
        assert_eq!(default_dispatch_index(), DispatchIndex::Pruned);
        set_default_dispatch_index(DispatchIndex::Linear);
        assert_eq!(default_dispatch_index(), DispatchIndex::Linear);
        set_default_dispatch_index(DispatchIndex::Pruned);
        assert_eq!(default_dispatch_index(), DispatchIndex::Pruned);
    }

    #[test]
    fn effective_index_degrades_below_the_crossover() {
        for m in 1..PRUNED_MIN_MACHINES {
            assert_eq!(
                effective_dispatch_index(DispatchIndex::Pruned, m),
                DispatchIndex::Linear
            );
        }
        assert_eq!(
            effective_dispatch_index(DispatchIndex::Pruned, PRUNED_MIN_MACHINES),
            DispatchIndex::Pruned
        );
        // Linear is always effective as requested.
        assert_eq!(
            effective_dispatch_index(DispatchIndex::Linear, 1_000),
            DispatchIndex::Linear
        );
        assert_eq!(DispatchIndex::Pruned.to_string(), "pruned");
        assert_eq!(DispatchIndex::Linear.to_string(), "linear");
    }

    #[test]
    fn mask_view_borrows_the_job_mask() {
        use osr_dstruct::MaskView;
        assert!(matches!(mask_view(&EligMask::All), MaskView::All));
        let restricted = EligMask::from_sizes(&[1.0, f64::INFINITY, 2.0]);
        match mask_view(&restricted) {
            MaskView::Words { words, summary } => {
                assert_eq!(words, restricted.word_layers().unwrap().0);
                assert_eq!(summary.len(), 1);
            }
            MaskView::All => panic!("restricted mask must expose word layers"),
        }
    }

    #[test]
    fn p_hat_view_resolves_rack_minima() {
        // Dense row: every range resolves to the global p̂.
        let dense = Job::new(0, 0.0, vec![3.0, 1.0, 2.0]);
        let v = p_hat_view(&dense);
        assert_eq!(v.for_range(0, 2), 1.0);
        assert_eq!(v.for_range(2, 2), 1.0);
        // Restricted row across a word boundary: ranges resolve to
        // their own rack's minimum, which tightens (raises) the bound
        // input away from the cheap rack.
        let mut sizes = vec![f64::INFINITY; 130];
        sizes[3] = 1.0;
        sizes[70] = 6.0;
        let sparse = Job::new(1, 0.0, sizes);
        let v = p_hat_view(&sparse);
        assert_eq!(v.for_range(0, 64), 1.0);
        assert_eq!(v.for_range(64, 64), 6.0);
        assert_eq!(v.for_range(128, 64), f64::INFINITY);
        assert_eq!(v.for_range(0, 128), 1.0);
        // The bound built from the rack value still understates every
        // eligible machine's exact formula input (6.0 ≤ p_ij for all
        // eligible i in [64, 128)) while exceeding the global one.
        assert!(v.for_range(64, 64) > sparse.p_hat());
    }

    #[test]
    fn flow_bound_matches_exact_lambda_on_empty_queue() {
        // The empty-queue case must be the *same expression* as
        // `lambda_ij` with before.sum = 0, succ = 0.
        for p in [0.1, 1.0, 3.7, 250.0] {
            for inv_eps in [1.0, 4.0, 10.0] {
                let exact = inv_eps * p + (0.0 + p) + 0.0 * p;
                assert_eq!(flow_lambda_bound(0, f64::INFINITY, p, inv_eps), exact);
            }
        }
    }

    #[test]
    fn flow_bound_understates_busy_queues() {
        // Pending sizes {2, 5}; job p = 3 ⇒ exact λ = 4p + (2+3) + 1·3.
        let inv_eps = 4.0;
        let exact = inv_eps * 3.0 + (2.0 + 3.0) + 1.0 * 3.0;
        let bound = flow_lambda_bound(2, 2.0, 3.0, inv_eps);
        assert!(bound <= exact, "{bound} > {exact}");
        assert!(bound > 0.0);
    }

    #[test]
    fn busy_bounds_carry_the_safety_margin() {
        let b = weighted_lambda_bound(3, 10.0, 1.0, 2.0, 1.0, 0.5);
        let raw = f64::min(
            1.0 * 2.0 / 0.5 + 1.0 * (0.0 + 2.0) + 10.0 * 2.0,
            1.0 * 2.0 / 0.5 + 1.0 * (1.0 + 2.0),
        );
        assert!(b < raw);
        assert!(b > raw * (1.0 - 1e-6));
    }
}
