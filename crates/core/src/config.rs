//! Unified runtime configuration for the three schedulers.
//!
//! Historically every params struct ([`crate::FlowParams`],
//! [`crate::flowtime::WeightedFlowParams`], [`crate::EnergyFlowParams`]) carried
//! its own copy of the same five runtime knobs (dispatch strategy,
//! event-queue backend, capacity-index mode, shard count, pending-queue
//! backend), and the process-wide defaults behind them were set through
//! four scattered setters. This module centralizes both halves:
//!
//! * [`SchedulerConfig`] — the shared knob block every params struct
//!   now embeds (`params.config`). All knobs are **result-neutral**:
//!   any combination produces byte-identical schedules (that is the
//!   repo's standing ablation contract, locked by the equivalence
//!   proptests and the CI experiment diffs); they trade constant
//!   factors only.
//! * [`RuntimeDefaults`] — a declarative bundle of process-default
//!   overrides with one [`RuntimeDefaults::apply`] call, replacing the
//!   scattered `set_default_*` invocations in harness `main`s, plus
//!   the knob vocabulary ([`KNOBS`], [`knob_help`], `parse_*`) that
//!   CLI help text and error messages are generated from so the docs
//!   can never drift from the parser.

use osr_dstruct::{KernelMode, Propagation};
use osr_sim::EventBackend;

use crate::dispatch::{self, CapacityIndexMode, DispatchIndex};
use crate::flowtime::QueueBackend;

/// The runtime knobs shared by all three schedulers.
///
/// Embedded as the `config` field of every params struct; the params
/// structs `Deref` to it, so `params.dispatch`, `params.shards` etc.
/// keep working as plain field accesses. Every knob is result-neutral
/// (schedules are byte-identical across all settings); see the field
/// docs for what each one trades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Pending-queue backend (consulted by the §2 flow-time scheduler
    /// only; the weighted and energy variants keep density-sorted
    /// `Vec` queues).
    pub backend: QueueBackend,
    /// Dispatch argmin strategy (`Linear` is the ablation baseline).
    pub dispatch: DispatchIndex,
    /// Completion event-queue backend.
    pub events: EventBackend,
    /// How the pruned dispatch index tracks capacity churn
    /// (`Rebuild` is the audit oracle).
    pub capacity_index: CapacityIndexMode,
    /// Ancestor-propagation mode of the tournament dispatch index
    /// (`Eager` is the ablation baseline; `Lazy` batches repairs).
    pub propagation: Propagation,
    /// Which kernel layer the SoA hot loops run (`Scalar` is the
    /// bit-exact oracle; `Chunked` autovectorizes).
    pub kernels: KernelMode,
    /// Requested shard count for the epoch-sharded driver (`1` is the
    /// serial oracle; requests clamp to one shard per 64-machine rack).
    pub shards: usize,
}

impl Default for SchedulerConfig {
    /// Pulls the current process-wide defaults (see
    /// [`RuntimeDefaults`]) for the four overridable knobs, the treap
    /// queue, and the default event backend — exactly what the
    /// `*Params::new` constructors have always done.
    fn default() -> Self {
        SchedulerConfig {
            backend: QueueBackend::Treap,
            dispatch: dispatch::default_dispatch_index(),
            events: EventBackend::default(),
            capacity_index: dispatch::default_capacity_index(),
            propagation: osr_dstruct::default_propagation(),
            kernels: osr_dstruct::default_kernel_mode(),
            shards: osr_sim::default_shards(),
        }
    }
}

impl SchedulerConfig {
    /// The process-default configuration (alias for `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: sets the pending-queue backend.
    pub fn with_backend(mut self, backend: QueueBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder: sets the dispatch argmin strategy.
    pub fn with_dispatch(mut self, dispatch: DispatchIndex) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Builder: sets the completion event-queue backend.
    pub fn with_events(mut self, events: EventBackend) -> Self {
        self.events = events;
        self
    }

    /// Builder: sets the capacity-index maintenance mode.
    pub fn with_capacity_index(mut self, mode: CapacityIndexMode) -> Self {
        self.capacity_index = mode;
        self
    }

    /// Builder: sets the tournament-index propagation mode.
    pub fn with_propagation(mut self, prop: Propagation) -> Self {
        self.propagation = prop;
        self
    }

    /// Builder: sets the kernel layer of the SoA hot loops.
    pub fn with_kernels(mut self, kernels: KernelMode) -> Self {
        self.kernels = kernels;
        self
    }

    /// Builder: sets the requested driver shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// One row of the runtime-knob vocabulary: the flag harnesses expose,
/// its accepted values, the built-in default, and a one-line summary.
/// CLI usage text and parse-error messages are generated from these
/// rows so they cannot drift from the parsers below.
#[derive(Debug, Clone, Copy)]
pub struct KnobSpec {
    /// Canonical long flag (as spelled by `osr run`/`osr serve`).
    pub flag: &'static str,
    /// Accepted values, `|`-separated.
    pub values: &'static str,
    /// The built-in process default.
    pub default_value: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// The five process-default knobs, in display order.
pub const KNOBS: [KnobSpec; 5] = [
    KnobSpec {
        flag: "--dispatch-index",
        values: "linear|pruned",
        default_value: "pruned",
        summary: "dispatch argmin strategy (results identical; linear is the ablation baseline)",
    },
    KnobSpec {
        flag: "--capacity-index",
        values: "incremental|rebuild",
        default_value: "incremental",
        summary: "pruned-index maintenance under capacity churn (rebuild is the audit oracle)",
    },
    KnobSpec {
        flag: "--propagation",
        values: "eager|lazy",
        default_value: "lazy",
        summary: "tournament-index ancestor repair (eager per mutation, lazy batched)",
    },
    KnobSpec {
        flag: "--kernels",
        values: "chunked|scalar",
        default_value: "chunked",
        summary: "SoA hot-loop kernel layer (scalar is the bit-exact oracle)",
    },
    KnobSpec {
        flag: "--shards",
        values: "N (>= 1)",
        default_value: "1",
        summary: "epoch-driver shard count (1 = serial oracle; clamps to one per 64-machine rack)",
    },
];

/// The serve-durability knobs (`osr serve` only), in display order.
/// Same vocabulary discipline as [`KNOBS`]: help text and parse errors
/// are generated from these rows. Unlike the runtime knobs they are
/// not result-neutral toggles — they add durability side effects — but
/// the recovery contract keeps the *schedule* byte-identical.
pub const SERVE_KNOBS: [KnobSpec; 5] = [
    KnobSpec {
        flag: "--journal",
        values: "PATH",
        default_value: "off",
        summary: "write-ahead event journal (fsync'd before state mutates; sidecar PATH.snap)",
    },
    KnobSpec {
        flag: "--recover",
        values: "",
        default_value: "off",
        summary: "replay an existing --journal (torn tail dropped) before accepting new events",
    },
    KnobSpec {
        flag: "--snap-every",
        values: "N (0 disables)",
        default_value: "32",
        summary: "snapshot cadence in journaled records (cursor cross-check, not state dump)",
    },
    KnobSpec {
        flag: "--ingest-buffer",
        values: "N (>= 1)",
        default_value: "1024",
        summary: "bounded ingest channel depth (stdin blocks, socket lines shed `err overloaded`)",
    },
    KnobSpec {
        flag: "--failpoint",
        values: "point[:nth][:action]",
        default_value: "off",
        summary: "arm a fault-injection point (mid-batch|pre-fsync|epoch-barrier|snapshot-write; kill|error|torn)",
    },
];

fn render_knobs(rows: &[KnobSpec], indent: &str) -> String {
    let mut out = String::new();
    let width = rows
        .iter()
        .map(|k| k.flag.len() + 1 + k.values.len())
        .max()
        .unwrap_or(0);
    for k in rows {
        let head = format!("{} {}", k.flag, k.values);
        out.push_str(&format!(
            "{indent}{head:width$}  {} [default: {}]\n",
            k.summary, k.default_value
        ));
    }
    out
}

/// Renders the knob table as indented help lines, one per knob —
/// the single source for every harness's `--help` section on runtime
/// defaults.
pub fn knob_help(indent: &str) -> String {
    render_knobs(&KNOBS, indent)
}

/// Renders the serve-durability knob table ([`SERVE_KNOBS`]) as
/// indented help lines for the `osr serve` usage section.
pub fn serve_knob_help(indent: &str) -> String {
    render_knobs(&SERVE_KNOBS, indent)
}

fn knob_err(flag: &str, got: &str) -> String {
    let spec = KNOBS
        .iter()
        .chain(SERVE_KNOBS.iter())
        .find(|k| k.flag == flag)
        .expect("flag is in a knob table");
    format!("{} must be {}, got '{got}'", spec.flag, spec.values)
}

/// Parses a `--dispatch-index` value.
pub fn parse_dispatch(s: &str) -> Result<DispatchIndex, String> {
    match s {
        "linear" => Ok(DispatchIndex::Linear),
        "pruned" => Ok(DispatchIndex::Pruned),
        other => Err(knob_err("--dispatch-index", other)),
    }
}

/// Parses a `--capacity-index` value.
pub fn parse_capacity_index(s: &str) -> Result<CapacityIndexMode, String> {
    match s {
        "incremental" => Ok(CapacityIndexMode::Incremental),
        "rebuild" => Ok(CapacityIndexMode::Rebuild),
        other => Err(knob_err("--capacity-index", other)),
    }
}

/// Parses a `--propagation` value.
pub fn parse_propagation(s: &str) -> Result<Propagation, String> {
    match s {
        "eager" => Ok(Propagation::Eager),
        "lazy" => Ok(Propagation::Lazy),
        other => Err(knob_err("--propagation", other)),
    }
}

/// Parses a `--kernels` value.
pub fn parse_kernels(s: &str) -> Result<KernelMode, String> {
    match s {
        "chunked" => Ok(KernelMode::Chunked),
        "scalar" => Ok(KernelMode::Scalar),
        other => Err(knob_err("--kernels", other)),
    }
}

/// Parses a `--shards` value (a positive integer).
pub fn parse_shards(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(knob_err("--shards", s)),
    }
}

/// Parses a `--snap-every` value (a non-negative integer; `0` disables
/// periodic snapshots).
pub fn parse_snap_every(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| knob_err("--snap-every", s))
}

/// Parses an `--ingest-buffer` value (a positive integer).
pub fn parse_ingest_buffer(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(knob_err("--ingest-buffer", s)),
    }
}

/// A declarative bundle of process-default overrides.
///
/// Harness `main`s (`osr run`, `osr serve`, `run_experiments`) build
/// one from their parsed flags and call [`RuntimeDefaults::apply`]
/// once, instead of invoking the four `set_default_*` functions by
/// hand. `None` fields leave the corresponding default untouched.
/// Applied defaults feed every later [`SchedulerConfig::default`]
/// (and therefore every `*Params::new`); explicitly set config fields
/// always win.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuntimeDefaults {
    /// Process-default dispatch strategy override.
    pub dispatch: Option<DispatchIndex>,
    /// Process-default capacity-index mode override.
    pub capacity_index: Option<CapacityIndexMode>,
    /// Process-default propagation mode override.
    pub propagation: Option<Propagation>,
    /// Process-default kernel-layer override.
    pub kernels: Option<KernelMode>,
    /// Process-default driver shard count override (clamped to ≥ 1).
    pub shards: Option<usize>,
}

impl RuntimeDefaults {
    /// Applies every `Some` override to the process-wide defaults.
    pub fn apply(&self) {
        if let Some(d) = self.dispatch {
            dispatch::set_default_dispatch_index(d);
        }
        if let Some(c) = self.capacity_index {
            dispatch::set_default_capacity_index(c);
        }
        if let Some(p) = self.propagation {
            osr_dstruct::set_default_propagation(p);
        }
        if let Some(k) = self.kernels {
            osr_dstruct::set_default_kernel_mode(k);
        }
        if let Some(s) = self.shards {
            osr_sim::set_default_shards(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_knob() {
        let c = SchedulerConfig::new()
            .with_backend(QueueBackend::Naive)
            .with_dispatch(DispatchIndex::Linear)
            .with_events(EventBackend::PairingHeap)
            .with_capacity_index(CapacityIndexMode::Rebuild)
            .with_propagation(Propagation::Eager)
            .with_kernels(KernelMode::Scalar)
            .with_shards(4);
        assert_eq!(c.backend, QueueBackend::Naive);
        assert_eq!(c.dispatch, DispatchIndex::Linear);
        assert_eq!(c.events, EventBackend::PairingHeap);
        assert_eq!(c.capacity_index, CapacityIndexMode::Rebuild);
        assert_eq!(c.propagation, Propagation::Eager);
        assert_eq!(c.kernels, KernelMode::Scalar);
        assert_eq!(c.shards, 4);
    }

    #[test]
    fn runtime_defaults_apply_feeds_the_constructors() {
        // `dispatch` stays `None` here: `default_toggle_round_trips`
        // (dispatch.rs) asserts on that same process-global mid-test,
        // and tests share the process. The other three defaults are
        // asserted nowhere else in this binary.
        RuntimeDefaults {
            dispatch: None,
            capacity_index: Some(CapacityIndexMode::Rebuild),
            propagation: Some(Propagation::Eager),
            kernels: Some(KernelMode::Scalar),
            shards: Some(3),
        }
        .apply();
        let c = SchedulerConfig::default();
        assert_eq!(c.capacity_index, CapacityIndexMode::Rebuild);
        assert_eq!(c.propagation, Propagation::Eager);
        assert_eq!(c.kernels, KernelMode::Scalar);
        assert_eq!(c.shards, 3);
        // Restore the built-in defaults for other tests in the process.
        RuntimeDefaults {
            dispatch: None,
            capacity_index: Some(CapacityIndexMode::Incremental),
            propagation: Some(Propagation::Lazy),
            kernels: Some(KernelMode::Chunked),
            shards: Some(1),
        }
        .apply();
    }

    #[test]
    fn help_and_errors_come_from_the_same_table() {
        let help = knob_help("  ");
        for k in &KNOBS {
            assert!(help.contains(k.flag), "help misses {}", k.flag);
            assert!(help.contains(k.default_value));
        }
        // Every parser's error names its flag and accepted values.
        let e = parse_dispatch("bogus").unwrap_err();
        assert!(e.contains("--dispatch-index") && e.contains("linear|pruned"));
        let e = parse_capacity_index("bogus").unwrap_err();
        assert!(e.contains("incremental|rebuild"));
        let e = parse_propagation("bogus").unwrap_err();
        assert!(e.contains("eager|lazy"));
        let e = parse_kernels("bogus").unwrap_err();
        assert!(e.contains("--kernels") && e.contains("chunked|scalar"));
        // The serve-durability table feeds its parsers the same way.
        let serve_help = serve_knob_help("  ");
        for k in &SERVE_KNOBS {
            assert!(serve_help.contains(k.flag), "serve help misses {}", k.flag);
        }
        let e = parse_snap_every("lots").unwrap_err();
        assert!(e.contains("--snap-every"), "{e}");
        assert_eq!(parse_snap_every("0").unwrap(), 0);
        assert_eq!(parse_snap_every("32").unwrap(), 32);
        let e = parse_ingest_buffer("0").unwrap_err();
        assert!(e.contains("--ingest-buffer"), "{e}");
        assert_eq!(parse_ingest_buffer("64").unwrap(), 64);
        assert_eq!(parse_kernels("scalar").unwrap(), KernelMode::Scalar);
        assert_eq!(parse_kernels("chunked").unwrap(), KernelMode::Chunked);
        assert!(parse_shards("0").is_err());
        assert_eq!(parse_shards("8").unwrap(), 8);
        assert_eq!(parse_dispatch("linear").unwrap(), DispatchIndex::Linear);
        assert_eq!(parse_propagation("lazy").unwrap(), Propagation::Lazy);
        assert_eq!(
            parse_capacity_index("rebuild").unwrap(),
            CapacityIndexMode::Rebuild
        );
    }
}
