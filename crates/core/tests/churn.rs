//! Elastic-pool churn tests: join/drain/crash capacity events threaded
//! through all three schedulers, with re-dispatch, machine-lost
//! rejections, and the incremental-vs-rebuild index oracle.

use osr_core::flowtime::{WeightedFlowParams, WeightedFlowScheduler};
use osr_core::{
    CapacityIndexMode, DispatchIndex, EnergyFlowParams, EnergyFlowScheduler, FlowParams,
    FlowScheduler,
};
use osr_model::{Instance, InstanceBuilder, InstanceKind, JobFate, JobId, MachineId, RejectReason};
use osr_sim::{validate_log, CapacityChange, CapacityEvent, CapacityPlan, ValidationConfig};

fn ev(time: f64, machine: u32, change: CapacityChange) -> CapacityEvent {
    CapacityEvent {
        time,
        machine: MachineId(machine),
        change,
    }
}

fn plan(events: Vec<CapacityEvent>) -> CapacityPlan {
    CapacityPlan::new(events).expect("valid plan")
}

/// Every arrived job must end decided: completed, or rejected with a
/// recorded reason (the no-lost-job invariant). `FinishedLog` enforces
/// totality structurally; this asserts the fates are also sane.
fn assert_no_lost_jobs(inst: &Instance, log: &osr_model::FinishedLog) {
    for job in inst.jobs() {
        match log.fate(job.id) {
            JobFate::Completed(e) => assert!(e.completion >= e.start),
            JobFate::Rejected(r) => {
                // Machine-lost requires the job to have been servable in
                // principle (eligible somewhere).
                if r.reason == RejectReason::MachineLost {
                    assert!(job.has_eligible());
                }
            }
        }
    }
}

#[test]
fn drain_redispatches_pending_jobs() {
    // Both machines eligible; machine 0 is much faster so every early
    // job piles onto it, then it drains at t=1.5 with work still queued
    // (rules off so nothing is rejected before the drain).
    let mut b = InstanceBuilder::new(2, InstanceKind::FlowTime);
    for k in 0..6 {
        b = b.job(0.1 * k as f64, vec![2.0, 100.0]);
    }
    let inst = b.build().unwrap();
    let p = plan(vec![ev(1.5, 0, CapacityChange::Drain)]);
    let out = FlowScheduler::new(FlowParams::with_rules(0.5, false, false))
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    let rep = validate_log(
        &inst,
        &out.log,
        &ValidationConfig::flow_time().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    assert_no_lost_jobs(&inst, &out.log);
    assert!(
        out.log.total_redispatches() > 0,
        "drain must re-dispatch the queued jobs"
    );
    // The drained machine finishes its running job but everything
    // re-dispatched lands (and completes) on machine 1.
    for job in inst.jobs() {
        if out.log.redispatches(job.id) > 0 {
            if let JobFate::Completed(e) = out.log.fate(job.id) {
                assert_eq!(e.machine, MachineId(1));
            }
        }
    }
}

#[test]
fn crash_kills_running_job_and_redispatches_it() {
    // One long job running on (fast) machine 0; the crash at t=2 kills
    // it mid-run and it must restart-from-scratch on machine 1.
    let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
        .job(0.0, vec![10.0, 12.0])
        .build()
        .unwrap();
    let p = plan(vec![ev(2.0, 0, CapacityChange::Crash)]);
    let out = FlowScheduler::with_eps(0.5)
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    let rep = validate_log(
        &inst,
        &out.log,
        &ValidationConfig::flow_time().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    assert_eq!(out.log.redispatches(JobId(0)), 1);
    let e = out.log.fate(JobId(0)).execution().expect("completed");
    assert_eq!(e.machine, MachineId(1));
    assert_eq!(e.start, 2.0);
    assert_eq!(e.completion, 14.0, "non-preemptive: full restart");
}

#[test]
fn machine_lost_when_every_eligible_machine_crashed() {
    // j1 is eligible only on machine 0, which crashes while j1 runs;
    // the interrupted prefix is recorded on the rejection.
    let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
        .job(0.0, vec![8.0, f64::INFINITY])
        .job(0.0, vec![f64::INFINITY, 1.0])
        .build()
        .unwrap();
    let p = plan(vec![ev(3.0, 0, CapacityChange::Crash)]);
    let out = FlowScheduler::with_eps(0.5)
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    let rep = validate_log(
        &inst,
        &out.log,
        &ValidationConfig::flow_time().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    let rej = out.log.fate(JobId(0)).rejection().expect("machine lost");
    assert_eq!(rej.reason, RejectReason::MachineLost);
    assert_eq!(rej.time, 3.0);
    let partial = rej.partial.expect("was running when the machine died");
    assert_eq!(partial.machine, MachineId(0));
    assert_eq!(partial.start, 0.0);
    assert_eq!(partial.end, 3.0);
    assert!(out.log.fate(JobId(1)).is_completed());
}

#[test]
fn machine_starting_offline_takes_no_jobs_before_its_join() {
    // Machine 1's first event is a Join at t=5: jobs arriving earlier
    // must all land on machine 0 even though 1 would be faster.
    let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
        .job(0.0, vec![2.0, 0.5])
        .job(0.1, vec![2.0, 0.5])
        .job(6.0, vec![2.0, 0.5])
        .build()
        .unwrap();
    let p = plan(vec![ev(5.0, 1, CapacityChange::Join)]);
    let out = FlowScheduler::with_eps(0.5)
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    let rep = validate_log(
        &inst,
        &out.log,
        &ValidationConfig::flow_time().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    for k in 0..2 {
        let e = out.log.fate(JobId(k)).execution().expect("completed");
        assert_eq!(e.machine, MachineId(0), "job {k} predates the join");
    }
    let e2 = out.log.fate(JobId(2)).execution().expect("completed");
    assert_eq!(e2.machine, MachineId(1), "after the join, 1 is cheaper");
}

/// Deterministic churn workload: `n` jobs over `m` machines with a mix
/// of drains, crashes, and rejoins hitting machines that carry load.
fn churn_fixture(n: usize, m: usize, seed: u64) -> (Instance, CapacityPlan) {
    let mut b = InstanceBuilder::new(m, InstanceKind::FlowEnergy);
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut t = 0.0;
    for _ in 0..n {
        t += (next() % 100) as f64 / 50.0;
        let w = 1.0 + (next() % 7) as f64;
        let sizes: Vec<f64> = (0..m)
            .map(|_| {
                if next() % 11 == 0 {
                    f64::INFINITY
                } else {
                    0.5 + (next() % 40) as f64 / 4.0
                }
            })
            .collect();
        if sizes.iter().any(|p| p.is_finite()) {
            b = b.weighted_job(t, w, sizes);
        } else {
            b = b.weighted_job(t, w, vec![1.0; m]);
        }
    }
    let horizon = t;
    let mut events = Vec::new();
    for k in 0..m.min(6) {
        let mi = (k * 2 + 1) % m;
        let when = horizon * (k as f64 + 1.0) / 8.0;
        let change = if k % 3 == 2 {
            CapacityChange::Drain
        } else {
            CapacityChange::Crash
        };
        events.push(ev(when, mi as u32, change));
        // Half of them come back later.
        if k % 2 == 0 {
            events.push(ev(when + horizon / 10.0, mi as u32, CapacityChange::Join));
        }
    }
    (b.build().unwrap(), plan(events))
}

#[test]
fn incremental_and_rebuild_index_agree_bitwise_flow() {
    let (inst, p) = churn_fixture(300, 12, 0xC0FFEE);
    let mut logs = Vec::new();
    for mode in [CapacityIndexMode::Incremental, CapacityIndexMode::Rebuild] {
        let mut params = FlowParams::new(0.4);
        params.dispatch = DispatchIndex::Pruned;
        params.capacity_index = mode;
        let out = FlowScheduler::new(params)
            .unwrap()
            .with_capacity(p.clone())
            .run(&inst);
        logs.push(out.log);
    }
    assert_eq!(
        logs[0], logs[1],
        "incremental must match the rebuild oracle"
    );
    // And both must match the linear scan (no index at all).
    let mut params = FlowParams::new(0.4);
    params.dispatch = DispatchIndex::Linear;
    let lin = FlowScheduler::new(params)
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    assert_eq!(logs[0], lin.log, "pruned must match linear under churn");
    let rep = validate_log(
        &inst,
        &lin.log,
        &ValidationConfig::flow_time().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    assert_no_lost_jobs(&inst, &lin.log);
}

#[test]
fn incremental_and_rebuild_index_agree_bitwise_weighted() {
    let (inst, p) = churn_fixture(250, 10, 0xBEEF);
    let mut logs = Vec::new();
    for mode in [CapacityIndexMode::Incremental, CapacityIndexMode::Rebuild] {
        let mut params = WeightedFlowParams::new(0.3);
        params.dispatch = DispatchIndex::Pruned;
        params.capacity_index = mode;
        let out = WeightedFlowScheduler::new(params)
            .unwrap()
            .with_capacity(p.clone())
            .run(&inst);
        logs.push(out.log);
    }
    assert_eq!(logs[0], logs[1]);
    let mut params = WeightedFlowParams::new(0.3);
    params.dispatch = DispatchIndex::Linear;
    let lin = WeightedFlowScheduler::new(params)
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    assert_eq!(logs[0], lin.log);
    let rep = validate_log(
        &inst,
        &lin.log,
        &ValidationConfig::flow_time().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    assert_no_lost_jobs(&inst, &lin.log);
}

#[test]
fn incremental_and_rebuild_index_agree_bitwise_energy() {
    let (inst, p) = churn_fixture(250, 10, 0xD00D);
    let mut logs = Vec::new();
    for mode in [CapacityIndexMode::Incremental, CapacityIndexMode::Rebuild] {
        let mut params = EnergyFlowParams::new(0.3, 2.0);
        params.dispatch = DispatchIndex::Pruned;
        params.capacity_index = mode;
        let out = EnergyFlowScheduler::new(params)
            .unwrap()
            .with_capacity(p.clone())
            .run(&inst);
        logs.push(out.log);
    }
    assert_eq!(logs[0], logs[1]);
    let mut params = EnergyFlowParams::new(0.3, 2.0);
    params.dispatch = DispatchIndex::Linear;
    let lin = EnergyFlowScheduler::new(params)
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    assert_eq!(logs[0], lin.log);
    let rep = validate_log(
        &inst,
        &lin.log,
        &ValidationConfig::flow_energy().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    assert_no_lost_jobs(&inst, &lin.log);
}

#[test]
fn churn_run_without_plan_is_unchanged() {
    // A scheduler with an empty plan must produce byte-identical output
    // to the pre-elastic code path (regression pin for the refactor).
    let (inst, _) = churn_fixture(200, 9, 0xFEED);
    let base = FlowScheduler::with_eps(0.4).unwrap().run(&inst);
    let with_empty = FlowScheduler::with_eps(0.4)
        .unwrap()
        .with_capacity(CapacityPlan::empty())
        .run(&inst);
    assert_eq!(base.log, with_empty.log);
}

#[test]
fn weighted_crash_victims_complete_elsewhere() {
    let inst = InstanceBuilder::new(2, InstanceKind::FlowEnergy)
        .weighted_job(0.0, 5.0, vec![4.0, 6.0])
        .weighted_job(0.1, 2.0, vec![3.0, 5.0])
        .build()
        .unwrap();
    let p = plan(vec![ev(1.0, 0, CapacityChange::Crash)]);
    let out = WeightedFlowScheduler::with_eps(0.9)
        .unwrap()
        .with_capacity(p.clone())
        .run(&inst);
    let rep = validate_log(
        &inst,
        &out.log,
        &ValidationConfig::flow_time().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    assert!(out.log.total_redispatches() >= 2);
    for k in 0..2 {
        if let JobFate::Completed(e) = out.log.fate(JobId(k)) {
            assert_eq!(e.machine, MachineId(1));
        }
    }
}

#[test]
fn energy_crash_partial_keeps_scaled_speed() {
    // Crash-killed energy job that becomes machine-lost must record its
    // partial prefix at the speed-scaled rate, not 1.0.
    let inst = InstanceBuilder::new(2, InstanceKind::FlowEnergy)
        .weighted_job(0.0, 4.0, vec![8.0, f64::INFINITY])
        .weighted_job(0.0, 1.0, vec![f64::INFINITY, 2.0])
        .build()
        .unwrap();
    let p = plan(vec![ev(1.0, 0, CapacityChange::Crash)]);
    let sched = EnergyFlowScheduler::new(EnergyFlowParams::new(0.5, 2.0)).unwrap();
    let gamma = sched.gamma();
    let out = sched.with_capacity(p.clone()).run(&inst);
    let rep = validate_log(
        &inst,
        &out.log,
        &ValidationConfig::flow_energy().with_capacity(p),
    );
    assert!(rep.is_valid(), "invalid: {:?}", rep.errors);
    let rej = out.log.fate(JobId(0)).rejection().expect("machine lost");
    assert_eq!(rej.reason, RejectReason::MachineLost);
    let partial = rej.partial.expect("was running");
    let expected_speed = gamma * 4.0f64.powf(0.5);
    assert!(
        (partial.speed - expected_speed).abs() < 1e-12,
        "partial speed {} vs {expected_speed}",
        partial.speed
    );
}
