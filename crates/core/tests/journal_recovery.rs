//! Kill–recover–diff proptests for the write-ahead event journal: a
//! serve session killed after a random prefix of an 80+-event churn
//! stream (arrive / join / drain / crash / advance), recovered by
//! replaying the journal (+ snapshot cross-check), and fed the rest of
//! the stream must finish with a log **byte-identical** to the
//! uninterrupted run — for all three schedulers, and with the
//! result-neutral execution knobs (`--shards {1,4}` ×
//! `--kernels {chunked,scalar}`) *flipped* between the crashed run and
//! the recovery, pinning "recovery is replay" and "sharding/kernels are
//! pure execution strategy" in one stroke.
//!
//! The streams deliberately include events the session rejects
//! (wrong-arity size rows, out-of-range capacity targets): write-ahead
//! journaling keeps those records, and replay must reproduce each
//! rejection deterministically without drifting the cursor.

use osr_core::flowtime::WeightedFlowParams;
use osr_core::{
    fingerprint, EnergyFlowParams, EnergyFlowSession, FlowParams, FlowSession, JournaledSession,
    KernelMode, ServeSession, WeightedFlowSession,
};
use osr_model::io::log_to_string;
use osr_sim::CapacityChange;
use proptest::prelude::*;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One serve-stream event, pre-resolved to the [`ServeSession`] call it
/// becomes (times are non-decreasing across the whole stream).
#[derive(Debug, Clone)]
enum Event {
    Arrive {
        release: f64,
        weight: f64,
        sizes: Vec<f64>,
    },
    Capacity {
        change: CapacityChange,
        machine: usize,
        time: f64,
    },
    Advance {
        time: f64,
    },
}

/// SplitMix64 — the repo's deterministic test-stream generator.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Generates `n` events over `m` machines: mostly arrivals (finite on a
/// pseudo-random non-empty machine subset), a sprinkling of capacity
/// churn and advances, and occasional *invalid* events (wrong-arity
/// size rows, out-of-range machines) that every session rejects
/// deterministically.
fn gen_events(seed: u64, n: usize, m: usize) -> Vec<Event> {
    let mut t = 0.0_f64;
    let mut events = Vec::with_capacity(n);
    for k in 0..n {
        let r = mix(seed ^ (k as u64).wrapping_mul(0xA24BAED4963EE407));
        t += (r >> 8 & 0xFF) as f64 / 200.0;
        match r % 16 {
            0 | 1 => {
                let change = match r >> 32 & 3 {
                    0 => CapacityChange::Drain,
                    1 => CapacityChange::Crash,
                    _ => CapacityChange::Join,
                };
                events.push(Event::Capacity {
                    change,
                    machine: (r >> 16) as usize % m,
                    time: t,
                });
            }
            2 => events.push(Event::Advance { time: t }),
            3 => {
                // Deterministically rejected: one size too many.
                events.push(Event::Arrive {
                    release: t,
                    weight: 1.0,
                    sizes: vec![1.0; m + 1],
                });
            }
            4 => {
                // Deterministically rejected: machine out of range.
                events.push(Event::Capacity {
                    change: CapacityChange::Drain,
                    machine: m + (r >> 16) as usize % 3,
                    time: t,
                });
            }
            _ => {
                let sizes: Vec<f64> = (0..m)
                    .map(|i| {
                        let s = mix(r ^ ((i as u64) << 32));
                        if s & 3 == 0 {
                            f64::INFINITY
                        } else {
                            0.5 + (s % 1000) as f64 / 250.0
                        }
                    })
                    .collect();
                let mut sizes = sizes;
                let forced = (r >> 40) as usize % m;
                if sizes[forced].is_infinite() {
                    sizes[forced] = 1.0 + (r % 100) as f64 / 50.0;
                }
                events.push(Event::Arrive {
                    release: t,
                    weight: 1.0 + (r >> 24 & 7) as f64,
                    sizes,
                });
            }
        }
    }
    events
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Algo {
    Flow,
    WFlow,
    EnergyFlow,
}

const ALGOS: [Algo; 3] = [Algo::Flow, Algo::WFlow, Algo::EnergyFlow];

impl Algo {
    /// The CLI spec string the journal fingerprint is derived from.
    fn spec(self) -> &'static str {
        match self {
            Algo::Flow => "flow:0.25",
            Algo::WFlow => "wflow:0.25",
            Algo::EnergyFlow => "energyflow:0.25:2",
        }
    }
}

/// The result-neutral execution-knob grid the contract must hold over.
const COMBOS: [(usize, KernelMode); 4] = [
    (1, KernelMode::Scalar),
    (1, KernelMode::Chunked),
    (4, KernelMode::Scalar),
    (4, KernelMode::Chunked),
];

fn build(algo: Algo, m: usize, shards: usize, kernels: KernelMode) -> Box<dyn ServeSession> {
    match algo {
        Algo::Flow => {
            let mut p = FlowParams::new(0.25);
            p.shards = shards;
            p.kernels = kernels;
            Box::new(FlowSession::new(p, m).expect("valid params"))
        }
        Algo::WFlow => {
            let mut p = WeightedFlowParams::new(0.25);
            p.shards = shards;
            p.kernels = kernels;
            Box::new(WeightedFlowSession::new(p, m).expect("valid params"))
        }
        Algo::EnergyFlow => {
            let mut p = EnergyFlowParams::new(0.25, 2.0);
            p.shards = shards;
            p.kernels = kernels;
            Box::new(EnergyFlowSession::new(p, m).expect("valid params"))
        }
    }
}

/// Feeds events through the normal one-by-one ingest path, returning
/// how many the session rejected (rejections leave state untouched and
/// must reproduce identically on replay).
fn feed(sess: &mut dyn ServeSession, events: &[Event]) -> usize {
    let mut rejected = 0;
    for ev in events {
        let r = match ev {
            Event::Arrive {
                release,
                weight,
                sizes,
            } => sess.arrive(*release, *weight, sizes.clone()).map(|_| ()),
            Event::Capacity {
                change,
                machine,
                time,
            } => sess.capacity(*change, *machine, *time),
            Event::Advance { time } => sess.advance(*time),
        };
        if r.is_err() {
            rejected += 1;
        }
    }
    rejected
}

/// The uninterrupted-run oracle: same events, no journal, serial scalar
/// execution, finished to bytes.
fn oracle(algo: Algo, m: usize, events: &[Event]) -> String {
    let mut sess = build(algo, m, 1, KernelMode::Scalar);
    feed(sess.as_mut(), events);
    log_to_string(&sess.finish().expect("oracle finish"))
}

static SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "osr-jrec-{tag}-{}-{}.journal",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
    let mut snap = path.as_os_str().to_owned();
    snap.push(".snap");
    std::fs::remove_file(PathBuf::from(snap)).ok();
}

/// One full kill–recover cycle:
///
/// 1. journal a fresh session (knob combo `a`) through `events[..cut]`
///    and drop it without `finish` — the simulated crash;
/// 2. optionally append a torn half-record to the journal tail;
/// 3. recover into a fresh session with knob combo `b`, asserting the
///    replay reproduced every pre-crash rejection;
/// 4. feed `events[cut..]` and finish — the caller diffs the bytes
///    against the uninterrupted oracle;
/// 5. re-recover the now-complete journal into yet another fresh
///    session and finish immediately — same bytes again.
#[allow(clippy::too_many_arguments)] // a test harness, not an API
fn kill_recover(
    algo: Algo,
    m: usize,
    events: &[Event],
    cut: usize,
    a: (usize, KernelMode),
    b: (usize, KernelMode),
    snap_every: u64,
    torn_tail: bool,
    tag: &str,
) -> Result<(String, String), String> {
    let path = tmp_journal(tag);
    cleanup(&path);
    let fp = fingerprint(algo.spec(), m, &[]);

    let rejected_before_crash = {
        let inner = build(algo, m, a.0, a.1);
        let mut js = JournaledSession::create(inner, &path, fp, snap_every)?;
        feed(&mut js, &events[..cut])
        // Dropped without finish: the crash. Every accepted event was
        // journaled and fsynced before it mutated state.
    };

    if torn_tail {
        // A record the writer died inside: no checksum, no newline.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| e.to_string())?;
        f.write_all(b"arrive 9999 @17.25 w=3 1 2")
            .map_err(|e| e.to_string())?;
    }

    let inner = build(algo, m, b.0, b.1);
    let (mut js, report, _warnings) = JournaledSession::recover(inner, &path, fp, snap_every)?;
    if report.rejected_replays != rejected_before_crash {
        return Err(format!(
            "replay reproduced {} rejection(s), original run had {}",
            report.rejected_replays, rejected_before_crash
        ));
    }
    if torn_tail && report.dropped_torn != 1 {
        return Err(format!(
            "expected the torn tail record to be dropped, got {}",
            report.dropped_torn
        ));
    }
    feed(&mut js, &events[cut..]);
    let recovered = log_to_string(&Box::new(js).finish()?);

    // The journal now mirrors the complete stream: recovering it again
    // and finishing immediately must reproduce the same bytes.
    let inner = build(algo, m, a.0, a.1);
    let (js, report2, _warnings) = JournaledSession::recover(inner, &path, fp, snap_every)?;
    if !report2.snapshot_checked {
        return Err("finish() must leave a snapshot sidecar to cross-check".into());
    }
    let replayed = log_to_string(&Box::new(js).finish()?);
    cleanup(&path);
    Ok((recovered, replayed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The eighth byte-identity diff, randomized: kill after a random
    /// prefix, recover under flipped execution knobs, finish the
    /// stream — bytes must match the uninterrupted run for all three
    /// schedulers. Half the cases also tear the journal tail.
    #[test]
    fn kill_recover_diff_is_byte_identical(
        seed in proptest::arbitrary::any::<u64>(),
        cut_frac in 0.0..1.0f64,
        combo in 0usize..COMBOS.len(),
        torn in proptest::arbitrary::any::<bool>(),
    ) {
        let m = 65; // one rack plus one: 4 requested shards engage 2
        let events = gen_events(seed, 84, m);
        let cut = 1 + (cut_frac * (events.len() - 2) as f64) as usize;
        let crash_knobs = COMBOS[combo];
        let recover_knobs = COMBOS[COMBOS.len() - 1 - combo];
        for algo in ALGOS {
            let want = oracle(algo, m, &events);
            let (recovered, replayed) = kill_recover(
                algo, m, &events, cut, crash_knobs, recover_knobs,
                7, torn, "prop",
            ).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
            prop_assert_eq!(
                &recovered, &want,
                "{:?}: recovered run diverged (cut={}, crash={:?}, recover={:?}, torn={})",
                algo, cut, crash_knobs, recover_knobs, torn
            );
            prop_assert_eq!(
                &replayed, &want,
                "{:?}: full-journal replay diverged (cut={})", algo, cut
            );
        }
    }
}

/// Deterministic multi-rack case: m=130 (three shard-able racks), every
/// knob combo on the recovery side, cuts at the start, middle, and last
/// event of the stream, with the snapshot cadence tight enough that
/// several snapshots land before the kill.
#[test]
fn kill_recover_diff_across_every_knob_combo_m130() {
    let m = 130;
    let events = gen_events(0xD15A57E12EC0, 96, m);
    for algo in ALGOS {
        let want = oracle(algo, m, &events);
        for (i, &knobs) in COMBOS.iter().enumerate() {
            let cut = [1, events.len() / 2, events.len() - 1][i % 3];
            let (recovered, replayed) = kill_recover(
                algo,
                m,
                &events,
                cut,
                COMBOS[COMBOS.len() - 1 - i],
                knobs,
                5,
                i % 2 == 1,
                "m130",
            )
            .unwrap_or_else(|e| panic!("{algo:?} knobs {knobs:?}: {e}"));
            assert_eq!(
                recovered, want,
                "{algo:?}: recovery under knobs {knobs:?} (cut {cut}) diverged"
            );
            assert_eq!(replayed, want, "{algo:?}: full replay diverged");
        }
    }
}

/// Recovering under a *different* configuration (fingerprint drift)
/// must be refused — flipping `--shards`/`--kernels` is allowed, but
/// the algorithm spec and machine count are load-bearing.
#[test]
fn recovery_refuses_a_configuration_change() {
    let m = 6;
    let events = gen_events(0xBAD5EED, 20, m);
    let path = tmp_journal("fpdrift");
    cleanup(&path);
    let fp = fingerprint(Algo::Flow.spec(), m, &[]);
    {
        let inner = build(Algo::Flow, m, 1, KernelMode::Scalar);
        let mut js = JournaledSession::create(inner, &path, fp, 0).unwrap();
        feed(&mut js, &events);
    }
    let wrong = fingerprint(Algo::WFlow.spec(), m, &[]);
    let err = JournaledSession::recover(
        build(Algo::WFlow, m, 1, KernelMode::Scalar),
        &path,
        wrong,
        0,
    )
    .err()
    .expect("fingerprint drift must refuse recovery");
    assert!(
        err.contains("different configuration"),
        "unhelpful refusal: {err}"
    );
    cleanup(&path);
}
