//! Shard-equivalence proptests: the epoch-sharded event driver must be
//! **bit-identical** to the serial loop (`shards = 1`) for every
//! flow-family scheduler, on instances that straddle the 64-machine
//! rack boundary (m ∈ {63, 64, 65} plus genuinely multi-shard pools),
//! under elastic-pool churn and restricted affinity masks.
//!
//! The driver's contract (see `crates/sim/README.md`) is that sharding
//! is a pure execution strategy: cross-shard argmin candidates are
//! reconciled with the serial tie-break (smaller value, then lower
//! machine index), capacity barriers and re-dispatch run serially, and
//! per-job global-array writes commute. These tests check the contract
//! end to end — schedule logs (fates, executions, redispatch counts)
//! and the §2 dual vectors must match to the last bit.
//!
//! PR 9 makes each comparison straddle the **kernel** toggle too: the
//! serial baseline runs the scalar oracle kernels, every sharded run
//! the chunked `[f64;4]` layer, so shard reconciliation and the hot-loop
//! kernels are pinned bit-identical in one stroke.

use osr_core::flowtime::{WeightedFlowParams, WeightedFlowScheduler};
use osr_core::{EnergyFlowParams, EnergyFlowScheduler, FlowParams, FlowScheduler, KernelMode};
use osr_model::{Instance, InstanceBuilder, InstanceKind, MachineId};
use osr_sim::{CapacityChange, CapacityEvent, CapacityPlan};
use proptest::prelude::*;

/// One generated job: a release gap to the previous job, a base size,
/// a weight, an affinity-mask kind, and a seed for the mask bits.
type JobSpec = (f64, f64, f64, u8, u64);

/// One generated churn event: time fraction of the horizon, a machine
/// pick, and the change kind (0 = drain, 1 = crash, 2 = join).
type ChurnSpec = (f64, u64, u8);

/// Machine pools that straddle the rack boundary: one rack minus one,
/// exactly one rack, one rack plus one (the smallest pool where a
/// second shard can engage), and two genuinely multi-shard sizes.
const POOLS: [usize; 5] = [63, 64, 65, 130, 200];

/// SplitMix64 — deterministic per-machine size jitter and mask bits.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Builds the `p_ij` row for one job. `kind % 3` selects the affinity
/// shape: everywhere-eligible, single-rack (all machines of rack
/// `seed % racks`), or a random subset (each machine eligible with
/// probability ~1/2, forced non-empty). Eligible sizes jitter around
/// `base` so the argmin is non-trivial and rack-local minima differ.
fn sizes_for(m: usize, base: f64, kind: u8, seed: u64) -> Vec<f64> {
    let jitter = |i: usize| {
        let r = mix(seed ^ (i as u64).wrapping_mul(0xA24BAED4963EE407)) % 1000;
        base * (0.5 + r as f64 / 1000.0)
    };
    match kind % 3 {
        0 => (0..m).map(jitter).collect(),
        1 => {
            let racks = m.div_ceil(64);
            let rack = (seed % racks as u64) as usize;
            (0..m)
                .map(|i| {
                    if i / 64 == rack {
                        jitter(i)
                    } else {
                        f64::INFINITY
                    }
                })
                .collect()
        }
        _ => {
            let mut row: Vec<f64> = (0..m)
                .map(|i| {
                    if mix(seed ^ ((i as u64) << 32)) & 1 == 0 {
                        jitter(i)
                    } else {
                        f64::INFINITY
                    }
                })
                .collect();
            let forced = (seed % m as u64) as usize;
            if row[forced].is_infinite() {
                row[forced] = jitter(forced);
            }
            row
        }
    }
}

fn build_instance(m: usize, kind: InstanceKind, jobs: &[JobSpec]) -> Instance {
    let mut b = InstanceBuilder::new(m, kind);
    let mut t = 0.0;
    for &(gap, base, weight, mask_kind, seed) in jobs {
        t += gap;
        let sizes = sizes_for(m, base, mask_kind, seed);
        b = if kind == InstanceKind::FlowTime {
            b.job(t, sizes)
        } else {
            b.weighted_job(t, weight, sizes)
        };
    }
    b.build().expect("generated instance is valid")
}

fn build_plan(m: usize, horizon: f64, churn: &[ChurnSpec]) -> CapacityPlan {
    let events = churn
        .iter()
        .map(|&(frac, pick, kind)| CapacityEvent {
            time: frac * horizon,
            machine: MachineId((pick % m as u64) as u32),
            change: match kind % 3 {
                0 => CapacityChange::Drain,
                1 => CapacityChange::Crash,
                _ => CapacityChange::Join,
            },
        })
        .collect();
    CapacityPlan::new(events).expect("generated plan is valid")
}

/// Bit-exact equality for float vectors (0.0 vs -0.0 and NaN patterns
/// included — "byte-identical" means the serialized artifacts match).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn job_strategy() -> impl Strategy<Value = JobSpec> {
    (
        (0.0..0.4f64),
        (0.5..4.0f64),
        (1.0..5.0f64),
        (0u8..3),
        proptest::arbitrary::any::<u64>(),
    )
}

fn churn_strategy() -> impl Strategy<Value = ChurnSpec> {
    ((0.0..1.0f64), proptest::arbitrary::any::<u64>(), (0u8..3))
}

proptest! {
    #[test]
    fn flow_sharded_matches_serial(
        pool in 0usize..POOLS.len(),
        jobs in prop::collection::vec(job_strategy(), 8..48),
        churn in prop::collection::vec(churn_strategy(), 0..8),
    ) {
        let m = POOLS[pool];
        let inst = build_instance(m, InstanceKind::FlowTime, &jobs);
        let plan = build_plan(m, inst.horizon() * 1.2, &churn);
        let run = |shards: usize, kern: KernelMode| {
            let mut p = FlowParams::new(0.25);
            p.shards = shards;
            p.kernels = kern;
            FlowScheduler::new(p)
                .unwrap()
                .with_capacity(plan.clone())
                .run(&inst)
        };
        let serial = run(1, KernelMode::Scalar);
        prop_assert_eq!(serial.effective_shards, 1);
        for shards in [2usize, 4] {
            let out = run(shards, KernelMode::Chunked);
            prop_assert_eq!(
                osr_core::effective_shards(shards, m),
                out.effective_shards
            );
            prop_assert_eq!(&out.log, &serial.log, "log diverged at m={} shards={}", m, shards);
            prop_assert!(bits_eq(&out.dual.lambda, &serial.dual.lambda));
            prop_assert!(bits_eq(&out.dual.exit, &serial.dual.exit));
            prop_assert!(bits_eq(&out.dual.c_tilde, &serial.dual.c_tilde));
            prop_assert_eq!(&out.dual.machine_of, &serial.dual.machine_of);
        }
    }

    #[test]
    fn weighted_flow_sharded_matches_serial(
        pool in 0usize..POOLS.len(),
        jobs in prop::collection::vec(job_strategy(), 8..48),
        churn in prop::collection::vec(churn_strategy(), 0..8),
    ) {
        let m = POOLS[pool];
        let inst = build_instance(m, InstanceKind::FlowEnergy, &jobs);
        let plan = build_plan(m, inst.horizon() * 1.2, &churn);
        let run = |shards: usize, kern: KernelMode| {
            let mut p = WeightedFlowParams::new(0.25);
            p.shards = shards;
            p.kernels = kern;
            WeightedFlowScheduler::new(p)
                .unwrap()
                .with_capacity(plan.clone())
                .run(&inst)
        };
        let serial = run(1, KernelMode::Scalar);
        for shards in [2usize, 4] {
            let out = run(shards, KernelMode::Chunked);
            prop_assert_eq!(&out.log, &serial.log, "log diverged at m={} shards={}", m, shards);
        }
    }

    #[test]
    fn energy_flow_sharded_matches_serial(
        pool in 0usize..POOLS.len(),
        jobs in prop::collection::vec(job_strategy(), 8..48),
        churn in prop::collection::vec(churn_strategy(), 0..8),
    ) {
        let m = POOLS[pool];
        let inst = build_instance(m, InstanceKind::FlowEnergy, &jobs);
        let plan = build_plan(m, inst.horizon() * 1.2, &churn);
        let run = |shards: usize, kern: KernelMode| {
            let mut p = EnergyFlowParams::new(0.5, 3.0);
            p.shards = shards;
            p.kernels = kern;
            EnergyFlowScheduler::new(p)
                .unwrap()
                .with_capacity(plan.clone())
                .run(&inst)
        };
        let serial = run(1, KernelMode::Scalar);
        for shards in [2usize, 4] {
            let out = run(shards, KernelMode::Chunked);
            prop_assert_eq!(&out.log, &serial.log, "log diverged at m={} shards={}", m, shards);
            prop_assert_eq!(out.records.len(), serial.records.len());
            for (a, b) in out.records.iter().zip(&serial.records) {
                prop_assert_eq!(a.machine, b.machine);
                prop_assert!(bits_eq(&[a.lambda, a.start, a.speed, a.exit, a.def_finish],
                                     &[b.lambda, b.start, b.speed, b.exit, b.def_finish]));
            }
        }
    }
}
