//! The generic epoch-sharded event-loop driver.
//!
//! Every scheduler in `osr-core` used to carry its own ~1000-line serial
//! event loop: a three-way merge of arrivals, completions, and capacity
//! events with the invariant ordering **completions ≤ capacity ≤
//! arrivals** at equal instants, plus the re-dispatch and rejection
//! bookkeeping around capacity churn. This module extracts that loop
//! once, behind the [`EventPolicy`] trait, and shards it:
//!
//! * **Shard key** — machines are partitioned by *rack* (the 64-machine
//!   words of [`EligMask`](osr_model::EligMask) / `RackPHat`). A
//!   [`ShardLayout`] groups `q` racks per shard with `q` a power of two,
//!   so every shard base is aligned for the tournament index's
//!   `any_bits`/`range_min` contracts (offset a multiple of the
//!   power-of-two span).
//! * **Epochs** — arrivals are batched into maximal runs of *home* jobs
//!   (jobs whose eligible machines all fall in one shard) bounded by the
//!   next **barrier**: a capacity event, a cross-shard arrival, or the
//!   end of input. Within an epoch, shards run independently — each
//!   processes its own arrivals and completion events in time order.
//! * **Barrier reconciliation** — cross-shard arrivals are resolved
//!   serially at the barrier: every shard reports its local argmin
//!   candidate and the driver keeps the smallest value, breaking ties by
//!   the lowest machine index (shards are scanned in ascending machine
//!   order and a later candidate must be *strictly* smaller to win —
//!   exactly the serial scan's tie-break).
//!
//! # Determinism
//!
//! `--shards N` is byte-identical to the serial loop (`--shards 1`)
//! because every phase-1 mutation is either shard-confined (queues,
//! machine stats, per-shard completion heaps) or job-keyed (log fates,
//! dual variables), so any interleaving of shard executions linearizes
//! to the serial order; the only cross-shard decisions (barrier argmins,
//! capacity re-dispatch) run serially under a deterministic
//! reconciliation rule. Per-shard trace buffers are merged at each
//! barrier by a **stable** sort on time, which fixes one canonical
//! event order regardless of worker scheduling. The shard count
//! therefore never changes results, only wall-clock time — and
//! `shards == 1` *is* the serial oracle: the same driver code runs with
//! one shard covering all racks.

use std::sync::atomic::{AtomicUsize, Ordering};

use osr_model::{
    Job, JobId, MachineId, OnlineSet, PartialRun, RejectReason, Rejection, ScheduleLog,
};
use rayon::prelude::*;

use crate::capacity::{CapacityChange, CapacityEvent, CapacityPlan};
use crate::event::{EventBackend, EventQueue};
use crate::trace::{DecisionEvent, DecisionTrace};

/// Machines per rack: the word width of every bitmask layer.
pub const RACK: usize = 64;

/// Minimum number of batched arrivals in an epoch before phase 1 is
/// dispatched on the rayon pool; smaller epochs run the shards inline
/// (the outputs are identical either way — this is purely an overhead
/// crossover).
pub const EPOCH_PAR_MIN_ARRIVALS: usize = 256;

static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-default shard count picked up by scheduler params
/// constructed after this call (`1` = serial oracle). Values below 1
/// are clamped to 1. Mirrors
/// [`set_default_propagation`](osr_dstruct::tournament::set_default_propagation).
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The current process-default shard count (see [`set_default_shards`]).
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// The shard count a request actually yields at `m` machines: requests
/// are clamped to the rack count (a shard owns at least one 64-machine
/// rack), so small pools collapse to the serial path. Used by the CLI
/// to warn when `--shards N > 1` is ineffective.
pub fn effective_shards(requested: usize, machines: usize) -> usize {
    if machines == 0 {
        return 1;
    }
    ShardLayout::new(machines, requested).shards()
}

/// Partition of `0..m` machines into contiguous shards of whole racks.
///
/// Each shard owns `q` consecutive racks with `q` a power of two
/// (except that the final shard may be shorter in machines), so shard
/// bases are multiples of `q · 64` — aligned for every power-of-two
/// range query the tournament index and `RackPHat` layers support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    m: usize,
    /// Racks per shard (power of two when `shards > 1`).
    q: usize,
    shards: usize,
}

impl ShardLayout {
    /// Lays out `m ≥ 1` machines into at most `requested` shards.
    /// Requests ≤ 1 (or small pools) yield the single-shard serial
    /// layout.
    pub fn new(m: usize, requested: usize) -> Self {
        assert!(m > 0, "shard layout over an empty machine set");
        let racks = m.div_ceil(RACK);
        if requested <= 1 || racks <= 1 {
            return ShardLayout {
                m,
                q: racks,
                shards: 1,
            };
        }
        let q = racks.div_ceil(requested).next_power_of_two();
        ShardLayout {
            m,
            q,
            shards: racks.div_ceil(q),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Racks per shard.
    #[inline]
    pub fn racks_per_shard(&self) -> usize {
        self.q
    }

    /// First (global) machine index of shard `s`.
    #[inline]
    pub fn base(&self, s: usize) -> usize {
        s * self.q * RACK
    }

    /// Number of machines owned by shard `s`.
    #[inline]
    pub fn len(&self, s: usize) -> usize {
        self.m.min((s + 1) * self.q * RACK) - self.base(s)
    }

    /// Shard owning (global) machine `i < m`.
    #[inline]
    pub fn shard_of(&self, machine: usize) -> usize {
        (machine / RACK) / self.q
    }
}

/// A deferred, job-keyed write into the shared [`ScheduleLog`]. Shards
/// buffer these during an epoch; the driver applies them at the next
/// barrier. Because each op is keyed by job and a job lives on exactly
/// one shard between barriers, the application order across shards
/// cannot change the log.
#[derive(Debug, Clone)]
pub enum LogOp {
    /// `ScheduleLog::complete`.
    Complete(JobId, osr_model::Execution),
    /// `ScheduleLog::reject`.
    Reject(JobId, Rejection),
    /// `ScheduleLog::note_redispatch`.
    Redispatch(JobId),
}

/// Per-shard output buffers: the decision-trace fragment and the
/// deferred log writes of the current epoch.
#[derive(Debug, Default)]
pub struct ShardIo {
    /// Trace events in shard-local time order.
    pub trace: DecisionTrace,
    /// Deferred writes into the shared schedule log.
    pub ops: Vec<LogOp>,
}

/// Mutable driver context handed to policy callbacks alongside the
/// shard state.
pub struct ShardCtx<'a> {
    /// The shard's output buffers.
    pub io: &'a mut ShardIo,
    /// The shard's completion-event queue (push future completions
    /// here; payload is `(global machine index, job)`).
    pub completions: &'a mut EventQueue<(usize, JobId)>,
    /// Pool membership. Frozen during an epoch — capacity events are
    /// barriers, so phase-1 code may treat it as immutable.
    pub online: &'a OnlineSet,
}

/// Live queue depths one shard reports to ops surfaces (`osr serve`
/// stats / `osr top`), via [`EventPolicy::probe`]. Purely observational:
/// probing never mutates scheduler state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardProbe {
    /// Jobs pending (dispatched but not yet started) across the shard's
    /// machines.
    pub queued: usize,
    /// Jobs currently running on the shard's machines.
    pub running: usize,
    /// Snapshot of the shard's pruned dispatch index, when one exists
    /// (`None` on the linear-scan path).
    pub index: Option<osr_dstruct::IndexStats>,
}

/// A resolved placement decision handed to [`EventPolicy::dispatch`].
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    /// Dispatch time.
    pub time: f64,
    /// The winning machine (global index).
    pub machine: usize,
    /// The winning λ value.
    pub lambda: f64,
    /// `true` for capacity-churn re-queues (which keep the job's
    /// original dual λ), `false` for first arrivals.
    pub redispatch: bool,
}

/// A scheduling policy pluggable into the epoch-sharded driver.
///
/// Machine indices are **global** everywhere in this trait; shards know
/// their own `base` and translate internally. The driver owns the event
/// ordering, re-dispatch discipline, and reject accounting; the policy
/// owns queue state, argmin bounds, and dual bookkeeping.
pub trait EventPolicy: Sync {
    /// Per-shard mutable state (queues, machine stats, pruned index).
    type Shard: Send;
    /// Whole-run state the policy folds per-epoch results into at each
    /// barrier (dual-variable arrays, job records).
    type Global;

    /// Builds the state for the shard owning machines
    /// `base..base + len`.
    fn make_shard(&self, base: usize, len: usize, online: &OnlineSet) -> Self::Shard;

    /// When `true`, *every* arrival is a barrier (processed serially in
    /// driver order). Policies whose dispatch reads cross-job global
    /// state (e.g. the weighted scheduler's rejection budget) opt in;
    /// completions still drain shard-parallel.
    fn serial_arrivals(&self) -> bool {
        false
    }

    /// The shard's dispatch candidate for `job` at `t`: the (global)
    /// machine minimizing the policy's marginal cost among this shard's
    /// online, eligible machines, with its λ value. `None` if the shard
    /// has no eligible online machine.
    fn candidate(
        &self,
        shard: &mut Self::Shard,
        job: &Job,
        t: f64,
        online: &OnlineSet,
    ) -> Option<(usize, f64)>;

    /// Commits `job` onto the winning machine described by `p`. The
    /// driver has already pushed the `Dispatch` trace event.
    fn dispatch(&self, shard: &mut Self::Shard, cx: &mut ShardCtx<'_>, job: &Job, p: &Placement);

    /// Hook for policies that record per-job results for unplaceable
    /// jobs (the driver has already logged the rejection).
    fn note_unplaced(&self, shard: &mut Self::Shard, job: &Job, t: f64);

    /// Handles the completion event `(machine, job)` at `t` popped from
    /// the shard's queue. Stale events (the run was killed or rejected
    /// since being scheduled) must be detected and ignored here.
    fn complete(
        &self,
        shard: &mut Self::Shard,
        cx: &mut ShardCtx<'_>,
        machine: usize,
        job: JobId,
        t: f64,
    );

    /// Re-synchronizes shard state (e.g. the pruned machine index)
    /// after pool membership changed for (global) `machine`. Called
    /// after `online` already reflects the change, and — for exits —
    /// after [`EventPolicy::evict`].
    fn capacity_sync(
        &self,
        shard: &mut Self::Shard,
        change: CapacityChange,
        machine: usize,
        online: &OnlineSet,
    );

    /// Evicts the displaced jobs of (global) `machine` leaving the pool
    /// at `t` into `victims`: the queued jobs (no partial run) and, on a
    /// crash, the killed running job with its recorded prefix. The
    /// driver sorts victims by job id and re-dispatches them.
    fn evict(
        &self,
        shard: &mut Self::Shard,
        cx: &mut ShardCtx<'_>,
        change: CapacityChange,
        machine: usize,
        t: f64,
        victims: &mut Vec<(JobId, Option<PartialRun>)>,
    );

    /// Folds the shard's per-epoch results into the whole-run state.
    /// Called for every shard at every barrier (ascending shard order).
    fn drain(&self, shard: &mut Self::Shard, global: &mut Self::Global);

    /// Read-only snapshot of the shard's live queue depths for ops
    /// surfaces (see [`ShardProbe`]). The default reports nothing;
    /// policies opt in by overriding.
    fn probe(&self, _shard: &Self::Shard) -> ShardProbe {
        ShardProbe::default()
    }

    /// Appends `(global machine index, pending-queue depth)` pairs for
    /// the shard's machines to `out` — the per-machine load view behind
    /// `osr top`'s load pane. Purely observational, like
    /// [`EventPolicy::probe`]. The default reports nothing; policies
    /// opt in by overriding.
    fn probe_machines(&self, _shard: &Self::Shard, _out: &mut Vec<(usize, usize)>) {}
}

/// One shard's complete runtime state, moved by value through the
/// parallel phase-1 map. Parameterized over the policy's shard type
/// (not the policy) so a [`DriverSession`] can own slots without
/// dragging the policy's lifetime along — streaming callers rebuild
/// short-lived policy values around a long-lived session.
struct ShardSlot<S> {
    shard: S,
    completions: EventQueue<(usize, JobId)>,
    io: ShardIo,
    /// Indices (into the jobs slice) of this epoch's home arrivals.
    arrivals: Vec<usize>,
}

/// Pool-wide live snapshot assembled by [`DriverSession::probe`]:
/// per-shard [`ShardProbe`]s merged with the driver's own counters.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Jobs pending (dispatched, not yet running) across all machines.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Completion events waiting in the shard event queues.
    pub completions_pending: usize,
    /// Machines currently online.
    pub online: usize,
    /// Machine-universe size of the run.
    pub machines: usize,
    /// Arrivals ingested so far.
    pub ingested: usize,
    /// High-water event time the session has processed.
    pub now: f64,
    /// Effective shard count.
    pub shards: usize,
    /// Merged dispatch-index snapshot across shards (`None` when every
    /// shard runs the linear scan).
    pub index: Option<osr_dstruct::IndexStats>,
    /// Per-machine pending-queue depths `(global machine index, depth)`
    /// in ascending machine order, from [`EventPolicy::probe_machines`]
    /// (empty when the policy does not report them).
    pub machine_depths: Vec<(usize, usize)>,
}

/// The epoch-sharded event loop as a **resumable session**: the same
/// machinery [`drive`] runs end-to-end, opened up so arrivals can be
/// fed incrementally — from a replayed trace, from stdin, from a unix
/// socket (`osr serve`) — instead of being known up front.
///
/// A session owns everything that outlives one epoch: the shard slots,
/// the pool membership, the growable [`ScheduleLog`], and the merged
/// [`DecisionTrace`]. The *policy* is passed into every call (policies
/// that borrow the jobs slice are rebuilt per call; the jobs slice
/// itself may grow between calls as long as already-ingested prefixes
/// are never mutated).
///
/// # Determinism contract (online = offline)
///
/// Feeding a session the same jobs and capacity events in timestamp
/// order — in however many `ingest_until`/`capacity` increments —
/// produces a [`ScheduleLog`] **byte-identical** to one [`drive`] call
/// over the whole instance. The argument: epoch boundaries only add
/// flush points, and every flush group's events occupy a time range
/// disjoint from (and ordered before) later groups', so the
/// concatenation of stable per-flush time sorts equals one stable
/// whole-run time sort; per-shard state evolution is unchanged because
/// completions always fire before the next arrival or capacity event
/// at or after their instant, exactly as the batched loop orders them.
/// CI pins this with byte-diffs of `osr serve` replays against
/// offline `osr run` for all three schedulers.
pub struct DriverSession<S> {
    layout: ShardLayout,
    m: usize,
    online: OnlineSet,
    slots: Vec<ShardSlot<S>>,
    log: ScheduleLog,
    trace: DecisionTrace,
    merge: Vec<DecisionEvent>,
    victims: Vec<(JobId, Option<PartialRun>)>,
    serial_arrivals: bool,
    next_arrival: usize,
    now: f64,
}

impl<S: Send> DriverSession<S> {
    /// Opens a session over `machines` machines, all online, with
    /// per-shard completion queues on `backend` and at most
    /// `shards_requested` shards.
    pub fn new<P>(
        policy: &P,
        machines: usize,
        backend: EventBackend,
        shards_requested: usize,
    ) -> Self
    where
        P: EventPolicy<Shard = S>,
    {
        Self::with_online(
            policy,
            machines,
            OnlineSet::all_online(machines),
            backend,
            shards_requested,
        )
    }

    /// Opens a session with an explicit initial pool membership
    /// (machines whose first capacity event is a `join` start offline,
    /// mirroring [`CapacityPlan::initial_online`]).
    pub fn with_online<P>(
        policy: &P,
        machines: usize,
        online: OnlineSet,
        backend: EventBackend,
        shards_requested: usize,
    ) -> Self
    where
        P: EventPolicy<Shard = S>,
    {
        let layout = ShardLayout::new(machines, shards_requested.max(1));
        let slots = (0..layout.shards())
            .map(|s| ShardSlot {
                shard: policy.make_shard(layout.base(s), layout.len(s), &online),
                completions: EventQueue::with_backend(backend),
                io: ShardIo::default(),
                arrivals: Vec::new(),
            })
            .collect();
        DriverSession {
            layout,
            m: machines,
            online,
            slots,
            log: ScheduleLog::new(machines, 0),
            trace: DecisionTrace::new(),
            merge: Vec::new(),
            victims: Vec::new(),
            serial_arrivals: policy.serial_arrivals(),
            next_arrival: 0,
            now: f64::NEG_INFINITY,
        }
    }

    /// Effective shard count.
    pub fn shards(&self) -> usize {
        self.layout.shards()
    }

    /// Current pool membership.
    pub fn online(&self) -> &OnlineSet {
        &self.online
    }

    /// High-water event time processed so far (`-∞` before any event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of arrivals ingested so far.
    pub fn ingested(&self) -> usize {
        self.next_arrival
    }

    /// The in-progress schedule log (read-only; fates land as epochs
    /// flush).
    pub fn log(&self) -> &ScheduleLog {
        &self.log
    }

    /// The merged decision trace so far.
    pub fn trace(&self) -> &DecisionTrace {
        &self.trace
    }

    /// Ingests every arrival in `jobs[ingested..]` whose release is
    /// **strictly** before `tk` (the strict bound mirrors the batch
    /// loop's capacity-precedes-arrivals tie-break), interleaving shard
    /// completions in time order and resolving cross-shard arrivals at
    /// internal barriers. Completions are drained only up to the last
    /// ingested release — later ones wait for the next `ingest_until`,
    /// [`Self::capacity`], or [`Self::into_finished`], which preserves
    /// their ordering against events this session has not seen yet.
    pub fn ingest_until<P>(&mut self, policy: &P, jobs: &[Job], tk: f64, global: &mut P::Global)
    where
        P: EventPolicy<Shard = S>,
    {
        self.log.grow(jobs.len());
        while self.next_arrival < jobs.len() {
            // ---- Epoch assembly: batch home arrivals up to the next
            // cross-shard arrival (or the ingest bound).
            let mut barrier: Option<usize> = None;
            let mut batched = 0usize;
            let mut last_release = f64::NEG_INFINITY;
            while self.next_arrival < jobs.len() {
                let job = &jobs[self.next_arrival];
                if job.release >= tk {
                    break;
                }
                match home_shard(job, &self.layout, self.serial_arrivals) {
                    Some(s) => {
                        self.slots[s].arrivals.push(self.next_arrival);
                        last_release = job.release;
                        self.next_arrival += 1;
                        batched += 1;
                    }
                    None => {
                        barrier = Some(self.next_arrival);
                        break;
                    }
                }
            }
            let horizon = match barrier {
                Some(idx) => jobs[idx].release,
                None => last_release,
            };
            if batched == 0 && barrier.is_none() {
                return; // nothing releases before the bound
            }

            // ---- Phase 1: shard-local arrivals + completions up to
            // the epoch horizon.
            self.run_shards(policy, jobs, horizon, batched);
            self.flush_io(policy, global);
            // Crash-recovery kill site: the serial barrier between the
            // parallel phase and cross-shard resolution. Kill-only (no
            // error path exists here); free when disarmed.
            crate::failpoint::hit_kill("epoch-barrier");

            // ---- Phase 2: resolve a cross-shard arrival serially.
            match barrier {
                Some(idx) => {
                    self.next_arrival = idx + 1;
                    let job = &jobs[idx];
                    self.now = self.now.max(job.release);
                    place_global(
                        policy,
                        &self.layout,
                        &mut self.slots,
                        job,
                        job.release,
                        false,
                        None,
                        &self.online,
                        self.m,
                    );
                    self.flush_io(policy, global);
                }
                None => {
                    self.now = self.now.max(last_release);
                    return;
                }
            }
        }
    }

    /// Ingests every remaining arrival (no release bound).
    pub fn ingest_all<P>(&mut self, policy: &P, jobs: &[Job], global: &mut P::Global)
    where
        P: EventPolicy<Shard = S>,
    {
        self.ingest_until(policy, jobs, f64::INFINITY, global);
    }

    /// Applies one capacity event: completions at or before the event
    /// instant fire first (the batch loop's completions-before-capacity
    /// tie-break), then the pool change lands — joins re-sync the
    /// winning shard's index; drains and crashes evict the machine's
    /// jobs and re-dispatch them globally in ascending job-id order.
    /// Arrivals at or after `ev.time` must be ingested *after* this
    /// call (capacity precedes arrivals at equal instants).
    pub fn capacity<P>(
        &mut self,
        policy: &P,
        jobs: &[Job],
        ev: CapacityEvent,
        global: &mut P::Global,
    ) where
        P: EventPolicy<Shard = S>,
    {
        self.drain_to(policy, ev.time);
        self.flush_io(policy, global);
        self.now = self.now.max(ev.time);
        let mi = ev.machine.idx();
        let s = self.layout.shard_of(mi);
        match ev.change {
            CapacityChange::Join => {
                if self.online.set_online(mi) {
                    policy.capacity_sync(&mut self.slots[s].shard, ev.change, mi, &self.online);
                }
            }
            CapacityChange::Drain | CapacityChange::Crash => {
                if self.online.set_offline(mi) {
                    {
                        let slot = &mut self.slots[s];
                        let mut cx = ShardCtx {
                            io: &mut slot.io,
                            completions: &mut slot.completions,
                            online: &self.online,
                        };
                        policy.evict(
                            &mut slot.shard,
                            &mut cx,
                            ev.change,
                            mi,
                            ev.time,
                            &mut self.victims,
                        );
                        policy.capacity_sync(&mut slot.shard, ev.change, mi, &self.online);
                    }
                    // Deterministic re-dispatch order regardless of
                    // queue discipline: ascending job id.
                    self.victims.sort_by_key(|&(id, _)| id);
                    let displaced = std::mem::take(&mut self.victims);
                    for (vid, partial) in displaced {
                        // The log is caught up (flushed above), so the
                        // redispatch note lands directly.
                        self.log.note_redispatch(vid);
                        place_global(
                            policy,
                            &self.layout,
                            &mut self.slots,
                            &jobs[vid.idx()],
                            ev.time,
                            true,
                            partial,
                            &self.online,
                            self.m,
                        );
                    }
                }
            }
        }
        self.flush_io(policy, global);
    }

    /// Fires every completion at or before `t` and folds the results
    /// out, without ingesting anything — lets a long-running serve
    /// instance surface up-to-date stats between arrivals. `t` must not
    /// exceed the release of any arrival ingested later (stay at or
    /// below the stream's high-water time and this holds by
    /// construction).
    pub fn advance<P>(&mut self, policy: &P, t: f64, global: &mut P::Global)
    where
        P: EventPolicy<Shard = S>,
    {
        self.drain_to(policy, t);
        self.flush_io(policy, global);
        self.now = self.now.max(t);
    }

    /// Drains every outstanding completion, flushes, and returns the
    /// finished artifacts: the log (caller calls
    /// [`ScheduleLog::finish`]), the merged trace, and the effective
    /// shard count. Every arrival must have been ingested first.
    pub fn into_finished<P>(
        mut self,
        policy: &P,
        global: &mut P::Global,
    ) -> (ScheduleLog, DecisionTrace, usize)
    where
        P: EventPolicy<Shard = S>,
    {
        self.drain_to(policy, f64::INFINITY);
        self.flush_io(policy, global);
        (self.log, self.trace, self.layout.shards())
    }

    /// Pool-wide live snapshot: per-shard [`EventPolicy::probe`]s plus
    /// the driver's own counters, merged.
    pub fn probe<P>(&self, policy: &P) -> SessionStats
    where
        P: EventPolicy<Shard = S>,
    {
        let mut stats = SessionStats {
            machines: self.m,
            online: self.online.online_count(),
            ingested: self.next_arrival,
            now: self.now,
            shards: self.layout.shards(),
            ..SessionStats::default()
        };
        for slot in &self.slots {
            let p = policy.probe(&slot.shard);
            stats.queued += p.queued;
            stats.running += p.running;
            stats.completions_pending += slot.completions.len();
            policy.probe_machines(&slot.shard, &mut stats.machine_depths);
            if let Some(ix) = p.index {
                match &mut stats.index {
                    Some(acc) => acc.merge(&ix),
                    None => stats.index = Some(ix),
                }
            }
        }
        stats
    }

    /// Phase 1 over all shards: identical output inline or on the
    /// rayon pool; parallelism only pays for itself on large batches.
    fn run_shards<P>(&mut self, policy: &P, jobs: &[Job], horizon: f64, batched: usize)
    where
        P: EventPolicy<Shard = S>,
    {
        let DriverSession {
            layout,
            m,
            online,
            slots,
            ..
        } = self;
        if layout.shards() > 1 && batched >= EPOCH_PAR_MIN_ARRIVALS {
            let moved = std::mem::take(slots);
            *slots = moved
                .into_par_iter()
                .map(|mut slot| {
                    run_shard(policy, &mut slot, jobs, online, horizon, *m);
                    slot
                })
                .collect();
        } else {
            for slot in slots.iter_mut() {
                run_shard(policy, slot, jobs, online, horizon, *m);
            }
        }
    }

    /// Fires completions at or before `t` on every shard (no flush).
    fn drain_to<P>(&mut self, policy: &P, t: f64)
    where
        P: EventPolicy<Shard = S>,
    {
        for slot in self.slots.iter_mut() {
            let ShardSlot {
                shard,
                completions,
                io,
                ..
            } = slot;
            while let Some(tc) = completions.peek_time() {
                if tc > t {
                    break;
                }
                let (tc, (mi, jid)) = completions.pop().expect("peeked event");
                let mut cx = ShardCtx {
                    io,
                    completions,
                    online: &self.online,
                };
                policy.complete(shard, &mut cx, mi, jid, tc);
            }
        }
    }

    /// Applies buffered log ops, folds epoch results into the global
    /// state, and merges trace fragments (stable time sort).
    fn flush_io<P>(&mut self, policy: &P, global: &mut P::Global)
    where
        P: EventPolicy<Shard = S>,
    {
        flush(
            policy,
            &mut self.slots,
            &mut self.log,
            &mut self.trace,
            global,
            &mut self.merge,
        );
    }
}

/// Runs the full event loop for `jobs` over `machines` machines under
/// `plan`, with per-shard completion queues on `backend` and at most
/// `shards_requested` shards. Returns the completed log (caller calls
/// `finish`), the merged decision trace, and the effective shard count.
///
/// This is now a thin batch wrapper over [`DriverSession`]: capacity
/// events partition the timeline, arrivals are ingested up to each
/// event, and the session is finished once both streams are exhausted.
pub fn drive<P: EventPolicy>(
    policy: &P,
    jobs: &[Job],
    machines: usize,
    plan: &CapacityPlan,
    backend: EventBackend,
    shards_requested: usize,
    global: &mut P::Global,
) -> (ScheduleLog, DecisionTrace, usize) {
    plan.check_machines(machines)
        .expect("capacity plan fits the instance");
    let online = plan.initial_online(machines);
    let mut session =
        DriverSession::with_online(policy, machines, online, backend, shards_requested);
    for ev in plan.events() {
        session.ingest_until(policy, jobs, ev.time, global);
        session.capacity(policy, jobs, *ev, global);
    }
    session.ingest_all(policy, jobs, global);
    session.into_finished(policy, global)
}

/// Classifies an arrival: `Some(s)` if every eligible machine lies in
/// shard `s` (shard-local dispatch is then provably the global argmin),
/// `None` if the job must barrier for cross-shard reconciliation.
fn home_shard(job: &Job, layout: &ShardLayout, serial_arrivals: bool) -> Option<usize> {
    if layout.shards() == 1 {
        return Some(0);
    }
    if !job.has_eligible() {
        // Rejected wherever it lands; route through shard 0.
        return Some(0);
    }
    if serial_arrivals {
        return None;
    }
    let (_, summary) = job.elig().word_layers()?;
    let mut first = None;
    let mut last = 0usize;
    for (k, &sw) in summary.iter().enumerate() {
        if sw != 0 {
            if first.is_none() {
                first = Some(k * RACK + sw.trailing_zeros() as usize);
            }
            last = k * RACK + (RACK - 1) - sw.leading_zeros() as usize;
        }
    }
    let first = first?;
    let (a, b) = (first / layout.q, last / layout.q);
    (a == b).then_some(a)
}

/// Phase 1 for one shard: process this epoch's home arrivals in time
/// order, interleaving the shard's completion events, then drain
/// remaining completions up to the barrier (completions at the barrier
/// instant fire *before* the barrier, matching the serial tie-break).
fn run_shard<P: EventPolicy>(
    policy: &P,
    slot: &mut ShardSlot<P::Shard>,
    jobs: &[Job],
    online: &OnlineSet,
    horizon: f64,
    m: usize,
) {
    let ShardSlot {
        shard,
        completions,
        io,
        arrivals,
    } = slot;
    for &ai in arrivals.iter() {
        let job = &jobs[ai];
        let t = job.release;
        while let Some(tc) = completions.peek_time() {
            if tc > t {
                break;
            }
            let (tc, (mi, jid)) = completions.pop().expect("peeked event");
            let mut cx = ShardCtx {
                io,
                completions,
                online,
            };
            policy.complete(shard, &mut cx, mi, jid, tc);
        }
        let cand = if job.has_eligible() {
            policy.candidate(shard, job, t, online)
        } else {
            None
        };
        let mut cx = ShardCtx {
            io,
            completions,
            online,
        };
        commit(policy, shard, &mut cx, job, t, false, None, cand, m);
    }
    arrivals.clear();
    while let Some(tc) = completions.peek_time() {
        if tc > horizon {
            break;
        }
        let (tc, (mi, jid)) = completions.pop().expect("peeked event");
        let mut cx = ShardCtx {
            io,
            completions,
            online,
        };
        policy.complete(shard, &mut cx, mi, jid, tc);
    }
}

/// Applies every shard's buffered log ops, folds per-epoch results into
/// the whole-run state, and merges the per-shard trace fragments into
/// the global trace by a stable time sort (canonical order independent
/// of worker scheduling).
fn flush<P: EventPolicy>(
    policy: &P,
    slots: &mut [ShardSlot<P::Shard>],
    log: &mut ScheduleLog,
    trace: &mut DecisionTrace,
    global: &mut P::Global,
    merge: &mut Vec<DecisionEvent>,
) {
    if let [only] = slots {
        for op in only.io.ops.drain(..) {
            apply(log, op);
        }
        policy.drain(&mut only.shard, global);
        for ev in only.io.trace.drain_events() {
            trace.push(ev);
        }
        return;
    }
    merge.clear();
    for slot in slots.iter_mut() {
        for op in slot.io.ops.drain(..) {
            apply(log, op);
        }
        policy.drain(&mut slot.shard, global);
        merge.extend(slot.io.trace.drain_events());
    }
    merge.sort_by(|a, b| a.time().total_cmp(&b.time()));
    for ev in merge.drain(..) {
        trace.push(ev);
    }
}

fn apply(log: &mut ScheduleLog, op: LogOp) {
    match op {
        LogOp::Complete(j, e) => log.complete(j, e),
        LogOp::Reject(j, r) => log.reject(j, r),
        LogOp::Redispatch(j) => log.note_redispatch(j),
    }
}

/// Serial cross-shard placement: collect every shard's candidate in
/// ascending machine order, keep the first strictly-smallest λ (the
/// global lowest-index argmin), and commit into the winning shard.
#[allow(clippy::too_many_arguments)]
fn place_global<P: EventPolicy>(
    policy: &P,
    layout: &ShardLayout,
    slots: &mut [ShardSlot<P::Shard>],
    job: &Job,
    t: f64,
    redispatch: bool,
    lost_partial: Option<PartialRun>,
    online: &OnlineSet,
    m: usize,
) {
    let cand = if job.has_eligible() {
        let mut best: Option<(usize, f64)> = None;
        for slot in slots.iter_mut() {
            if let Some((mi, lam)) = policy.candidate(&mut slot.shard, job, t, online) {
                if best.is_none_or(|(_, bl)| lam < bl) {
                    best = Some((mi, lam));
                }
            }
        }
        best
    } else {
        None
    };
    let target = cand.map_or(0, |(mi, _)| layout.shard_of(mi));
    let slot = &mut slots[target];
    let mut cx = ShardCtx {
        io: &mut slot.io,
        completions: &mut slot.completions,
        online,
    };
    commit(
        policy,
        &mut slot.shard,
        &mut cx,
        job,
        t,
        redispatch,
        lost_partial,
        cand,
        m,
    );
}

/// Shared placement epilogue: dispatch to the winning machine, or
/// record the standard rejection — [`RejectReason::Ineligible`] for a
/// job with no eligible machine anywhere,
/// [`RejectReason::MachineLost`] (with any interrupted prefix) for a
/// job stranded by churn. This is the accounting the three schedulers
/// previously triplicated.
#[allow(clippy::too_many_arguments)]
fn commit<P: EventPolicy>(
    policy: &P,
    shard: &mut P::Shard,
    cx: &mut ShardCtx<'_>,
    job: &Job,
    t: f64,
    redispatch: bool,
    lost_partial: Option<PartialRun>,
    cand: Option<(usize, f64)>,
    m: usize,
) {
    match cand {
        Some((mi, lam)) => {
            cx.io.trace.push(DecisionEvent::Dispatch {
                time: t,
                job: job.id,
                machine: MachineId(mi as u32),
                lambda: lam,
                candidates: m,
            });
            policy.dispatch(
                shard,
                cx,
                job,
                &Placement {
                    time: t,
                    machine: mi,
                    lambda: lam,
                    redispatch,
                },
            );
        }
        None => {
            let (reason, partial) = if job.has_eligible() {
                (RejectReason::MachineLost, lost_partial)
            } else {
                (RejectReason::Ineligible, None)
            };
            let machine = partial.as_ref().map_or(MachineId(0), |p| p.machine);
            cx.io.ops.push(LogOp::Reject(
                job.id,
                Rejection {
                    time: t,
                    reason,
                    partial,
                },
            ));
            cx.io.trace.push(DecisionEvent::Reject {
                time: t,
                job: job.id,
                machine,
                reason,
                counter: 0.0,
            });
            policy.note_unplaced(shard, job, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::EligMask;

    #[test]
    fn layout_single_shard_covers_everything() {
        for m in [1, 63, 64, 65, 4096] {
            let l = ShardLayout::new(m, 1);
            assert_eq!(l.shards(), 1);
            assert_eq!(l.base(0), 0);
            assert_eq!(l.len(0), m);
        }
    }

    #[test]
    fn layout_small_pools_collapse_to_serial() {
        for m in [1, 63, 64] {
            assert_eq!(ShardLayout::new(m, 4).shards(), 1, "m={m}");
            assert_eq!(effective_shards(4, m), 1);
        }
        assert_eq!(effective_shards(2, 65), 2);
        assert_eq!(effective_shards(4, 0), 1);
    }

    #[test]
    fn layout_shards_are_aligned_and_cover() {
        for (m, req) in [(65, 2), (130, 2), (130, 4), (4096, 8), (16384, 8), (200, 3)] {
            let l = ShardLayout::new(m, req);
            assert!(l.shards() <= req.max(1), "m={m} req={req}");
            assert!(l.racks_per_shard().is_power_of_two());
            let mut covered = 0;
            for s in 0..l.shards() {
                assert_eq!(l.base(s), covered, "contiguous");
                assert_eq!(l.base(s) % (l.racks_per_shard() * RACK), 0, "aligned base");
                assert!(l.len(s) > 0, "no empty shard");
                for i in l.base(s)..l.base(s) + l.len(s) {
                    assert_eq!(l.shard_of(i), s);
                }
                covered += l.len(s);
            }
            assert_eq!(covered, m, "m={m} req={req}");
        }
    }

    #[test]
    fn layout_request_beyond_racks_clamps() {
        let l = ShardLayout::new(130, 64);
        assert_eq!(l.shards(), 3);
        assert_eq!(l.racks_per_shard(), 1);
    }

    fn job_with_sizes(id: u32, sizes: Vec<f64>) -> Job {
        Job::new(id, 0.0, sizes)
    }

    #[test]
    fn home_shard_classification() {
        let layout = ShardLayout::new(200, 4); // q=1: shard per rack
        assert_eq!(layout.shards(), 4);
        // All machines eligible: must barrier.
        let mut sizes = vec![1.0; 200];
        let all = job_with_sizes(0, sizes.clone());
        assert!(matches!(all.elig(), EligMask::All));
        assert_eq!(home_shard(&all, &layout, false), None);
        // Only rack 1 eligible: home shard 1.
        sizes = vec![f64::INFINITY; 200];
        sizes[64] = 1.0;
        sizes[100] = 2.0;
        let local = job_with_sizes(1, sizes.clone());
        assert_eq!(home_shard(&local, &layout, false), Some(1));
        assert_eq!(
            home_shard(&local, &layout, true),
            None,
            "serial arrivals barrier"
        );
        // Racks 0 and 3 eligible: cross-shard.
        sizes = vec![f64::INFINITY; 200];
        sizes[0] = 1.0;
        sizes[199] = 1.0;
        let cross = job_with_sizes(2, sizes.clone());
        assert_eq!(home_shard(&cross, &layout, false), None);
        // Nowhere eligible: routed to shard 0 for the shared rejection.
        let nowhere = job_with_sizes(3, vec![f64::INFINITY; 200]);
        assert_eq!(home_shard(&nowhere, &layout, false), Some(0));
        // Wider grouping (q=2): racks 2 and 3 share shard 1.
        let grouped = ShardLayout::new(200, 2);
        assert_eq!(grouped.shards(), 2);
        assert_eq!(home_shard(&cross, &grouped, false), None);
        sizes = vec![f64::INFINITY; 200];
        sizes[130] = 1.0;
        sizes[199] = 1.0;
        let hi = job_with_sizes(4, sizes.clone());
        assert_eq!(home_shard(&hi, &grouped, false), Some(1));
        // Single shard: everything is home.
        let serial = ShardLayout::new(200, 1);
        assert_eq!(home_shard(&cross, &serial, false), Some(0));
    }
}
