//! ASCII Gantt rendering of finished schedules.
//!
//! Used by the examples and invaluable when debugging rejection-rule
//! interactions. One row per machine; completed runs render as the job
//! id, partial (rejected) runs as `x`.

use osr_model::{FinishedLog, Instance};

/// Renders `log` as an ASCII Gantt chart with `width` columns covering
/// `[0, horizon]` (horizon = latest busy instant).
pub fn render_gantt(instance: &Instance, log: &FinishedLog, width: usize) -> String {
    let width = width.max(10);
    let busy = log.busy_intervals();
    let horizon = busy
        .iter()
        .map(|&(_, _, _, end, _)| end)
        .fold(0.0f64, f64::max);
    if horizon <= 0.0 {
        return String::from("(empty schedule)\n");
    }
    let scale = width as f64 / horizon;
    let mut out = String::new();
    out.push_str(&format!("time 0 .. {horizon:.3} ({width} cols)\n"));
    for m in 0..instance.machines() {
        let mut row: Vec<char> = vec!['.'; width];
        for &(machine, job, start, end, _speed) in &busy {
            if machine.idx() != m {
                continue;
            }
            let a = ((start * scale) as usize).min(width - 1);
            let b = (((end * scale).ceil() as usize).max(a + 1)).min(width);
            let rejected = log.fate(job).is_rejected();
            let label: Vec<char> = if rejected {
                vec!['x']
            } else {
                format!("{}", job.0).chars().collect()
            };
            for (k, slot) in row[a..b].iter_mut().enumerate() {
                *slot = label[k % label.len()];
            }
        }
        out.push_str(&format!("m{m:<3}|"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{
        Execution, InstanceBuilder, InstanceKind, JobId, MachineId, PartialRun, RejectReason,
        Rejection, ScheduleLog,
    };

    #[test]
    fn renders_rows_per_machine() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![4.0, 8.0])
            .job(0.0, vec![8.0, 4.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(2, 2);
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(0),
                start: 0.0,
                completion: 4.0,
                speed: 1.0,
            },
        );
        log.complete(
            JobId(1),
            Execution {
                machine: MachineId(1),
                start: 0.0,
                completion: 4.0,
                speed: 1.0,
            },
        );
        let fin = log.finish().unwrap();
        let g = render_gantt(&inst, &fin, 40);
        assert!(g.contains("m0"));
        assert!(g.contains("m1"));
        assert!(g.lines().count() >= 3);
    }

    #[test]
    fn rejected_runs_render_as_x() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![4.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.reject(
            JobId(0),
            Rejection {
                time: 2.0,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 0.0,
                    end: 2.0,
                    speed: 1.0,
                }),
            },
        );
        let g = render_gantt(&inst, &log.finish().unwrap(), 20);
        assert!(g.contains('x'));
    }

    #[test]
    fn empty_schedule_handled() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![1.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.reject(
            JobId(0),
            Rejection {
                time: 0.0,
                reason: RejectReason::Immediate,
                partial: None,
            },
        );
        let g = render_gantt(&inst, &log.finish().unwrap(), 20);
        assert!(g.contains("empty"));
    }
}
