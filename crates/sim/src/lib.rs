//! # osr-sim — discrete-event simulation substrate
//!
//! The paper's algorithms are *online*: decisions happen at job arrivals
//! and at machine-idle instants. This crate provides the event-driven
//! machinery those implementations (and all baselines) share, plus the
//! independent correctness layer that makes experiment results
//! trustworthy:
//!
//! * [`event::EventQueue`] — time-ordered queue with deterministic FIFO
//!   tie-breaking and a selectable backend ([`event::EventBackend`]:
//!   `std::collections::BinaryHeap` by default, the `osr-dstruct`
//!   pairing heap as a benchmarked alternative — both observe the same
//!   ordering contract, so simulations are backend-independent);
//! * [`scheduler::OnlineScheduler`] — the trait every policy implements
//!   (`osr-core` algorithms and `osr-baselines` comparators alike);
//! * [`driver`] — the generic epoch-sharded event loop all `osr-core`
//!   schedulers run on via [`driver::EventPolicy`]: one implementation
//!   of the completions ≤ capacity ≤ arrivals ordering, the re-dispatch
//!   discipline, and the shared reject accounting, with rack-partitioned
//!   shard parallelism (`shards = 1` is the byte-identical serial
//!   oracle);
//! * [`failpoint`] — the fault-injection registry crash-recovery tests
//!   arm to kill or error the consumer at chosen protocol points
//!   (mid-batch, pre-fsync, the epoch barrier, snapshot write);
//!   disarmed cost is one relaxed atomic load per site;
//! * [`capacity`] — the elastic machine pool: join/drain/crash event
//!   streams ([`capacity::CapacityPlan`]) replayed alongside arrivals,
//!   with failure-trace parsing and the online-window vocabulary the
//!   validator uses to audit churn runs;
//! * [`validate`] — checks a [`osr_model::log::FinishedLog`] against its
//!   instance for **every** model invariant: non-preemption is implied by
//!   the single-interval log format, so the validator focuses on release
//!   respect, machine exclusivity, volume conservation, deadline
//!   feasibility and speed sanity;
//! * [`trace`] — optional decision traces (dispatch/start/reject events
//!   with their `λ` values) for audits and the dual-feasibility
//!   experiments;
//! * [`gantt`] — ASCII Gantt rendering for examples and debugging;
//! * [`stats`] — summary statistics (percentiles, histograms, machine
//!   utilization) used by the experiment tables.
//!
//! Separating policy (who runs where, when) from mechanism (what a valid
//! non-preemptive schedule even is) means a bug in an algorithm cannot
//! silently corrupt an experiment: every log is re-validated from scratch
//! before metrics are reported.

#![warn(missing_docs)]

pub mod capacity;
pub mod driver;
pub mod event;
pub mod failpoint;
pub mod gantt;
pub mod scheduler;
pub mod stats;
pub mod trace;
pub mod validate;

pub use capacity::{CapacityChange, CapacityEvent, CapacityPlan, OnlineWindow};
pub use driver::{
    default_shards, drive, effective_shards, set_default_shards, DriverSession, EventPolicy, LogOp,
    SessionStats, ShardCtx, ShardIo, ShardLayout, ShardProbe,
};
pub use event::{EventBackend, EventQueue};
pub use failpoint::{FailAction, FailHit, KILL_EXIT_CODE};
pub use gantt::render_gantt;
pub use scheduler::{
    reject_ineligible, reject_machine_lost, run_validated, OnlineScheduler, SimError,
};
pub use stats::{MachineUtilization, SummaryStats};
pub use trace::{DecisionEvent, DecisionTrace};
pub use validate::{validate_log, ValidationConfig, ValidationError, ValidationReport};
