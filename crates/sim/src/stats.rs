//! Summary statistics for experiment tables.

use osr_model::{FinishedLog, Instance, JobFate};

/// Order statistics and moments of a sample of non-negative values.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Sample size.
    pub count: usize,
    /// Sum of values.
    pub sum: f64,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Minimum (0 for empty samples).
    pub min: f64,
    /// Maximum (0 for empty samples).
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl SummaryStats {
    /// Computes statistics of `values` (consumed; sorted internally).
    pub fn from_values(mut values: Vec<f64>) -> Self {
        if values.is_empty() {
            return SummaryStats {
                count: 0,
                sum: 0.0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                stddev: 0.0,
            };
        }
        values.sort_by(f64::total_cmp);
        let count = values.len();
        let sum: f64 = values.iter().sum();
        let mean = sum / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        SummaryStats {
            count,
            sum,
            mean,
            min: values[0],
            max: values[count - 1],
            p50: percentile(&values, 0.50),
            p95: percentile(&values, 0.95),
            p99: percentile(&values, 0.99),
            stddev: var.sqrt(),
        }
    }

    /// Flow-time statistics over completed jobs of a log.
    pub fn flows(instance: &Instance, log: &FinishedLog) -> Self {
        let flows: Vec<f64> = log
            .iter()
            .filter_map(|(id, fate)| match fate {
                JobFate::Completed(e) => Some(e.completion - instance.job(id).release),
                JobFate::Rejected(_) => None,
            })
            .collect();
        Self::from_values(flows)
    }
}

/// Nearest-rank percentile on a sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Busy-time fraction per machine over `[0, makespan]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineUtilization {
    /// Busy time per machine.
    pub busy: Vec<f64>,
    /// Latest busy instant across machines.
    pub makespan: f64,
}

impl MachineUtilization {
    /// Computes utilization from a finished log.
    pub fn compute(instance: &Instance, log: &FinishedLog) -> Self {
        let mut busy = vec![0.0f64; instance.machines()];
        let mut makespan = 0.0f64;
        for (machine, _job, start, end, _speed) in log.busy_intervals() {
            busy[machine.idx()] += end - start;
            makespan = makespan.max(end);
        }
        MachineUtilization { busy, makespan }
    }

    /// Utilization fraction of machine `i` (0 when nothing ran).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.busy[i] / self.makespan
        }
    }

    /// Mean utilization over machines.
    pub fn mean_fraction(&self) -> f64 {
        if self.busy.is_empty() {
            0.0
        } else {
            self.busy.iter().map(|_| ()).count(); // length check only
            (0..self.busy.len()).map(|i| self.fraction(i)).sum::<f64>() / self.busy.len() as f64
        }
    }
}

/// Fixed-width histogram over `[0, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket counts.
    pub buckets: Vec<usize>,
    /// Upper bound of the value range.
    pub max: f64,
}

impl Histogram {
    /// Builds a histogram with `buckets` buckets covering `[0, max(values)]`.
    pub fn from_values(values: &[f64], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let max = values.iter().copied().fold(0.0f64, f64::max);
        let mut counts = vec![0usize; buckets];
        if max > 0.0 {
            for &v in values {
                let b = ((v / max) * buckets as f64) as usize;
                counts[b.min(buckets - 1)] += 1;
            }
        } else {
            counts[0] = values.len();
        }
        Histogram {
            buckets: counts,
            max,
        }
    }

    /// Renders as a one-line-per-bucket bar chart.
    pub fn render(&self) -> String {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            let lo = self.max * i as f64 / self.buckets.len() as f64;
            let hi = self.max * (i + 1) as f64 / self.buckets.len() as f64;
            let bar = "#".repeat(c * 40 / peak);
            out.push_str(&format!("[{lo:10.3},{hi:10.3}) {c:6} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{Execution, InstanceBuilder, InstanceKind, JobId, MachineId, ScheduleLog};

    #[test]
    fn summary_of_known_sample() {
        let s = SummaryStats::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_zeroes() {
        let s = SummaryStats::from_values(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 100.0);
        assert_eq!(percentile(&v, 0.99), 100.0);
        assert_eq!(percentile(&v, 0.10), 10.0);
    }

    #[test]
    fn utilization_computed_from_log() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![4.0, 4.0])
            .job(0.0, vec![2.0, 2.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(2, 2);
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(0),
                start: 0.0,
                completion: 4.0,
                speed: 1.0,
            },
        );
        log.complete(
            JobId(1),
            Execution {
                machine: MachineId(1),
                start: 0.0,
                completion: 2.0,
                speed: 1.0,
            },
        );
        let u = MachineUtilization::compute(&inst, &log.finish().unwrap());
        assert_eq!(u.makespan, 4.0);
        assert_eq!(u.fraction(0), 1.0);
        assert_eq!(u.fraction(1), 0.5);
        assert_eq!(u.mean_fraction(), 0.75);
    }

    #[test]
    fn histogram_buckets_cover_range() {
        let h = Histogram::from_values(&[0.1, 0.2, 0.9, 1.0], 2);
        assert_eq!(h.buckets.iter().sum::<usize>(), 4);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert!(h.render().contains('#'));
    }

    #[test]
    fn flows_skip_rejected_jobs() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![2.0])
            .job(0.0, vec![3.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 2);
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(0),
                start: 0.0,
                completion: 2.0,
                speed: 1.0,
            },
        );
        log.reject(
            JobId(1),
            osr_model::Rejection {
                time: 0.0,
                reason: osr_model::RejectReason::Immediate,
                partial: None,
            },
        );
        let s = SummaryStats::flows(&inst, &log.finish().unwrap());
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 2.0);
    }
}
