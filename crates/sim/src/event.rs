//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Debug, Clone)]
struct Entry<P> {
    time: f64,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Min-queue of `(time, payload)` events.
///
/// Events at equal times pop in **insertion order** (FIFO), which makes
/// every simulation in the workspace deterministic — a requirement both
/// for reproducible experiments and for the adaptive adversaries of
/// Lemma 1/Lemma 2, whose constructions reason about the exact order in
/// which the algorithm observes events.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Reverse<Entry<P>>>,
    seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), seq: 0 }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at `time`. Panics on NaN times (programming
    /// error — the model never produces them).
    pub fn push(&mut self, time: f64, payload: P) {
        assert!(!time.is_nan(), "event time is NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, P)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn peek_time_sees_min() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7.0, ());
        q.push(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaving_preserves_fifo_within_time() {
        let mut q = EventQueue::new();
        q.push(1.0, "first@1");
        q.push(0.5, "only@0.5");
        q.push(1.0, "second@1");
        assert_eq!(q.pop().unwrap().1, "only@0.5");
        assert_eq!(q.pop().unwrap().1, "first@1");
        assert_eq!(q.pop().unwrap().1, "second@1");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(1.0, ());
        q.clear();
        assert!(q.is_empty());
    }
}
