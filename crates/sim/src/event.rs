//! Time-ordered event queue with deterministic tie-breaking and a
//! selectable heap backend.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use osr_dstruct::PairingHeap;

/// One scheduled event.
#[derive(Debug, Clone)]
struct Entry<P> {
    time: f64,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Which heap implementation backs an [`EventQueue`].
///
/// Both backends observe the identical ordering contract (min time,
/// FIFO within a time), so simulations are bit-identical across them;
/// the `event_queue` Criterion bench compares their throughput on the
/// push/pop burst pattern event-driven schedulers produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventBackend {
    /// `std::collections::BinaryHeap` (implicit d-ary array heap).
    #[default]
    BinaryHeap,
    /// `osr_dstruct::PairingHeap` (O(1) insert/meld, amortized
    /// O(log n) pop).
    PairingHeap,
}

#[derive(Debug)]
enum Heap<P> {
    Binary(BinaryHeap<Reverse<Entry<P>>>),
    Pairing(PairingHeap<Entry<P>>),
}

/// Min-queue of `(time, payload)` events.
///
/// Events at equal times pop in **insertion order** (FIFO), which makes
/// every simulation in the workspace deterministic — a requirement both
/// for reproducible experiments and for the adaptive adversaries of
/// Lemma 1/Lemma 2, whose constructions reason about the exact order in
/// which the algorithm observes events. The guarantee holds for every
/// [`EventBackend`].
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: Heap<P>,
    seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Empty queue on the default backend.
    pub fn new() -> Self {
        Self::with_backend(EventBackend::default())
    }

    /// Empty queue on an explicit backend.
    pub fn with_backend(backend: EventBackend) -> Self {
        let heap = match backend {
            EventBackend::BinaryHeap => Heap::Binary(BinaryHeap::new()),
            EventBackend::PairingHeap => Heap::Pairing(PairingHeap::new()),
        };
        EventQueue { heap, seq: 0 }
    }

    /// Empty queue with reserved capacity (meaningful for the binary
    /// backend; the pairing heap allocates per node).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Heap::Binary(BinaryHeap::with_capacity(cap)),
            seq: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> EventBackend {
        match self.heap {
            Heap::Binary(_) => EventBackend::BinaryHeap,
            Heap::Pairing(_) => EventBackend::PairingHeap,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.heap {
            Heap::Binary(h) => h.len(),
            Heap::Pairing(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at `time`. Panics on NaN times (programming
    /// error — the model never produces them).
    pub fn push(&mut self, time: f64, payload: P) {
        assert!(!time.is_nan(), "event time is NaN");
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, payload };
        match &mut self.heap {
            Heap::Binary(h) => h.push(Reverse(entry)),
            Heap::Pairing(h) => h.push(entry),
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        match &self.heap {
            Heap::Binary(h) => h.peek().map(|Reverse(e)| e.time),
            Heap::Pairing(h) => h.peek().map(|e| e.time),
        }
    }

    /// Pops the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, P)> {
        let entry = match &mut self.heap {
            Heap::Binary(h) => h.pop().map(|Reverse(e)| e),
            Heap::Pairing(h) => h.pop(),
        }?;
        Some((entry.time, entry.payload))
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        match &mut self.heap {
            Heap::Binary(h) => h.clear(),
            Heap::Pairing(h) => h.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [EventBackend; 2] = [EventBackend::BinaryHeap, EventBackend::PairingHeap];

    #[test]
    fn pops_in_time_order() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.push(3.0, "c");
            q.push(1.0, "a");
            q.push(2.0, "b");
            assert_eq!(q.pop(), Some((1.0, "a")), "{backend:?}");
            assert_eq!(q.pop(), Some((2.0, "b")), "{backend:?}");
            assert_eq!(q.pop(), Some((3.0, "c")), "{backend:?}");
            assert_eq!(q.pop(), None, "{backend:?}");
        }
    }

    #[test]
    fn equal_times_pop_fifo() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..10 {
                q.push(5.0, i);
            }
            for i in 0..10 {
                assert_eq!(q.pop(), Some((5.0, i)), "{backend:?}");
            }
        }
    }

    #[test]
    fn peek_time_sees_min() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            assert_eq!(q.peek_time(), None);
            q.push(7.0, ());
            q.push(2.0, ());
            assert_eq!(q.peek_time(), Some(2.0), "{backend:?}");
            assert_eq!(q.len(), 2, "{backend:?}");
        }
    }

    #[test]
    fn interleaving_preserves_fifo_within_time() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.push(1.0, "first@1");
            q.push(0.5, "only@0.5");
            q.push(1.0, "second@1");
            assert_eq!(q.pop().unwrap().1, "only@0.5", "{backend:?}");
            assert_eq!(q.pop().unwrap().1, "first@1", "{backend:?}");
            assert_eq!(q.pop().unwrap().1, "second@1", "{backend:?}");
        }
    }

    #[test]
    fn backends_agree_on_random_streams() {
        let mut a = EventQueue::with_backend(EventBackend::BinaryHeap);
        let mut b = EventQueue::with_backend(EventBackend::PairingHeap);
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..5000 {
            if next() % 3 != 0 {
                let t = (next() % 1000) as f64 / 8.0;
                a.push(t, step);
                b.push(t, step);
            } else {
                assert_eq!(a.pop(), b.pop(), "step {step}");
            }
            assert_eq!(a.len(), b.len(), "step {step}");
            assert_eq!(a.peek_time(), b.peek_time(), "step {step}");
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn clear_empties() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.push(1.0, ());
            q.clear();
            assert!(q.is_empty(), "{backend:?}");
        }
    }

    #[test]
    fn default_backend_is_binary() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), EventBackend::BinaryHeap);
    }
}
