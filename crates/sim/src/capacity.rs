//! Capacity-change events: the elastic machine pool.
//!
//! The paper's model fixes the machine set `M` for the whole horizon.
//! This module relaxes that for robustness experiments: a
//! [`CapacityPlan`] is a time-ordered stream of [`CapacityEvent`]s that
//! machines **join**, **drain**, or **crash** mid-run. Schedulers merge
//! the stream into their [`EventQueue`](crate::EventQueue) and replay
//! it alongside arrivals, with these semantics:
//!
//! * **Join** — the machine enters the pool at `time` and may receive
//!   dispatches from then on. A machine whose *first* event is a join
//!   starts the run offline.
//! * **Drain** — graceful exit: a job already running on the machine
//!   finishes (its execution may extend past the drain instant), queued
//!   work is re-dispatched at the drain instant, and no new dispatches
//!   land afterwards.
//! * **Crash** — abrupt exit: the running job is killed at `time`
//!   (recorded as a partial run), and both it and the machine's queue
//!   are re-dispatched. No execution may extend past a crash.
//!
//! Re-dispatched jobs go back through the scheduler's normal dispatch
//! argmin (their redispatch count is tracked on the
//! [`ScheduleLog`](osr_model::ScheduleLog)); a job whose eligible
//! machines are all offline is rejected with
//! [`RejectReason::MachineLost`](osr_model::RejectReason::MachineLost) —
//! the *no-lost-job invariant*: every arrived job completes, is
//! rejected with a recorded reason, or is re-dispatched; none vanish.
//!
//! Plans replay from **failure traces** (a tiny CSV dialect, see
//! [`CapacityPlan::parse`]) or are generated from scenario tokens
//! (`churn:<rate>` in `osr-workload`). The
//! [`validator`](crate::validate) consumes the same plan to check that
//! every run sits inside an online window of its machine.

use osr_model::{MachineId, OnlineSet};

/// What happens to a machine at a [`CapacityEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityChange {
    /// The machine enters (or re-enters) the pool.
    Join,
    /// Graceful exit: running job finishes, queue re-dispatched.
    Drain,
    /// Abrupt exit: running job killed and re-dispatched with the queue.
    Crash,
}

impl std::fmt::Display for CapacityChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CapacityChange::Join => "join",
            CapacityChange::Drain => "drain",
            CapacityChange::Crash => "crash",
        })
    }
}

/// One capacity change: machine `machine` undergoes `change` at `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityEvent {
    /// Simulation instant of the change.
    pub time: f64,
    /// Affected machine.
    pub machine: MachineId,
    /// What happens.
    pub change: CapacityChange,
}

/// A maximal interval during which a machine is online.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineWindow {
    /// First instant the machine is online.
    pub from: f64,
    /// Instant the window closes (`f64::INFINITY` if never).
    pub to: f64,
    /// Whether the window closed with a crash (no run may extend past
    /// `to`) rather than a drain (a running job may finish after `to`).
    pub crash: bool,
}

/// A time-ordered capacity-change stream for one simulation run.
///
/// Events at equal times keep their construction order (the same FIFO
/// discipline as [`EventQueue`](crate::EventQueue)); schedulers apply
/// capacity changes at `t` **before** dispatching arrivals at `t`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacityPlan {
    events: Vec<CapacityEvent>,
}

impl CapacityPlan {
    /// A plan with no churn: the static fixed-pool model.
    pub fn empty() -> Self {
        CapacityPlan::default()
    }

    /// Builds a plan from events, stably sorting by time. Rejects
    /// non-finite or negative times.
    pub fn new(mut events: Vec<CapacityEvent>) -> Result<Self, String> {
        for e in &events {
            if !e.time.is_finite() || e.time < 0.0 {
                return Err(format!(
                    "capacity event at invalid time {} (machine {})",
                    e.time, e.machine
                ));
            }
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        Ok(CapacityPlan { events })
    }

    /// The events in replay order.
    pub fn events(&self) -> &[CapacityEvent] {
        &self.events
    }

    /// Whether the plan has no events (static pool).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Largest machine id the plan references.
    pub fn max_machine(&self) -> Option<usize> {
        self.events.iter().map(|e| e.machine.idx()).max()
    }

    /// Checks every referenced machine is in `0..m` (machine ids index
    /// each job's `sizes` row, so the plan cannot invent machines the
    /// instance does not declare).
    pub fn check_machines(&self, m: usize) -> Result<(), String> {
        match self.max_machine() {
            Some(mx) if mx >= m => Err(format!(
                "capacity plan references machine {mx} but the instance has {m}"
            )),
            _ => Ok(()),
        }
    }

    /// Whether machine `i` is online at the start of the run. A machine
    /// whose **first** event is a join starts offline; every other
    /// machine (no events, or first event drain/crash) starts online.
    pub fn starts_online(&self, i: usize) -> bool {
        match self.events.iter().find(|e| e.machine.idx() == i) {
            Some(e) => e.change != CapacityChange::Join,
            None => true,
        }
    }

    /// The initial [`OnlineSet`] for an `m`-machine instance.
    pub fn initial_online(&self, m: usize) -> OnlineSet {
        let mut set = OnlineSet::all_offline(m);
        for i in 0..m {
            if self.starts_online(i) {
                set.set_online(i);
            }
        }
        set
    }

    /// The maximal online windows of machine `i`, in time order.
    /// No-op events (join while online, drain/crash while offline) are
    /// ignored. The final window extends to `f64::INFINITY` if the
    /// machine is online when the plan runs out.
    pub fn online_windows(&self, i: usize) -> Vec<OnlineWindow> {
        let mut windows = Vec::new();
        let mut open_from = self.starts_online(i).then_some(0.0);
        for e in self.events.iter().filter(|e| e.machine.idx() == i) {
            match (e.change, open_from) {
                (CapacityChange::Join, None) => open_from = Some(e.time),
                (CapacityChange::Drain | CapacityChange::Crash, Some(from)) => {
                    windows.push(OnlineWindow {
                        from,
                        to: e.time,
                        crash: e.change == CapacityChange::Crash,
                    });
                    open_from = None;
                }
                _ => {} // no-op: join while online, drain/crash while offline
            }
        }
        if let Some(from) = open_from {
            windows.push(OnlineWindow {
                from,
                to: f64::INFINITY,
                crash: false,
            });
        }
        windows
    }

    /// Whether a run `[start, end]` on machine `i` is consistent with
    /// the plan: it must start inside an online window, and may extend
    /// past the window's close only if the window ended with a drain
    /// (graceful exit lets the running job finish; a crash does not).
    pub fn run_within_windows(&self, i: usize, start: f64, end: f64) -> bool {
        self.online_windows(i).iter().any(|w| {
            w.from - osr_model::EPS <= start
                && start <= w.to + osr_model::EPS
                && (!w.crash || end <= w.to + osr_model::EPS)
        })
    }

    /// Parses a failure trace.
    ///
    /// Format: one event per line, `time,machine,kind` with `kind` one
    /// of `join` / `drain` / `crash`; blank lines and `#` comments are
    /// skipped, and an optional `time,machine,kind` header line is
    /// tolerated. Events are replayed in time order (ties keep file
    /// order).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if lineno == 0 && fields == ["time", "machine", "kind"] {
                continue;
            }
            let [time, machine, kind] = fields[..] else {
                return Err(format!(
                    "line {}: expected `time,machine,kind`, got `{line}`",
                    lineno + 1
                ));
            };
            let time: f64 = time
                .parse()
                .map_err(|e| format!("line {}: bad time `{time}`: {e}", lineno + 1))?;
            let machine: u32 = machine
                .parse()
                .map_err(|e| format!("line {}: bad machine `{machine}`: {e}", lineno + 1))?;
            let change = match kind {
                "join" => CapacityChange::Join,
                "drain" => CapacityChange::Drain,
                "crash" => CapacityChange::Crash,
                other => {
                    return Err(format!(
                        "line {}: unknown capacity kind `{other}` (join|drain|crash)",
                        lineno + 1
                    ))
                }
            };
            events.push(CapacityEvent {
                time,
                machine: MachineId(machine),
                change,
            });
        }
        CapacityPlan::new(events)
    }

    /// Serializes the plan in the [`CapacityPlan::parse`] format.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,machine,kind\n");
        for e in &self.events {
            out.push_str(&format!("{},{},{}\n", e.time, e.machine.idx(), e.change));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, machine: u32, change: CapacityChange) -> CapacityEvent {
        CapacityEvent {
            time,
            machine: MachineId(machine),
            change,
        }
    }

    #[test]
    fn events_sort_stably_by_time() {
        let plan = CapacityPlan::new(vec![
            ev(5.0, 1, CapacityChange::Crash),
            ev(2.0, 0, CapacityChange::Drain),
            ev(5.0, 2, CapacityChange::Join),
        ])
        .unwrap();
        let ms: Vec<u32> = plan.events().iter().map(|e| e.machine.0).collect();
        assert_eq!(ms, [0, 1, 2], "ties keep construction order");
    }

    #[test]
    fn first_event_join_means_starts_offline() {
        let plan = CapacityPlan::new(vec![
            ev(3.0, 1, CapacityChange::Join),
            ev(7.0, 2, CapacityChange::Crash),
        ])
        .unwrap();
        assert!(plan.starts_online(0), "no events → online");
        assert!(!plan.starts_online(1), "first event join → offline");
        assert!(plan.starts_online(2), "first event crash → online");
        let online = plan.initial_online(3);
        assert!(online.is_online(0) && !online.is_online(1) && online.is_online(2));
    }

    #[test]
    fn online_windows_cover_join_drain_crash_cycles() {
        let plan = CapacityPlan::new(vec![
            ev(2.0, 0, CapacityChange::Crash),
            ev(5.0, 0, CapacityChange::Join),
            ev(9.0, 0, CapacityChange::Drain),
            ev(9.5, 0, CapacityChange::Drain), // no-op: already offline
            ev(12.0, 0, CapacityChange::Join),
        ])
        .unwrap();
        let w = plan.online_windows(0);
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].from, w[0].to, w[0].crash), (0.0, 2.0, true));
        assert_eq!((w[1].from, w[1].to, w[1].crash), (5.0, 9.0, false));
        assert_eq!(
            (w[2].from, w[2].to, w[2].crash),
            (12.0, f64::INFINITY, false)
        );
    }

    #[test]
    fn run_within_windows_distinguishes_drain_from_crash() {
        let plan = CapacityPlan::new(vec![
            ev(4.0, 0, CapacityChange::Drain),
            ev(4.0, 1, CapacityChange::Crash),
        ])
        .unwrap();
        // Started before the drain, finishes after: legal (graceful).
        assert!(plan.run_within_windows(0, 3.0, 6.0));
        // Started before the crash, finishes after: illegal.
        assert!(!plan.run_within_windows(1, 3.0, 6.0));
        // Fully inside the crash window: legal.
        assert!(plan.run_within_windows(1, 1.0, 4.0));
        // Started after the machine left: illegal either way.
        assert!(!plan.run_within_windows(0, 5.0, 6.0));
        assert!(!plan.run_within_windows(1, 5.0, 6.0));
    }

    #[test]
    fn trace_round_trips_through_csv() {
        let plan = CapacityPlan::new(vec![
            ev(1.5, 2, CapacityChange::Crash),
            ev(3.0, 0, CapacityChange::Drain),
            ev(8.0, 2, CapacityChange::Join),
        ])
        .unwrap();
        let text = plan.to_csv();
        let back = CapacityPlan::parse(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn parse_skips_comments_and_rejects_garbage() {
        let plan = CapacityPlan::parse("# failure trace\n\n2.0, 1, crash\n").unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.events()[0].change, CapacityChange::Crash);
        assert!(CapacityPlan::parse("2.0,1,explode").is_err());
        assert!(CapacityPlan::parse("x,1,crash").is_err());
        assert!(CapacityPlan::parse("2.0,1").is_err());
        assert!(CapacityPlan::new(vec![ev(-1.0, 0, CapacityChange::Join)]).is_err());
        assert!(CapacityPlan::new(vec![ev(f64::NAN, 0, CapacityChange::Join)]).is_err());
    }

    #[test]
    fn check_machines_bounds_the_universe() {
        let plan = CapacityPlan::new(vec![ev(1.0, 7, CapacityChange::Crash)]).unwrap();
        assert!(plan.check_machines(8).is_ok());
        assert!(plan.check_machines(7).is_err());
        assert_eq!(plan.max_machine(), Some(7));
        assert!(CapacityPlan::empty().check_machines(0).is_ok());
    }
}
