//! The scheduler trait, the validated execution helper, and the shared
//! ineligible-job rejection used by every dispatch argmin.

use osr_model::{
    FinishedLog, Instance, JobId, MachineId, Metrics, PartialRun, RejectReason, Rejection,
    ScheduleLog,
};

use crate::trace::{DecisionEvent, DecisionTrace};
use crate::validate::{validate_log, ValidationConfig, ValidationError};

/// Records the standard outcome for a job that is eligible on **no**
/// machine (`p_ij = ∞` everywhere): rejected at its arrival instant
/// with [`RejectReason::Ineligible`], no partial run, zero counter. The
/// trace event uses machine 0 as the conventional "no machine"
/// sentinel, matching the immediate-rejection baselines. Every
/// scheduler and baseline funnels its empty-argmin case through here so
/// the bookkeeping cannot drift between implementations.
pub fn reject_ineligible(log: &mut ScheduleLog, trace: &mut DecisionTrace, job: JobId, t: f64) {
    log.reject(
        job,
        Rejection {
            time: t,
            reason: RejectReason::Ineligible,
            partial: None,
        },
    );
    trace.push(DecisionEvent::Reject {
        time: t,
        job,
        machine: MachineId(0),
        reason: RejectReason::Ineligible,
        counter: 0.0,
    });
}

/// Records the standard outcome for a job stranded by capacity churn:
/// every machine it is eligible on has left the pool, so it is rejected
/// at `t` with [`RejectReason::MachineLost`]. Two shapes funnel through
/// here:
///
/// * a (re-)dispatch at `t` found `elig ∩ online = ∅` — no partial run;
/// * a crash at `t` killed the job mid-run **and** no eligible machine
///   remains — the interrupted prefix is recorded as `partial` (ending
///   exactly at `t`, the non-preemption contract for rejections).
///
/// Machine-lost rejections count against **no** rule's budget — the
/// adversary (the failure trace), not the algorithm, chose them. The
/// trace event uses the partial run's machine, or machine 0 as the
/// conventional "no machine" sentinel.
pub fn reject_machine_lost(
    log: &mut ScheduleLog,
    trace: &mut DecisionTrace,
    job: JobId,
    t: f64,
    partial: Option<PartialRun>,
) {
    let machine = partial.as_ref().map_or(MachineId(0), |p| p.machine);
    log.reject(
        job,
        Rejection {
            time: t,
            reason: RejectReason::MachineLost,
            partial,
        },
    );
    trace.push(DecisionEvent::Reject {
        time: t,
        job,
        machine,
        reason: RejectReason::MachineLost,
        counter: 0.0,
    });
}

/// Errors surfaced by [`run_validated`].
#[derive(Debug, Clone)]
pub enum SimError {
    /// The scheduler produced a log that fails model invariants.
    InvalidSchedule(Vec<ValidationError>),
    /// The scheduler failed internally (message).
    Scheduler(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidSchedule(errs) => {
                writeln!(f, "schedule violates {} invariant(s):", errs.len())?;
                for e in errs.iter().take(5) {
                    writeln!(f, "  - {e}")?;
                }
                if errs.len() > 5 {
                    writeln!(f, "  … and {} more", errs.len() - 5)?;
                }
                Ok(())
            }
            SimError::Scheduler(m) => write!(f, "scheduler error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// An online, non-preemptive scheduling policy.
///
/// Implementations receive the **whole instance** but must behave
/// online: decisions at time `t` may depend only on jobs with
/// `r_j ≤ t`. This is a contract, not something the type system can
/// enforce; the adaptive-adversary tests in `osr-workload` exist to
/// catch violations (an algorithm peeking at the future would be
/// inconsistent against an adversary that constructs jobs in response
/// to its decisions).
pub trait OnlineScheduler {
    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> String;

    /// Runs the policy over the instance, producing a complete log.
    fn schedule(&mut self, instance: &Instance) -> FinishedLog;
}

/// Runs a scheduler, validates the log against every model invariant,
/// and computes metrics. This is the only entry point the experiment
/// harness uses — no metric is ever reported for an invalid schedule.
pub fn run_validated<S: OnlineScheduler>(
    scheduler: &mut S,
    instance: &Instance,
    config: &ValidationConfig,
    alpha: f64,
) -> Result<(FinishedLog, Metrics), SimError> {
    let log = scheduler.schedule(instance);
    let report = validate_log(instance, &log, config);
    if !report.errors.is_empty() {
        return Err(SimError::InvalidSchedule(report.errors));
    }
    let metrics = Metrics::compute(instance, &log, alpha);
    Ok((log, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{Execution, InstanceBuilder, InstanceKind, MachineId, ScheduleLog};

    /// Trivial FIFO-on-machine-0 scheduler used to exercise the helper.
    struct Fifo0;

    impl OnlineScheduler for Fifo0 {
        fn name(&self) -> String {
            "fifo0".into()
        }

        fn schedule(&mut self, instance: &Instance) -> FinishedLog {
            let mut log = ScheduleLog::new(instance.machines(), instance.len());
            let mut free = 0.0f64;
            for job in instance.jobs() {
                let start = free.max(job.release);
                let completion = start + job.sizes[0];
                log.complete(
                    job.id,
                    Execution {
                        machine: MachineId(0),
                        start,
                        completion,
                        speed: 1.0,
                    },
                );
                free = completion;
            }
            log.finish().expect("all jobs decided")
        }
    }

    /// Broken scheduler that overlaps jobs — must be caught.
    struct Overlapper;

    impl OnlineScheduler for Overlapper {
        fn name(&self) -> String {
            "overlapper".into()
        }

        fn schedule(&mut self, instance: &Instance) -> FinishedLog {
            let mut log = ScheduleLog::new(instance.machines(), instance.len());
            for job in instance.jobs() {
                log.complete(
                    job.id,
                    Execution {
                        machine: MachineId(0),
                        start: job.release,
                        completion: job.release + job.sizes[0],
                        speed: 1.0,
                    },
                );
            }
            log.finish().expect("all jobs decided")
        }
    }

    fn two_jobs() -> Instance {
        InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![2.0])
            .job(0.0, vec![3.0])
            .build()
            .unwrap()
    }

    #[test]
    fn valid_scheduler_passes() {
        let inst = two_jobs();
        let (log, metrics) =
            run_validated(&mut Fifo0, &inst, &ValidationConfig::default(), 2.0).unwrap();
        assert_eq!(log.rejected_count(), 0);
        assert_eq!(metrics.flow.flow_served, 2.0 + 5.0);
    }

    #[test]
    fn overlapping_scheduler_is_rejected() {
        let inst = two_jobs();
        let err = run_validated(&mut Overlapper, &inst, &ValidationConfig::default(), 2.0);
        assert!(matches!(err, Err(SimError::InvalidSchedule(_))));
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("invariant"));
    }
}
