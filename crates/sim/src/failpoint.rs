//! Fault-injection registry for crash-recovery testing.
//!
//! A *failpoint* is a named site in the serve/journal stack where the
//! process can be made to die (or error) on purpose, so the
//! kill-recover-diff tests in `osr-core`/`osr-cli` and the CI
//! crash-recovery step can exercise every window of the write-ahead
//! journal protocol deterministically. The catalog (see
//! `crates/sim/README.md` for where each one sits in the protocol):
//!
//! | point            | site                                            |
//! |------------------|-------------------------------------------------|
//! | `mid-batch`      | after a batch is journaled, before it applies   |
//! | `pre-fsync`      | after journal bytes are written, before fsync   |
//! | `epoch-barrier`  | the driver's serial barrier between epochs      |
//! | `snapshot-write` | after the snapshot temp file, before the rename |
//!
//! At most one failpoint is armed per process (`name[:nth][:action]`,
//! via [`arm`] or the `OSR_FAILPOINT` environment variable); it fires
//! once, at the `nth` hit. Actions:
//!
//! * `kill` (default) — exit immediately with [`KILL_EXIT_CODE`], the
//!   hard-crash model: no flush, no unwind.
//! * `error` — [`hit`] returns an error the caller propagates; the
//!   serve loop treats it as a graceful-shutdown request (journal
//!   flushed, final log emitted).
//! * `torn` — only meaningful at journal-write sites: the caller
//!   writes a *partial* record and then dies, manufacturing the torn
//!   tail that recovery must detect and drop.
//!
//! Disarmed cost is one relaxed atomic load per call site — the
//! registry is compiled in unconditionally so release binaries can be
//! crash-tested, but it never takes a lock unless armed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Exit code of the `kill` and `torn` actions, distinct from ordinary
/// failures (1) and usage errors (2) so harnesses can assert the death
/// was the injected one.
pub const KILL_EXIT_CODE: i32 = 17;

/// Prefix of every `error`-action message; [`is_failpoint_error`]
/// matches it so the serve loop can tell an injected failure from a
/// real one and shut down gracefully.
pub const ERROR_PREFIX: &str = "failpoint ";

/// The valid failpoint names, in protocol order.
pub const POINTS: [&str; 4] = ["mid-batch", "pre-fsync", "epoch-barrier", "snapshot-write"];

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Exit the process immediately with [`KILL_EXIT_CODE`].
    Kill,
    /// Return an error for the caller to propagate.
    Error,
    /// Ask the caller to write a torn (partial) record, then die.
    Torn,
}

/// What a call site should do after [`hit`] (the `kill` action never
/// returns, so it has no variant).
#[must_use]
#[derive(Debug)]
pub enum FailHit {
    /// Not armed, wrong point, or not the `nth` hit yet: carry on.
    Proceed,
    /// The `error` action fired: propagate this message.
    Error(String),
    /// The `torn` action fired: write a partial record, then call
    /// [`kill_now`]. Sites with nothing to tear treat this as `kill`.
    Torn,
}

struct ArmedPoint {
    point: String,
    nth: u64,
    action: FailAction,
    hits: u64,
    fired: bool,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ArmedPoint>> = Mutex::new(None);

fn lock() -> std::sync::MutexGuard<'static, Option<ArmedPoint>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms a failpoint from a `name[:nth][:action]` spec (`nth` ≥ 1
/// defaults to 1, action to `kill`; the two suffixes may appear in
/// either order). Replaces any previously armed point.
pub fn arm(spec: &str) -> Result<(), String> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or("");
    if !POINTS.contains(&name) {
        return Err(format!(
            "unknown failpoint `{name}` (want one of {})",
            POINTS.join("|")
        ));
    }
    let mut nth = 1u64;
    let mut action = FailAction::Kill;
    for tok in parts {
        if let Ok(n) = tok.parse::<u64>() {
            if n == 0 {
                return Err(format!("failpoint hit count must be >= 1, got `{tok}`"));
            }
            nth = n;
        } else {
            action = match tok {
                "kill" => FailAction::Kill,
                "error" => FailAction::Error,
                "torn" => FailAction::Torn,
                other => {
                    return Err(format!(
                        "unknown failpoint action `{other}` (want kill|error|torn)"
                    ))
                }
            };
        }
    }
    *lock() = Some(ArmedPoint {
        point: name.to_string(),
        nth,
        action,
        hits: 0,
        fired: false,
    });
    ARMED.store(true, Ordering::Release);
    Ok(())
}

/// Arms from the `OSR_FAILPOINT` environment variable if it is set and
/// non-empty. Returns whether a point was armed.
pub fn arm_from_env() -> Result<bool, String> {
    match std::env::var("OSR_FAILPOINT") {
        Ok(spec) if !spec.is_empty() => arm(&spec).map(|()| true),
        _ => Ok(false),
    }
}

/// Disarms any armed failpoint (test hygiene; never needed in
/// production paths because a point fires at most once).
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *lock() = None;
}

/// Reports a hit of the named point. Disarmed (the common case) this
/// is one relaxed load. When the armed point matches and reaches its
/// `nth` hit, the action fires: `kill` exits the process here; `error`
/// and `torn` return for the caller to act on.
pub fn hit(point: &str) -> FailHit {
    if !ARMED.load(Ordering::Relaxed) {
        return FailHit::Proceed;
    }
    let mut guard = lock();
    let Some(st) = guard.as_mut() else {
        return FailHit::Proceed;
    };
    if st.fired || st.point != point {
        return FailHit::Proceed;
    }
    st.hits += 1;
    if st.hits < st.nth {
        return FailHit::Proceed;
    }
    st.fired = true;
    let action = st.action;
    drop(guard);
    match action {
        FailAction::Kill => kill_now(point),
        FailAction::Error => FailHit::Error(format!("{ERROR_PREFIX}{point}: injected failure")),
        FailAction::Torn => FailHit::Torn,
    }
}

/// [`hit`] for sites that can neither propagate an error nor tear a
/// write (e.g. the driver's epoch barrier): any firing action kills.
pub fn hit_kill(point: &str) {
    match hit(point) {
        FailHit::Proceed => {}
        FailHit::Error(_) | FailHit::Torn => kill_now(point),
    }
}

/// Dies with [`KILL_EXIT_CODE`] — the hard-crash model: stderr gets
/// one line (so harnesses can see which point fired), nothing else is
/// flushed, no destructors run beyond what `exit` implies.
pub fn kill_now(point: &str) -> ! {
    eprintln!("failpoint {point}: killing process (exit {KILL_EXIT_CODE})");
    std::process::exit(KILL_EXIT_CODE);
}

/// Whether an error message came from a failpoint's `error` action
/// (the serve loop shuts down gracefully on these instead of treating
/// them as protocol errors).
pub fn is_failpoint_error(msg: &str) -> bool {
    msg.starts_with(ERROR_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global; these tests serialize on one
    // lock so parallel test threads cannot observe each other's armed
    // points. None of them uses the `kill` action (it would take the
    // whole test process down) — kill/torn firing is covered by the
    // subprocess tests in `osr-cli/tests/serve.rs` and the CI
    // crash-recovery step.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn specs_parse_and_validate() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(arm("mid-batch").is_ok());
        assert!(arm("pre-fsync:3").is_ok());
        assert!(arm("pre-fsync:error").is_ok());
        assert!(arm("snapshot-write:2:torn").is_ok());
        assert!(arm("torn:2:snapshot-write").is_err(), "name comes first");
        assert!(arm("bogus").is_err());
        assert!(arm("mid-batch:0").is_err());
        assert!(arm("mid-batch:1:explode").is_err());
        disarm();
    }

    #[test]
    fn error_action_fires_once_at_the_nth_hit() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm("mid-batch:2:error").unwrap();
        assert!(matches!(hit("mid-batch"), FailHit::Proceed), "hit 1 of 2");
        assert!(matches!(hit("pre-fsync"), FailHit::Proceed), "wrong point");
        match hit("mid-batch") {
            FailHit::Error(e) => assert!(is_failpoint_error(&e), "{e}"),
            other => panic!("second hit must error, got {other:?}"),
        }
        assert!(matches!(hit("mid-batch"), FailHit::Proceed), "fires once");
        disarm();
        assert!(matches!(hit("mid-batch"), FailHit::Proceed));
    }

    #[test]
    fn torn_action_returns_torn() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        arm("pre-fsync:1:torn").unwrap();
        assert!(matches!(hit("pre-fsync"), FailHit::Torn));
        disarm();
    }
}
