//! Decision traces: an audit log of *why* a scheduler did what it did.
//!
//! The schedule log (`osr-model::log`) records outcomes; the decision
//! trace records the online decisions that produced them — dispatches
//! with their `λ_ij` values, starts with their chosen speeds, rejections
//! with the counter states that triggered them. Experiments EXP-DUAL and
//! EXP-RULES consume traces; production runs can disable them (the
//! schedulers take `Option<&mut DecisionTrace>`-style sinks or build them
//! internally behind a flag).

use osr_model::{JobId, MachineId, RejectReason};

/// One online decision.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEvent {
    /// Job dispatched to a machine at arrival.
    Dispatch {
        /// Arrival instant.
        time: f64,
        /// The dispatched job.
        job: JobId,
        /// Chosen machine.
        machine: MachineId,
        /// Winning `λ_ij` (or marginal-cost) value.
        lambda: f64,
        /// Number of machines considered.
        candidates: usize,
    },
    /// Job began executing.
    Start {
        /// Start instant.
        time: f64,
        /// The started job.
        job: JobId,
        /// Executing machine.
        machine: MachineId,
        /// Constant execution speed.
        speed: f64,
    },
    /// Job completed.
    Complete {
        /// Completion instant.
        time: f64,
        /// The completed job.
        job: JobId,
        /// Machine it ran on.
        machine: MachineId,
    },
    /// Job rejected.
    Reject {
        /// Rejection instant.
        time: f64,
        /// The rejected job.
        job: JobId,
        /// Machine it was queued/running on.
        machine: MachineId,
        /// Which rule fired.
        reason: RejectReason,
        /// Rule counter at the moment of rejection (`v_k` for Rule 1,
        /// `c_i` for Rule 2).
        counter: f64,
    },
}

impl DecisionEvent {
    /// Time of the event.
    pub fn time(&self) -> f64 {
        match self {
            DecisionEvent::Dispatch { time, .. }
            | DecisionEvent::Start { time, .. }
            | DecisionEvent::Complete { time, .. }
            | DecisionEvent::Reject { time, .. } => *time,
        }
    }

    /// Job the event concerns.
    pub fn job(&self) -> JobId {
        match self {
            DecisionEvent::Dispatch { job, .. }
            | DecisionEvent::Start { job, .. }
            | DecisionEvent::Complete { job, .. }
            | DecisionEvent::Reject { job, .. } => *job,
        }
    }
}

/// Append-only sequence of decisions, in simulation order.
#[derive(Debug, Clone, Default)]
pub struct DecisionTrace {
    events: Vec<DecisionEvent>,
}

impl DecisionTrace {
    /// Empty trace.
    pub fn new() -> Self {
        DecisionTrace::default()
    }

    /// Appends an event. Events must be pushed in non-decreasing time
    /// order (debug-asserted; simulations are already time-ordered).
    pub fn push(&mut self, event: DecisionEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.time() <= event.time() + osr_model::EPS),
            "trace events out of order"
        );
        self.events.push(event);
    }

    /// All events.
    pub fn events(&self) -> &[DecisionEvent] {
        &self.events
    }

    /// Removes and returns every buffered event (the epoch-sharded
    /// driver drains per-shard trace buffers into a deterministic
    /// time-sorted merge at each barrier).
    pub(crate) fn drain_events(&mut self) -> std::vec::Drain<'_, DecisionEvent> {
        self.events.drain(..)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events concerning one job, in order.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &DecisionEvent> {
        self.events.iter().filter(move |e| e.job() == job)
    }

    /// All dispatch events.
    pub fn dispatches(&self) -> impl Iterator<Item = &DecisionEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, DecisionEvent::Dispatch { .. }))
    }

    /// All rejection events.
    pub fn rejections(&self) -> impl Iterator<Item = &DecisionEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, DecisionEvent::Reject { .. }))
    }

    /// Count of rejections attributed to `reason`.
    pub fn rejections_by(&self, reason: RejectReason) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, DecisionEvent::Reject { reason: r, .. } if *r == reason))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionTrace {
        let mut t = DecisionTrace::new();
        t.push(DecisionEvent::Dispatch {
            time: 0.0,
            job: JobId(0),
            machine: MachineId(0),
            lambda: 1.5,
            candidates: 2,
        });
        t.push(DecisionEvent::Start {
            time: 0.0,
            job: JobId(0),
            machine: MachineId(0),
            speed: 1.0,
        });
        t.push(DecisionEvent::Reject {
            time: 2.0,
            job: JobId(0),
            machine: MachineId(0),
            reason: RejectReason::RuleOne,
            counter: 10.0,
        });
        t
    }

    #[test]
    fn filters_by_kind_and_job() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dispatches().count(), 1);
        assert_eq!(t.rejections().count(), 1);
        assert_eq!(t.rejections_by(RejectReason::RuleOne), 1);
        assert_eq!(t.rejections_by(RejectReason::RuleTwo), 0);
        assert_eq!(t.for_job(JobId(0)).count(), 3);
        assert_eq!(t.for_job(JobId(1)).count(), 0);
    }

    #[test]
    fn event_accessors() {
        let t = sample();
        assert_eq!(t.events()[2].time(), 2.0);
        assert_eq!(t.events()[2].job(), JobId(0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_debug_panics() {
        let mut t = sample();
        t.push(DecisionEvent::Complete {
            time: 1.0,
            job: JobId(0),
            machine: MachineId(0),
        });
    }
}
