//! Independent schedule validation.
//!
//! Every invariant of the paper's model is checked from the raw log, with
//! no trust placed in the scheduler that produced it:
//!
//! 1. **release respect** — no run (complete or partial) starts before
//!    its job's release;
//! 2. **machine validity** — machine ids are in range, and restricted
//!    assignment is honoured (`p_ij = ∞` jobs never run on `i`);
//! 3. **volume conservation** — a completed execution processes exactly
//!    `p_ij` at its recorded speed (`duration · speed = p_ij`);
//! 4. **machine exclusivity** — busy intervals on one machine do not
//!    overlap (the §3 model *permits* parallel execution, but the paper's
//!    algorithm never uses it; a [`ValidationConfig`] flag relaxes the
//!    check for schedules that legitimately do);
//! 5. **non-preemption** — implied by the single-interval log format plus
//!    (3); a partial run must end exactly at its rejection instant;
//! 6. **deadline feasibility** — for §4 instances, completions meet
//!    deadlines;
//! 7. **speed sanity** — speeds are positive and finite; exactly `1` when
//!    the config demands unit speeds (§2);
//! 8. **capacity windows** — when a [`CapacityPlan`] is attached, every
//!    run (complete or partial) must *start* while its machine is
//!    online, and may extend past the machine's exit only if the exit
//!    was a graceful drain (a crash kills the running job, so nothing
//!    outlives it). A run on a machine that leaves the pool *later* is
//!    legal — the plan is consulted for the run's own window, not the
//!    machine's final fate.

use osr_model::{approx_eq, Instance, InstanceKind};
use osr_model::{FinishedLog, JobFate, JobId, MachineId};

use crate::capacity::CapacityPlan;

/// What to check beyond the universal invariants.
#[derive(Debug, Clone, Default)]
pub struct ValidationConfig {
    /// Require all speeds to equal 1.0 (the §2 flow-time model).
    pub unit_speed: bool,
    /// Allow overlapping busy intervals on a machine (§3 permits it).
    pub allow_parallel: bool,
    /// Require every job to be completed (no rejections at all).
    pub forbid_rejections: bool,
    /// Capacity churn the run was subject to; enables the
    /// online-window checks (invariant 8). `None` means the static
    /// fixed-pool model: machines never leave, so a run anywhere is
    /// window-legal.
    pub capacity: Option<CapacityPlan>,
}

impl ValidationConfig {
    /// Attaches a capacity plan (builder-style), enabling the
    /// online-window checks.
    pub fn with_capacity(mut self, plan: CapacityPlan) -> Self {
        self.capacity = Some(plan);
        self
    }
}

impl ValidationConfig {
    /// Strict §2 configuration: unit speeds, exclusive machines.
    pub fn flow_time() -> Self {
        ValidationConfig {
            unit_speed: true,
            ..ValidationConfig::default()
        }
    }

    /// §3 configuration: arbitrary speeds, exclusive machines (the
    /// algorithm never runs jobs in parallel even though the model
    /// allows it).
    pub fn flow_energy() -> Self {
        ValidationConfig::default()
    }

    /// §4 configuration: arbitrary speeds, parallel execution allowed
    /// (machine speed is the *sum* of its running jobs' speeds).
    pub fn energy() -> Self {
        ValidationConfig {
            allow_parallel: true,
            forbid_rejections: true,
            ..ValidationConfig::default()
        }
    }
}

/// A single invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Offending job, when attributable.
    pub job: Option<JobId>,
    /// Offending machine, when attributable.
    pub machine: Option<MachineId>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.job, self.machine) {
            (Some(j), Some(m)) => write!(f, "[{j}/{m}] {}", self.message),
            (Some(j), None) => write!(f, "[{j}] {}", self.message),
            (None, Some(m)) => write!(f, "[{m}] {}", self.message),
            (None, None) => write!(f, "{}", self.message),
        }
    }
}

/// Outcome of validating a log.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// All violations found (empty ⇒ valid).
    pub errors: Vec<ValidationError>,
    /// Number of completed jobs seen.
    pub completed: usize,
    /// Number of rejected jobs seen.
    pub rejected: usize,
}

impl ValidationReport {
    /// Whether the schedule satisfied every invariant.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

fn err(
    report: &mut ValidationReport,
    job: Option<JobId>,
    machine: Option<MachineId>,
    message: String,
) {
    report.errors.push(ValidationError {
        job,
        machine,
        message,
    });
}

/// Validates `log` against `instance` under `config`; see module docs
/// for the invariant list.
pub fn validate_log(
    instance: &Instance,
    log: &FinishedLog,
    config: &ValidationConfig,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    if instance.len() != log.len() {
        err(
            &mut report,
            None,
            None,
            format!(
                "log covers {} jobs, instance has {}",
                log.len(),
                instance.len()
            ),
        );
        return report;
    }

    let m = instance.machines();

    for (id, fate) in log.iter() {
        let job = instance.job(id);
        match fate {
            JobFate::Completed(e) => {
                report.completed += 1;
                if e.machine.idx() >= m {
                    err(
                        &mut report,
                        Some(id),
                        Some(e.machine),
                        "machine out of range".into(),
                    );
                    continue;
                }
                if !job.eligible_on(e.machine) {
                    err(
                        &mut report,
                        Some(id),
                        Some(e.machine),
                        "job ran on a machine it is not eligible for".into(),
                    );
                    continue;
                }
                if e.start + osr_model::EPS < job.release {
                    err(
                        &mut report,
                        Some(id),
                        Some(e.machine),
                        format!("started at {} before release {}", e.start, job.release),
                    );
                }
                if !(e.speed.is_finite() && e.speed > 0.0) {
                    err(
                        &mut report,
                        Some(id),
                        Some(e.machine),
                        format!("bad speed {}", e.speed),
                    );
                    continue;
                }
                if config.unit_speed && !approx_eq(e.speed, 1.0) {
                    err(
                        &mut report,
                        Some(id),
                        Some(e.machine),
                        format!("speed {} but model requires unit speed", e.speed),
                    );
                }
                if let Some(plan) = &config.capacity {
                    if !plan.run_within_windows(e.machine.idx(), e.start, e.completion) {
                        err(
                            &mut report,
                            Some(id),
                            Some(e.machine),
                            format!(
                                "run [{}, {}] outside the machine's online windows",
                                e.start, e.completion
                            ),
                        );
                    }
                }
                let processed = e.volume();
                let required = job.size_on(e.machine);
                if !approx_eq(processed, required) {
                    err(
                        &mut report,
                        Some(id),
                        Some(e.machine),
                        format!("processed volume {processed} ≠ required {required}"),
                    );
                }
                if instance.kind() == InstanceKind::Energy {
                    let d = job.deadline.expect("energy instances have deadlines");
                    if e.completion > d + osr_model::EPS {
                        err(
                            &mut report,
                            Some(id),
                            Some(e.machine),
                            format!("completed at {} after deadline {}", e.completion, d),
                        );
                    }
                }
            }
            JobFate::Rejected(r) => {
                report.rejected += 1;
                if config.forbid_rejections {
                    err(
                        &mut report,
                        Some(id),
                        None,
                        "rejection forbidden by config".into(),
                    );
                }
                if r.time + osr_model::EPS < job.release {
                    err(
                        &mut report,
                        Some(id),
                        None,
                        format!("rejected at {} before release {}", r.time, job.release),
                    );
                }
                if let Some(p) = r.partial {
                    if p.machine.idx() >= m {
                        err(
                            &mut report,
                            Some(id),
                            Some(p.machine),
                            "machine out of range".into(),
                        );
                        continue;
                    }
                    if p.start + osr_model::EPS < job.release {
                        err(
                            &mut report,
                            Some(id),
                            Some(p.machine),
                            "partial run starts before release".into(),
                        );
                    }
                    if !approx_eq(p.end, r.time) {
                        err(
                            &mut report,
                            Some(id),
                            Some(p.machine),
                            format!(
                                "partial run ends at {} but rejection is at {} (non-preemption)",
                                p.end, r.time
                            ),
                        );
                    }
                    if p.end < p.start {
                        err(
                            &mut report,
                            Some(id),
                            Some(p.machine),
                            "negative partial run".into(),
                        );
                    }
                    if let Some(plan) = &config.capacity {
                        if !plan.run_within_windows(p.machine.idx(), p.start, p.end) {
                            err(
                                &mut report,
                                Some(id),
                                Some(p.machine),
                                format!(
                                    "partial run [{}, {}] outside the machine's online windows",
                                    p.start, p.end
                                ),
                            );
                        }
                    }
                    // The interrupted prefix must process *less* volume
                    // than the full requirement (otherwise it completed).
                    let processed = (p.end - p.start) * p.speed;
                    let required = job.size_on(p.machine);
                    if processed > required + osr_model::EPS && required.is_finite() {
                        err(
                            &mut report,
                            Some(id),
                            Some(p.machine),
                            format!("partial run processed {processed} > requirement {required}"),
                        );
                    }
                }
            }
        }
    }

    if !config.allow_parallel {
        check_exclusivity(instance, log, &mut report);
    }

    report
}

/// Checks that busy intervals on each machine are pairwise disjoint.
fn check_exclusivity(instance: &Instance, log: &FinishedLog, report: &mut ValidationReport) {
    let all = log.busy_intervals();
    // Zero-measure runs are legitimate at interval *boundaries*: Rule 1
    // can interrupt a job at the very instant it started (an
    // all-at-once pileup does this), leaving a `[t, t]` partial run
    // that coincides with the next job's start. They are separated out
    // here both because they would break the sorted-adjacency overlap
    // argument below and because they need their own check: a `[t, t]`
    // run strictly *inside* another job's interval still means the
    // machine started two jobs while busy.
    let (busy, instants): (Vec<_>, Vec<_>) = all
        .into_iter()
        .partition(|&(_, _, s, e, _)| e - s > osr_model::EPS);
    for w in busy.windows(2) {
        let (m1, j1, _s1, e1, _) = w[0];
        let (m2, j2, s2, _e2, _) = w[1];
        if m1 == m2 && s2 + osr_model::EPS < e1 {
            err(
                report,
                Some(j2),
                Some(m2),
                format!("{j2} starts at {s2} while {j1} still runs until {e1}"),
            );
        }
    }
    for &(m, j, t, _, _) in &instants {
        let interior = busy.iter().any(|&(m2, _, s2, e2, _)| {
            m2 == m && s2 + osr_model::EPS < t && t + osr_model::EPS < e2
        });
        if interior {
            err(
                report,
                Some(j),
                Some(m),
                format!("{j} ran (zero-length) at {t} inside another job's busy interval"),
            );
        }
    }
    let _ = instance;
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{Execution, InstanceBuilder, PartialRun, RejectReason, Rejection, ScheduleLog};

    fn inst_one_machine(sizes: &[f64]) -> Instance {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for &p in sizes {
            b = b.job(0.0, vec![p]);
        }
        b.build().unwrap()
    }

    fn exec(machine: u32, start: f64, completion: f64, speed: f64) -> Execution {
        Execution {
            machine: MachineId(machine),
            start,
            completion,
            speed,
        }
    }

    #[test]
    fn valid_sequential_schedule_passes() {
        let inst = inst_one_machine(&[2.0, 3.0]);
        let mut log = ScheduleLog::new(1, 2);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 1.0));
        log.complete(JobId(1), exec(0, 2.0, 5.0, 1.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(rep.is_valid(), "{:?}", rep.errors);
        assert_eq!(rep.completed, 2);
    }

    #[test]
    fn overlap_detected() {
        let inst = inst_one_machine(&[2.0, 3.0]);
        let mut log = ScheduleLog::new(1, 2);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 1.0));
        log.complete(JobId(1), exec(0, 1.0, 4.0, 1.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(!rep.is_valid());
        assert!(rep.errors[0].message.contains("still runs"));
    }

    #[test]
    fn overlap_allowed_when_configured() {
        let inst = inst_one_machine(&[2.0, 3.0]);
        let mut log = ScheduleLog::new(1, 2);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 1.0));
        log.complete(JobId(1), exec(0, 1.0, 4.0, 1.0));
        let mut cfg = ValidationConfig::flow_time();
        cfg.allow_parallel = true;
        let rep = validate_log(&inst, &log.finish().unwrap(), &cfg);
        assert!(rep.is_valid(), "{:?}", rep.errors);
    }

    #[test]
    fn early_start_detected() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(5.0, vec![1.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 4.0, 5.0, 1.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(!rep.is_valid());
        assert!(rep.errors[0].message.contains("before release"));
    }

    #[test]
    fn volume_conservation_checked() {
        let inst = inst_one_machine(&[4.0]);
        let mut log = ScheduleLog::new(1, 1);
        // Claims completion after only 3 time units at speed 1.
        log.complete(JobId(0), exec(0, 0.0, 3.0, 1.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(!rep.is_valid());
        assert!(rep.errors[0].message.contains("volume"));
    }

    #[test]
    fn speed_scaling_volume_ok() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .job(0.0, vec![4.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 2.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_energy(),
        );
        assert!(rep.is_valid(), "{:?}", rep.errors);
    }

    #[test]
    fn unit_speed_enforced_for_flow_time() {
        let inst = inst_one_machine(&[4.0]);
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 2.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(rep.errors.iter().any(|e| e.message.contains("unit speed")));
    }

    #[test]
    fn ineligible_machine_detected() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![f64::INFINITY, 2.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(2, 1);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 1.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(rep
            .errors
            .iter()
            .any(|e| e.message.contains("not eligible")));
    }

    #[test]
    fn partial_run_must_end_at_rejection() {
        let inst = inst_one_machine(&[5.0]);
        let mut log = ScheduleLog::new(1, 1);
        log.reject(
            JobId(0),
            Rejection {
                time: 3.0,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 0.0,
                    end: 2.5,
                    speed: 1.0,
                }),
            },
        );
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(rep
            .errors
            .iter()
            .any(|e| e.message.contains("non-preemption")));
    }

    #[test]
    fn deadline_miss_detected_for_energy_instances() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 2.0, vec![4.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 4.0, 1.0));
        let rep = validate_log(&inst, &log.finish().unwrap(), &ValidationConfig::energy());
        assert!(rep.errors.iter().any(|e| e.message.contains("deadline")));
    }

    #[test]
    fn rejection_forbidden_by_energy_config() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 8.0, vec![4.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.reject(
            JobId(0),
            Rejection {
                time: 0.0,
                reason: RejectReason::Other,
                partial: None,
            },
        );
        let rep = validate_log(&inst, &log.finish().unwrap(), &ValidationConfig::energy());
        assert!(rep.errors.iter().any(|e| e.message.contains("forbidden")));
    }

    #[test]
    fn rejection_before_release_detected() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(5.0, vec![1.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.reject(
            JobId(0),
            Rejection {
                time: 1.0,
                reason: RejectReason::Immediate,
                partial: None,
            },
        );
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(!rep.is_valid());
    }

    #[test]
    fn partial_run_overlap_with_execution_detected() {
        let inst = inst_one_machine(&[5.0, 2.0]);
        let mut log = ScheduleLog::new(1, 2);
        log.reject(
            JobId(0),
            Rejection {
                time: 3.0,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 0.0,
                    end: 3.0,
                    speed: 1.0,
                }),
            },
        );
        // Overlaps the partial run.
        log.complete(JobId(1), exec(0, 2.0, 4.0, 1.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(!rep.is_valid());
    }

    #[test]
    fn zero_length_partial_at_boundary_is_legal() {
        // Rule 1 can interrupt a job at the instant it started; the
        // resulting [t, t] partial run coincides with the next job's
        // start and must not be flagged as an overlap.
        let inst = inst_one_machine(&[5.0, 2.0]);
        let mut log = ScheduleLog::new(1, 2);
        log.reject(
            JobId(0),
            Rejection {
                time: 0.0,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 0.0,
                    end: 0.0,
                    speed: 1.0,
                }),
            },
        );
        log.complete(JobId(1), exec(0, 0.0, 2.0, 1.0));
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(rep.is_valid(), "{:?}", rep.errors);
    }

    use crate::capacity::{CapacityChange, CapacityEvent, CapacityPlan};

    fn plan(events: Vec<(f64, u32, CapacityChange)>) -> CapacityPlan {
        CapacityPlan::new(
            events
                .into_iter()
                .map(|(time, machine, change)| CapacityEvent {
                    time,
                    machine: MachineId(machine),
                    change,
                })
                .collect(),
        )
        .unwrap()
    }

    /// Regression: a completed run on a machine that drains or crashes
    /// *after* the run must not be flagged — the plan is consulted for
    /// the run's own window, not the machine's final fate.
    #[test]
    fn run_on_later_dead_machine_is_legal() {
        let inst = inst_one_machine(&[2.0]);
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 1.0));
        let log = log.finish().unwrap();
        for change in [CapacityChange::Drain, CapacityChange::Crash] {
            let cfg = ValidationConfig::flow_time().with_capacity(plan(vec![(10.0, 0, change)]));
            let rep = validate_log(&inst, &log, &cfg);
            assert!(rep.is_valid(), "{change}: {:?}", rep.errors);
        }
    }

    /// A run may extend past a drain (graceful exit) but not past a
    /// crash.
    #[test]
    fn run_spanning_drain_is_legal_but_spanning_crash_is_not() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(3.0, vec![3.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 3.0, 6.0, 1.0));
        let log = log.finish().unwrap();
        let drained = ValidationConfig::flow_time().with_capacity(plan(vec![(
            4.0,
            0,
            CapacityChange::Drain,
        )]));
        assert!(validate_log(&inst, &log, &drained).is_valid());
        let crashed = ValidationConfig::flow_time().with_capacity(plan(vec![(
            4.0,
            0,
            CapacityChange::Crash,
        )]));
        let rep = validate_log(&inst, &log, &crashed);
        assert!(rep
            .errors
            .iter()
            .any(|e| e.message.contains("online windows")));
    }

    /// A run starting before the machine joined the pool is flagged.
    #[test]
    fn run_starting_while_offline_is_flagged() {
        let inst = inst_one_machine(&[2.0]);
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 2.0, 1.0));
        let log = log.finish().unwrap();
        // First event is a join at 5 → the machine starts offline.
        let cfg =
            ValidationConfig::flow_time().with_capacity(plan(vec![(5.0, 0, CapacityChange::Join)]));
        let rep = validate_log(&inst, &log, &cfg);
        assert!(rep
            .errors
            .iter()
            .any(|e| e.message.contains("online windows")));
    }

    /// A partial run killed exactly at the crash instant (reason
    /// machine-lost) validates.
    #[test]
    fn crash_killed_partial_run_is_legal() {
        let inst = inst_one_machine(&[9.0]);
        let mut log = ScheduleLog::new(1, 1);
        log.reject(
            JobId(0),
            Rejection {
                time: 4.0,
                reason: RejectReason::MachineLost,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 0.0,
                    end: 4.0,
                    speed: 1.0,
                }),
            },
        );
        let cfg = ValidationConfig::flow_time().with_capacity(plan(vec![(
            4.0,
            0,
            CapacityChange::Crash,
        )]));
        let rep = validate_log(&inst, &log.finish().unwrap(), &cfg);
        assert!(rep.is_valid(), "{:?}", rep.errors);
    }

    #[test]
    fn zero_length_partial_inside_busy_interval_is_flagged() {
        // A [t, t] run strictly inside another job's interval means the
        // machine started two jobs while busy — still a bug.
        let inst = inst_one_machine(&[5.0, 2.0]);
        let mut log = ScheduleLog::new(1, 2);
        log.complete(JobId(0), exec(0, 0.0, 5.0, 1.0));
        log.reject(
            JobId(1),
            Rejection {
                time: 2.5,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 2.5,
                    end: 2.5,
                    speed: 1.0,
                }),
            },
        );
        let rep = validate_log(
            &inst,
            &log.finish().unwrap(),
            &ValidationConfig::flow_time(),
        );
        assert!(!rep.is_valid());
        assert!(rep.errors[0].message.contains("zero-length"));
    }
}
