//! No-rejection greedy baselines.
//!
//! The classic online heuristics the paper's introduction argues are
//! doomed without rejection (or resource augmentation): dispatch at
//! arrival by a greedy rule, run non-preemptively in a local order,
//! never give up on a job.

use osr_model::{Execution, FinishedLog, Instance, JobId, MachineId, ScheduleLog};
use osr_sim::{DecisionEvent, DecisionTrace, EventQueue, OnlineScheduler};

/// How an arriving job picks a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchRule {
    /// Earliest estimated completion: `free_i(t) + queue volume + p_ij`
    /// smallest (a natural clairvoyance-free ECT).
    EarliestCompletion,
    /// Least pending volume (`queue + remaining running`), then `p_ij`.
    LeastLoaded,
    /// Smallest `p_ij` (ignore congestion entirely).
    MinSize,
}

/// Order in which a machine serves its pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalOrder {
    /// Shortest processing time first.
    Spt,
    /// First come, first served.
    Fifo,
}

/// Greedy baseline scheduler (never rejects).
#[derive(Debug, Clone)]
pub struct GreedyScheduler {
    /// Dispatch rule at arrival.
    pub dispatch: DispatchRule,
    /// Local queue order.
    pub order: LocalOrder,
}

impl GreedyScheduler {
    /// ECT dispatch + SPT order — the strongest of the family.
    pub fn ect_spt() -> Self {
        GreedyScheduler {
            dispatch: DispatchRule::EarliestCompletion,
            order: LocalOrder::Spt,
        }
    }

    /// ECT dispatch + FIFO order.
    pub fn ect_fifo() -> Self {
        GreedyScheduler {
            dispatch: DispatchRule::EarliestCompletion,
            order: LocalOrder::Fifo,
        }
    }

    /// Runs the baseline, returning the log and the decision trace.
    pub fn run(&self, instance: &Instance) -> (FinishedLog, DecisionTrace) {
        let m = instance.machines();
        let n = instance.len();
        let jobs = instance.jobs();
        let mut log = ScheduleLog::new(m, n);
        let mut trace = DecisionTrace::new();
        let mut completions: EventQueue<(usize, JobId)> = EventQueue::new();

        // Per machine: pending (key depends on order), running remaining.
        struct Mach {
            // (sort key, id, size); key = size for SPT, release for FIFO.
            pending: Vec<(f64, JobId, f64)>,
            running: Option<(JobId, f64, f64)>, // job, start, completion
        }
        let mut machines: Vec<Mach> = (0..m)
            .map(|_| Mach {
                pending: Vec::new(),
                running: None,
            })
            .collect();

        let queue_volume = |ms: &Mach, t: f64| -> f64 {
            let pend: f64 = ms.pending.iter().map(|&(_, _, p)| p).sum();
            let rem = ms.running.map_or(0.0, |(_, _, c)| (c - t).max(0.0));
            pend + rem
        };

        let start_next = |mi: usize,
                          t: f64,
                          machines: &mut Vec<Mach>,
                          completions: &mut EventQueue<(usize, JobId)>,
                          trace: &mut DecisionTrace| {
            let ms = &mut machines[mi];
            if ms.running.is_some() || ms.pending.is_empty() {
                return;
            }
            // Pending kept sorted ascending by key; pop the front.
            let (_, id, p) = ms.pending.remove(0);
            let completion = t + p;
            ms.running = Some((id, t, completion));
            completions.push(completion, (mi, id));
            trace.push(DecisionEvent::Start {
                time: t,
                job: id,
                machine: MachineId(mi as u32),
                speed: 1.0,
            });
        };

        let mut next_arrival = 0usize;
        loop {
            let ta = jobs.get(next_arrival).map(|j| j.release);
            let tc = completions.peek_time();
            let do_completion = match (ta, tc) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(a), Some(c)) => c <= a,
            };

            if do_completion {
                let (t, (mi, job)) = completions.pop().expect("peeked");
                let matches = machines[mi].running.is_some_and(|(j, _, _)| j == job);
                if !matches {
                    continue;
                }
                let (_, start, completion) = machines[mi].running.take().unwrap();
                log.complete(
                    job,
                    Execution {
                        machine: MachineId(mi as u32),
                        start,
                        completion,
                        speed: 1.0,
                    },
                );
                trace.push(DecisionEvent::Complete {
                    time: t,
                    job,
                    machine: MachineId(mi as u32),
                });
                start_next(mi, t, &mut machines, &mut completions, &mut trace);
                continue;
            }

            let job = &jobs[next_arrival];
            next_arrival += 1;
            let t = job.release;

            let mut best: Option<(usize, f64)> = None;
            for mi in 0..m {
                let p = job.sizes[mi];
                if !p.is_finite() {
                    continue;
                }
                let score = match self.dispatch {
                    DispatchRule::EarliestCompletion => queue_volume(&machines[mi], t) + p,
                    DispatchRule::LeastLoaded => queue_volume(&machines[mi], t) + 1e-9 * p,
                    DispatchRule::MinSize => p,
                };
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((mi, score));
                }
            }
            let Some((mi, score)) = best else {
                osr_sim::reject_ineligible(&mut log, &mut trace, job.id, t);
                continue;
            };
            trace.push(DecisionEvent::Dispatch {
                time: t,
                job: job.id,
                machine: MachineId(mi as u32),
                lambda: score,
                candidates: m,
            });
            let p = job.sizes[mi];
            let key = match self.order {
                LocalOrder::Spt => p,
                LocalOrder::Fifo => t,
            };
            let ms = &mut machines[mi];
            let pos = ms
                .pending
                .partition_point(|&(k, id, _)| (k, id) <= (key, job.id));
            ms.pending.insert(pos, (key, job.id, p));

            start_next(mi, t, &mut machines, &mut completions, &mut trace);
        }

        (log.finish().expect("all jobs complete"), trace)
    }
}

impl OnlineScheduler for GreedyScheduler {
    fn name(&self) -> String {
        format!("greedy({:?},{:?})", self.dispatch, self.order)
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, Metrics};
    use osr_sim::{validate_log, ValidationConfig};

    fn check(inst: &Instance, s: &GreedyScheduler) -> FinishedLog {
        let (log, _) = s.run(inst);
        let rep = validate_log(inst, &log, &ValidationConfig::flow_time());
        assert!(rep.is_valid(), "{:?}: {:?}", s.name(), rep.errors);
        assert_eq!(log.rejected_count(), 0, "greedy must never reject");
        log
    }

    fn sample() -> Instance {
        InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![4.0, 8.0])
            .job(0.5, vec![2.0, 2.0])
            .job(1.0, vec![6.0, 3.0])
            .job(1.5, vec![1.0, 9.0])
            .build()
            .unwrap()
    }

    #[test]
    fn all_variants_produce_valid_schedules() {
        let inst = sample();
        for dispatch in [
            DispatchRule::EarliestCompletion,
            DispatchRule::LeastLoaded,
            DispatchRule::MinSize,
        ] {
            for order in [LocalOrder::Spt, LocalOrder::Fifo] {
                check(&inst, &GreedyScheduler { dispatch, order });
            }
        }
    }

    #[test]
    fn ect_balances_two_machines() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![4.0, 4.0])
            .job(0.0, vec![4.0, 4.0])
            .build()
            .unwrap();
        let log = check(&inst, &GreedyScheduler::ect_spt());
        let m0 = log.fate(JobId(0)).execution().unwrap().machine;
        let m1 = log.fate(JobId(1)).execution().unwrap().machine;
        assert_ne!(m0, m1, "ECT must spread identical simultaneous jobs");
    }

    #[test]
    fn spt_beats_fifo_on_inverted_arrivals() {
        // A blocking job queues up followers that arrive in *decreasing*
        // size order: FIFO serves them largest-first, SPT re-sorts.
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime).job(0.0, vec![50.0]);
        for k in 0..20 {
            b = b.job(0.1 + k as f64 * 0.1, vec![(21 - k) as f64]);
        }
        let inst = b.build().unwrap();
        let spt = check(&inst, &GreedyScheduler::ect_spt());
        let fifo = check(&inst, &GreedyScheduler::ect_fifo());
        let f_spt = Metrics::compute(&inst, &spt, 2.0).flow.flow_served;
        let f_fifo = Metrics::compute(&inst, &fifo, 2.0).flow.flow_served;
        assert!(f_spt < f_fifo, "SPT {f_spt} must beat FIFO {f_fifo}");
    }

    #[test]
    fn min_size_ignores_congestion() {
        // All jobs fastest on m0 — MinSize piles them there even when
        // m1 idles.
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![1.0, 1.1])
            .job(0.0, vec![1.0, 1.1])
            .job(0.0, vec![1.0, 1.1])
            .build()
            .unwrap();
        let s = GreedyScheduler {
            dispatch: DispatchRule::MinSize,
            order: LocalOrder::Spt,
        };
        let log = check(&inst, &s);
        for (_, e) in log.executions() {
            assert_eq!(e.machine, MachineId(0));
        }
    }

    #[test]
    fn respects_release_times() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(5.0, vec![1.0])
            .build()
            .unwrap();
        let log = check(&inst, &GreedyScheduler::ect_spt());
        assert_eq!(log.fate(JobId(0)).execution().unwrap().start, 5.0);
    }
}
