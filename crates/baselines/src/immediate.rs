//! Immediate-rejection policies — the subjects of Lemma 1.
//!
//! These policies must decide **at arrival** whether a job is rejected,
//! and can never revoke a started job. Lemma 1 shows every such policy
//! is `Ω(√Δ)`-competitive; EXP-L1 demonstrates the blow-up on the
//! adaptive construction, in contrast with the paper's algorithm whose
//! Rule 1 rejects *running* jobs in hindsight.

use osr_model::{
    Execution, FinishedLog, Instance, JobId, MachineId, RejectReason, Rejection, ScheduleLog,
};
use osr_sim::{DecisionEvent, DecisionTrace, EventQueue, OnlineScheduler};

/// Which jobs an [`ImmediateRejectScheduler`] drops at arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImmediatePolicy {
    /// Never reject (plain greedy; included for uniform comparison).
    Never,
    /// Reject any job whose size exceeds `threshold`, while the
    /// `ε`-fraction budget lasts.
    LargerThan {
        /// Size cutoff.
        threshold: f64,
    },
    /// Reject a job if its size exceeds `factor ×` the running mean of
    /// sizes seen so far, while the budget lasts.
    AboveMean {
        /// Multiplier over the running mean.
        factor: f64,
    },
}

/// Single-queue ECT+SPT scheduler that may reject only at arrival,
/// within an `ε`-fraction budget (Lemma 1's `ε-rejection policy`).
#[derive(Debug, Clone)]
pub struct ImmediateRejectScheduler {
    /// Budget: may reject at most `⌊ε·(arrivals so far)⌋` jobs.
    pub eps: f64,
    /// The rejection predicate.
    pub policy: ImmediatePolicy,
}

impl ImmediateRejectScheduler {
    /// Standard subject for EXP-L1: reject big jobs above the mean.
    pub fn above_mean(eps: f64, factor: f64) -> Self {
        ImmediateRejectScheduler {
            eps,
            policy: ImmediatePolicy::AboveMean { factor },
        }
    }

    /// Runs the policy.
    pub fn run(&self, instance: &Instance) -> (FinishedLog, DecisionTrace) {
        let m = instance.machines();
        let n = instance.len();
        let jobs = instance.jobs();
        let mut log = ScheduleLog::new(m, n);
        let mut trace = DecisionTrace::new();
        let mut completions: EventQueue<(usize, JobId)> = EventQueue::new();

        struct Mach {
            pending: Vec<(f64, JobId, f64)>, // (size key, id, size) — SPT
            running: Option<(JobId, f64, f64)>,
        }
        let mut machines: Vec<Mach> = (0..m)
            .map(|_| Mach {
                pending: Vec::new(),
                running: None,
            })
            .collect();

        let mut arrivals = 0usize;
        let mut rejected = 0usize;
        let mut size_sum = 0.0f64;

        let start_next = |mi: usize,
                          t: f64,
                          machines: &mut Vec<Mach>,
                          completions: &mut EventQueue<(usize, JobId)>,
                          trace: &mut DecisionTrace| {
            let ms = &mut machines[mi];
            if ms.running.is_some() || ms.pending.is_empty() {
                return;
            }
            let (_, id, p) = ms.pending.remove(0);
            let completion = t + p;
            ms.running = Some((id, t, completion));
            completions.push(completion, (mi, id));
            trace.push(DecisionEvent::Start {
                time: t,
                job: id,
                machine: MachineId(mi as u32),
                speed: 1.0,
            });
        };

        let mut next_arrival = 0usize;
        loop {
            let ta = jobs.get(next_arrival).map(|j| j.release);
            let tc = completions.peek_time();
            let do_completion = match (ta, tc) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(a), Some(c)) => c <= a,
            };

            if do_completion {
                let (t, (mi, job)) = completions.pop().expect("peeked");
                let matches = machines[mi].running.is_some_and(|(j, _, _)| j == job);
                if !matches {
                    continue;
                }
                let (_, start, completion) = machines[mi].running.take().unwrap();
                log.complete(
                    job,
                    Execution {
                        machine: MachineId(mi as u32),
                        start,
                        completion,
                        speed: 1.0,
                    },
                );
                trace.push(DecisionEvent::Complete {
                    time: t,
                    job,
                    machine: MachineId(mi as u32),
                });
                start_next(mi, t, &mut machines, &mut completions, &mut trace);
                continue;
            }

            let job = &jobs[next_arrival];
            next_arrival += 1;
            let t = job.release;
            arrivals += 1;
            let p_min = job.min_size();
            let mean = if arrivals > 1 {
                size_sum / (arrivals - 1) as f64
            } else {
                0.0
            };
            size_sum += p_min;

            // Decide rejection *now or never*.
            let budget_ok = (rejected + 1) as f64 <= self.eps * arrivals as f64;
            let wants_reject = match self.policy {
                ImmediatePolicy::Never => false,
                ImmediatePolicy::LargerThan { threshold } => p_min > threshold,
                ImmediatePolicy::AboveMean { factor } => arrivals > 1 && p_min > factor * mean,
            };
            if wants_reject && budget_ok {
                rejected += 1;
                log.reject(
                    job.id,
                    Rejection {
                        time: t,
                        reason: RejectReason::Immediate,
                        partial: None,
                    },
                );
                trace.push(DecisionEvent::Reject {
                    time: t,
                    job: job.id,
                    machine: MachineId(0),
                    reason: RejectReason::Immediate,
                    counter: rejected as f64,
                });
                continue;
            }

            // Otherwise dispatch by ECT, serve SPT.
            let mut best: Option<(usize, f64)> = None;
            for mi in 0..m {
                let p = job.sizes[mi];
                if !p.is_finite() {
                    continue;
                }
                let pend: f64 = machines[mi].pending.iter().map(|&(_, _, q)| q).sum();
                let rem = machines[mi]
                    .running
                    .map_or(0.0, |(_, _, c)| (c - t).max(0.0));
                let score = pend + rem + p;
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((mi, score));
                }
            }
            let Some((mi, score)) = best else {
                osr_sim::reject_ineligible(&mut log, &mut trace, job.id, t);
                continue;
            };
            trace.push(DecisionEvent::Dispatch {
                time: t,
                job: job.id,
                machine: MachineId(mi as u32),
                lambda: score,
                candidates: m,
            });
            let p = job.sizes[mi];
            let ms = &mut machines[mi];
            let pos = ms
                .pending
                .partition_point(|&(k, id, _)| (k, id) <= (p, job.id));
            ms.pending.insert(pos, (p, job.id, p));
            start_next(mi, t, &mut machines, &mut completions, &mut trace);
        }

        (log.finish().expect("all decided"), trace)
    }
}

impl OnlineScheduler for ImmediateRejectScheduler {
    fn name(&self) -> String {
        format!("immediate({:?}, eps={})", self.policy, self.eps)
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, JobFate};
    use osr_sim::{validate_log, ValidationConfig};

    #[test]
    fn budget_is_enforced() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..100 {
            b = b.job(k as f64, vec![if k % 2 == 0 { 1.0 } else { 100.0 }]);
        }
        let inst = b.build().unwrap();
        let s = ImmediateRejectScheduler {
            eps: 0.1,
            policy: ImmediatePolicy::LargerThan { threshold: 50.0 },
        };
        let (log, _) = s.run(&inst);
        let rep = validate_log(&inst, &log, &ValidationConfig::flow_time());
        assert!(rep.is_valid(), "{:?}", rep.errors);
        assert!(
            log.rejected_count() <= 10,
            "rejected {}",
            log.rejected_count()
        );
        assert!(
            log.rejected_count() > 0,
            "policy should have used its budget"
        );
    }

    #[test]
    fn never_policy_never_rejects() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..20 {
            b = b.job(k as f64 * 0.1, vec![5.0]);
        }
        let inst = b.build().unwrap();
        let s = ImmediateRejectScheduler {
            eps: 0.5,
            policy: ImmediatePolicy::Never,
        };
        let (log, _) = s.run(&inst);
        assert_eq!(log.rejected_count(), 0);
    }

    #[test]
    fn above_mean_rejects_outliers_only() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..50 {
            b = b.job(k as f64, vec![1.0]);
        }
        // One giant at the end.
        b = b.job(50.0, vec![1000.0]);
        let inst = b.build().unwrap();
        let s = ImmediateRejectScheduler::above_mean(0.2, 10.0);
        let (log, _) = s.run(&inst);
        let giant = inst
            .jobs()
            .iter()
            .find(|j| j.sizes[0] == 1000.0)
            .unwrap()
            .id;
        assert!(matches!(log.fate(giant), JobFate::Rejected(_)));
        assert_eq!(log.rejected_count(), 1);
    }

    #[test]
    fn commitment_cannot_be_revoked() {
        // A long job starts; a flood arrives; the policy cannot
        // interrupt it — the shorts must wait (this is the Lemma 1
        // mechanism).
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime).job(0.0, vec![50.0]);
        for k in 0..20 {
            b = b.job(1.0 + 0.1 * k as f64, vec![0.1]);
        }
        let inst = b.build().unwrap();
        let s = ImmediateRejectScheduler::above_mean(0.3, 5.0);
        let (log, _) = s.run(&inst);
        // The long job completes (it was first; nothing seen before it).
        let e0 = log.fate(JobId(0)).execution().expect("committed");
        assert_eq!(e0.completion, 50.0);
        // Every surviving short job waits for it.
        for (id, e) in log.executions() {
            if id != JobId(0) {
                assert!(e.start >= 50.0, "{id} started at {}", e.start);
            }
        }
    }
}
