//! AVERAGE-RATE-style energy baseline for §4.
//!
//! Each job runs at its minimal constant speed `p_ij/(d_j − r_j)` over
//! its **entire window** `[r_j, d_j]` — a valid §4 schedule (jobs may
//! overlap on a machine; each runs continuously at constant speed).
//! Machines are chosen greedily by marginal energy. This is the
//! classic AVR heuristic of Yao–Demers–Shenker \[17\] adapted to
//! unrelated machines, and the natural comparator for the §4 greedy:
//! AVR fixes the strategy shape, §4 optimizes it.

use osr_core::energymin::SpeedProfile;
use osr_model::{Execution, FinishedLog, Instance, InstanceKind, MachineId, ScheduleLog};
use osr_sim::{DecisionEvent, DecisionTrace, OnlineScheduler};

/// AVR baseline scheduler.
#[derive(Debug, Clone)]
pub struct AvrScheduler {
    /// Power exponent.
    pub alpha: f64,
}

impl AvrScheduler {
    /// Runs AVR, returning the log, trace and total energy.
    pub fn run(&self, instance: &Instance) -> (FinishedLog, DecisionTrace, f64) {
        assert_eq!(instance.kind(), InstanceKind::Energy);
        let m = instance.machines();
        let mut profiles: Vec<SpeedProfile> = (0..m).map(|_| SpeedProfile::new()).collect();
        let mut log = ScheduleLog::new(m, instance.len());
        let mut trace = DecisionTrace::new();

        for job in instance.jobs() {
            let r = job.release;
            let d = job.deadline.expect("energy instance");
            let mut best: Option<(usize, f64, f64)> = None; // (machine, speed, marginal)
            for mi in 0..m {
                let p = job.sizes[mi];
                if !p.is_finite() {
                    continue;
                }
                let v = p / (d - r);
                let marginal = profiles[mi].marginal_energy(r, d, v, self.alpha);
                if best.is_none_or(|(_, _, bm)| marginal < bm) {
                    best = Some((mi, v, marginal));
                }
            }
            let Some((mi, v, marginal)) = best else {
                osr_sim::reject_ineligible(&mut log, &mut trace, job.id, r);
                continue;
            };
            profiles[mi].add(r, d, v);
            trace.push(DecisionEvent::Dispatch {
                time: r,
                job: job.id,
                machine: MachineId(mi as u32),
                lambda: marginal,
                candidates: m,
            });
            log.complete(
                job.id,
                Execution {
                    machine: MachineId(mi as u32),
                    start: r,
                    completion: d,
                    speed: v,
                },
            );
        }

        let energy: f64 = profiles.iter().map(|p| p.energy(self.alpha)).sum();
        (log.finish().expect("all assigned"), trace, energy)
    }
}

impl OnlineScheduler for AvrScheduler {
    fn name(&self) -> String {
        format!("avr(alpha={})", self.alpha)
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, JobId};
    use osr_sim::{validate_log, ValidationConfig};

    #[test]
    fn single_job_matches_yds() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 4.0, vec![2.0])
            .build()
            .unwrap();
        let (log, _, energy) = AvrScheduler { alpha: 2.0 }.run(&inst);
        let rep = validate_log(&inst, &log, &ValidationConfig::energy());
        assert!(rep.is_valid(), "{:?}", rep.errors);
        assert!((energy - 1.0).abs() < 1e-9);
        let e = log.fate(JobId(0)).execution().unwrap();
        assert_eq!(e.start, 0.0);
        assert_eq!(e.completion, 4.0);
        assert!((e.speed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_windows_pay_superadditive_energy() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 2.0, vec![1.0])
            .deadline_job(0.0, 2.0, vec![1.0])
            .build()
            .unwrap();
        let (_, _, energy) = AvrScheduler { alpha: 2.0 }.run(&inst);
        // Both at speed 0.5 over [0,2]: (1.0)²·2 = 2, versus 2·0.5²·2=1
        // if they were separable — AVR pays the convexity penalty.
        assert!((energy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multi_machine_spreads_load() {
        let inst = InstanceBuilder::new(2, InstanceKind::Energy)
            .deadline_job(0.0, 2.0, vec![1.0, 1.0])
            .deadline_job(0.0, 2.0, vec![1.0, 1.0])
            .build()
            .unwrap();
        let (log, _, energy) = AvrScheduler { alpha: 2.0 }.run(&inst);
        let m0 = log.fate(JobId(0)).execution().unwrap().machine;
        let m1 = log.fate(JobId(1)).execution().unwrap().machine;
        assert_ne!(m0, m1);
        assert!((energy - 1.0).abs() < 1e-9); // 2 × (0.5²·2)
    }

    #[test]
    fn respects_restricted_assignment() {
        let inst = InstanceBuilder::new(2, InstanceKind::Energy)
            .deadline_job(0.0, 2.0, vec![f64::INFINITY, 1.0])
            .build()
            .unwrap();
        let (log, _, _) = AvrScheduler { alpha: 2.0 }.run(&inst);
        assert_eq!(
            log.fate(JobId(0)).execution().unwrap().machine,
            MachineId(1)
        );
    }
}
