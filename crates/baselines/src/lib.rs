//! # osr-baselines — comparators and certified lower bounds
//!
//! Everything the paper's algorithms are measured *against*:
//!
//! * [`greedy`] — no-rejection online baselines (ECT / least-loaded /
//!   min-size dispatch × SPT / FIFO local order). These are the
//!   schedulers the paper's introduction argues cannot be competitive;
//!   EXP-T1-BASE quantifies the gap.
//! * [`immediate`] — immediate-rejection policies (decide at arrival,
//!   never revoke), the subjects of Lemma 1's `Ω(√Δ)` lower bound.
//! * [`speed_aug`] — a speed-augmentation + rejection baseline in the
//!   spirit of Lucarelli et al. ESA'16 \[5\]: `(1+ε_s)`-speed machines,
//!   Rule-1-style rejection only. Used to compare "rejection only"
//!   (this paper) against "rejection + speed" (prior work).
//! * [`srpt`] — preemptive SRPT on a single machine: the *optimal*
//!   preemptive flow-time, hence a true lower bound on non-preemptive
//!   OPT for `m = 1` instances.
//! * [`optimal`] — exact branch-and-bound OPT for tiny instances
//!   (`n ≤ 9`), the ground truth for EXP-T1-OPT.
//! * [`lower_bounds`] — the combined certified flow-time lower bound
//!   (dual/2 ∨ trivial bounds ∨ SRPT) and the YDS optimal preemptive
//!   single-machine energy (lower bound for §4).
//! * [`avr`] — an AVERAGE-RATE-style energy baseline: every job runs
//!   at its minimal constant speed over its entire window (a valid §4
//!   schedule since jobs may overlap), machines chosen by marginal
//!   energy.

// Stylistic lints intentionally not followed:
// - `needless_range_loop`: machine loops index several parallel state
//   arrays; iterator zips would obscure the shared index.
// - `neg_cmp_op_on_partial_ord`: `!(x > 0.0)` deliberately treats NaN as
//   invalid in parameter validation.
#![allow(clippy::needless_range_loop, clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod avr;
pub mod greedy;
pub mod immediate;
pub mod lower_bounds;
pub mod optimal;
pub mod speed_aug;
pub mod srpt;

pub use avr::AvrScheduler;
pub use greedy::{DispatchRule, GreedyScheduler, LocalOrder};
pub use immediate::{ImmediatePolicy, ImmediateRejectScheduler};
pub use lower_bounds::{
    energy_lower_bound, energyflow_alone_lower_bound, flow_lower_bound, pooled_yds_lower_bound,
    yds_energy, FlowLowerBound,
};
pub use optimal::optimal_flow;
pub use speed_aug::SpeedAugScheduler;
pub use srpt::srpt_flow;
