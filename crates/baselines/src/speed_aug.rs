//! Speed-augmentation + rejection baseline (ESA'16 style).
//!
//! Lucarelli et al. \[5\] achieve `O(1/(ε_r·ε_s))`-competitiveness with
//! machines running at speed `1+ε_s` *and* an `ε_r` rejection budget.
//! This baseline reproduces that regime's mechanics — ECT dispatch, SPT
//! order, executions at speed `1+ε_s`, and a Rule-1-style interrupt
//! rejection — so EXP-T1-BASE can compare "rejection only" (the SPAA'18
//! result) against "rejection plus speed" on the same workloads.
//!
//! Note the comparison caveat reported by the harness: a `(1+ε_s)`-speed
//! schedule is *not* feasible for the adversary's unit-speed machines;
//! its flow-time is a reference point, not a competing feasible
//! schedule.

use osr_model::{
    Execution, FinishedLog, Instance, JobId, MachineId, PartialRun, RejectReason, Rejection,
    ScheduleLog,
};
use osr_sim::{DecisionEvent, DecisionTrace, EventQueue, OnlineScheduler};

/// ESA'16-style baseline: `(1+ε_s)` speed, `ε_r` rejection.
#[derive(Debug, Clone)]
pub struct SpeedAugScheduler {
    /// Speed augmentation `ε_s ≥ 0` (machines run at `1+ε_s`).
    pub eps_s: f64,
    /// Rejection parameter `ε_r ∈ (0, 1]` (Rule-1 threshold `⌈1/ε_r⌉`).
    pub eps_r: f64,
}

impl SpeedAugScheduler {
    /// Constructs with validation.
    pub fn new(eps_s: f64, eps_r: f64) -> Result<Self, String> {
        if !(eps_s >= 0.0) || !eps_s.is_finite() {
            return Err(format!("eps_s must be ≥ 0, got {eps_s}"));
        }
        if !(eps_r > 0.0 && eps_r <= 1.0) {
            return Err(format!("eps_r must be in (0,1], got {eps_r}"));
        }
        Ok(SpeedAugScheduler { eps_s, eps_r })
    }

    /// Runs the baseline.
    pub fn run(&self, instance: &Instance) -> (FinishedLog, DecisionTrace) {
        let speed = 1.0 + self.eps_s;
        let rule1_at = (1.0 / self.eps_r - 1e-9).ceil().max(1.0) as u64;
        let m = instance.machines();
        let n = instance.len();
        let jobs = instance.jobs();
        let mut log = ScheduleLog::new(m, n);
        let mut trace = DecisionTrace::new();
        let mut completions: EventQueue<(usize, JobId)> = EventQueue::new();

        struct Mach {
            pending: Vec<(f64, JobId, f64)>,         // (size, id, size) — SPT
            running: Option<(JobId, f64, f64, u64)>, // job, start, completion, v
        }
        let mut machines: Vec<Mach> = (0..m)
            .map(|_| Mach {
                pending: Vec::new(),
                running: None,
            })
            .collect();

        let start_next = |mi: usize,
                          t: f64,
                          machines: &mut Vec<Mach>,
                          completions: &mut EventQueue<(usize, JobId)>,
                          trace: &mut DecisionTrace| {
            let ms = &mut machines[mi];
            if ms.running.is_some() || ms.pending.is_empty() {
                return;
            }
            let (_, id, p) = ms.pending.remove(0);
            let completion = t + p / speed;
            ms.running = Some((id, t, completion, 0));
            completions.push(completion, (mi, id));
            trace.push(DecisionEvent::Start {
                time: t,
                job: id,
                machine: MachineId(mi as u32),
                speed,
            });
        };

        let mut next_arrival = 0usize;
        loop {
            let ta = jobs.get(next_arrival).map(|j| j.release);
            let tc = completions.peek_time();
            let do_completion = match (ta, tc) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(a), Some(c)) => c <= a,
            };

            if do_completion {
                let (t, (mi, job)) = completions.pop().expect("peeked");
                let matches = machines[mi].running.is_some_and(|(j, _, _, _)| j == job);
                if !matches {
                    continue;
                }
                let (_, start, completion, _) = machines[mi].running.take().unwrap();
                log.complete(
                    job,
                    Execution {
                        machine: MachineId(mi as u32),
                        start,
                        completion,
                        speed,
                    },
                );
                trace.push(DecisionEvent::Complete {
                    time: t,
                    job,
                    machine: MachineId(mi as u32),
                });
                start_next(mi, t, &mut machines, &mut completions, &mut trace);
                continue;
            }

            let job = &jobs[next_arrival];
            next_arrival += 1;
            let t = job.release;

            let mut best: Option<(usize, f64)> = None;
            for mi in 0..m {
                let p = job.sizes[mi];
                if !p.is_finite() {
                    continue;
                }
                let pend: f64 = machines[mi].pending.iter().map(|&(_, _, q)| q).sum();
                let rem = machines[mi]
                    .running
                    .map_or(0.0, |(_, _, c, _)| (c - t).max(0.0) * speed);
                let score = (pend + rem + p) / speed;
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((mi, score));
                }
            }
            let Some((mi, score)) = best else {
                osr_sim::reject_ineligible(&mut log, &mut trace, job.id, t);
                continue;
            };
            trace.push(DecisionEvent::Dispatch {
                time: t,
                job: job.id,
                machine: MachineId(mi as u32),
                lambda: score,
                candidates: m,
            });
            let p = job.sizes[mi];
            let ms = &mut machines[mi];
            let pos = ms
                .pending
                .partition_point(|&(k, id, _)| (k, id) <= (p, job.id));
            ms.pending.insert(pos, (p, job.id, p));

            // Rule-1-style rejection of the running job.
            if let Some((_, _, _, v)) = machines[mi].running.as_mut() {
                *v += 1;
                if *v >= rule1_at {
                    let (k, start, _completion, v) = machines[mi].running.take().unwrap();
                    log.reject(
                        k,
                        Rejection {
                            time: t,
                            reason: RejectReason::RuleOne,
                            partial: Some(PartialRun {
                                machine: MachineId(mi as u32),
                                start,
                                end: t,
                                speed,
                            }),
                        },
                    );
                    trace.push(DecisionEvent::Reject {
                        time: t,
                        job: k,
                        machine: MachineId(mi as u32),
                        reason: RejectReason::RuleOne,
                        counter: v as f64,
                    });
                }
            }

            start_next(mi, t, &mut machines, &mut completions, &mut trace);
        }

        (log.finish().expect("all decided"), trace)
    }
}

impl OnlineScheduler for SpeedAugScheduler {
    fn name(&self) -> String {
        format!("esa16-speedaug(s=1+{}, eps_r={})", self.eps_s, self.eps_r)
    }

    fn schedule(&mut self, instance: &Instance) -> FinishedLog {
        self.run(instance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind, Metrics};
    use osr_sim::{validate_log, ValidationConfig};

    #[test]
    fn faster_machines_finish_sooner() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![3.0])
            .build()
            .unwrap();
        let s = SpeedAugScheduler::new(0.5, 0.5).unwrap();
        let (log, _) = s.run(&inst);
        let e = log.fate(JobId(0)).execution().unwrap();
        assert!((e.completion - 2.0).abs() < 1e-9); // 3 / 1.5
                                                    // Volume conservation holds with the augmented speed.
        let mut cfg = ValidationConfig::flow_energy();
        cfg.allow_parallel = false;
        let rep = validate_log(&inst, &log, &cfg);
        assert!(rep.is_valid(), "{:?}", rep.errors);
    }

    #[test]
    fn rejection_triggers_like_rule_one() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![100.0])
            .job(1.0, vec![1.0])
            .job(2.0, vec![1.0])
            .build()
            .unwrap();
        let s = SpeedAugScheduler::new(0.0, 0.5).unwrap();
        let (log, _) = s.run(&inst);
        assert!(log.fate(JobId(0)).is_rejected());
        assert!(log.fate(JobId(1)).is_completed());
    }

    #[test]
    fn speed_reduces_flow_on_congested_instance() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..100 {
            b = b.job(k as f64 * 0.9, vec![1.0]);
        }
        let inst = b.build().unwrap();
        let slow = SpeedAugScheduler::new(0.0, 1e-9_f64.max(0.01)).unwrap();
        let fast = SpeedAugScheduler::new(0.5, 0.01).unwrap();
        let f_slow = Metrics::compute(&inst, &slow.run(&inst).0, 2.0)
            .flow
            .flow_all;
        let f_fast = Metrics::compute(&inst, &fast.run(&inst).0, 2.0)
            .flow
            .flow_all;
        assert!(f_fast < f_slow, "augmented {f_fast} vs plain {f_slow}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(SpeedAugScheduler::new(-0.1, 0.5).is_err());
        assert!(SpeedAugScheduler::new(0.5, 0.0).is_err());
        assert!(SpeedAugScheduler::new(0.5, 2.0).is_err());
    }
}
