//! Exact optimal non-preemptive total flow-time for tiny instances.
//!
//! Ground truth for EXP-T1-OPT. The search space decomposes:
//!
//! 1. enumerate machine assignments (`m^n` leaves, pruned);
//! 2. for each machine, the optimal schedule of its assigned set is an
//!    ordering served ASAP (`start_k = max(prev completion, r_k)`), so
//!    a memoized branch-and-bound over permutations of each subset
//!    yields `minflow(i, S)` once per `(machine, subset)` pair.
//!
//! Deliberate idling beyond ASAP-within-an-order is never useful for a
//! *fixed* order (shifting a block earlier only reduces completion
//! times), and every waiting strategy is dominated by some order, so
//! the permutation space is exhaustive.
//!
//! Practical limits: `n ≤ 12` hard cap (assert), intended for `n ≤ 9`.

use std::collections::HashMap;

use osr_model::Instance;

/// Exact minimal total flow-time over all non-preemptive schedules
/// serving every job. Panics for `n > 12` (the search is exponential).
pub fn optimal_flow(instance: &Instance) -> f64 {
    let n = instance.len();
    assert!(n <= 12, "exact OPT limited to n ≤ 12, got {n}");
    let m = instance.machines();
    let jobs = instance.jobs();
    let releases: Vec<f64> = jobs.iter().map(|j| j.release).collect();

    // minflow(machine, subset) memo.
    let mut memo: HashMap<(usize, u32), f64> = HashMap::new();

    // Branch-and-bound over permutations of `set` on machine `mi`.
    fn seq_search(
        mi: usize,
        set: u32,
        free: f64,
        acc: f64,
        best: &mut f64,
        sizes: &[Vec<f64>],
        releases: &[f64],
    ) {
        if set == 0 {
            if acc < *best {
                *best = acc;
            }
            return;
        }
        // Lower bound: each remaining job's flow is at least
        // p_j + max(0, free − r_j).
        let mut lb = acc;
        let mut s = set;
        while s != 0 {
            let j = s.trailing_zeros() as usize;
            s &= s - 1;
            lb += sizes[j][mi] + (free - releases[j]).max(0.0);
        }
        if lb >= *best {
            return;
        }
        let mut s = set;
        while s != 0 {
            let j = s.trailing_zeros() as usize;
            s &= s - 1;
            let start = free.max(releases[j]);
            let completion = start + sizes[j][mi];
            seq_search(
                mi,
                set & !(1u32 << j),
                completion,
                acc + completion - releases[j],
                best,
                sizes,
                releases,
            );
        }
    }

    let sizes: Vec<Vec<f64>> = jobs.iter().map(|j| j.sizes.clone()).collect();

    let minflow = |mi: usize, set: u32, memo: &mut HashMap<(usize, u32), f64>| -> f64 {
        if set == 0 {
            return 0.0;
        }
        if let Some(&v) = memo.get(&(mi, set)) {
            return v;
        }
        let mut best = f64::INFINITY;
        seq_search(mi, set, 0.0, 0.0, &mut best, &sizes, &releases);
        memo.insert((mi, set), best);
        best
    };

    // Enumerate assignments via DFS with a per-job eligibility filter.
    fn assign_search(
        j: usize,
        n: usize,
        m: usize,
        masks: &mut Vec<u32>,
        best: &mut f64,
        eligible: &[Vec<bool>],
        eval: &mut dyn FnMut(&[u32]) -> f64,
    ) {
        if j == n {
            let total = eval(masks);
            if total < *best {
                *best = total;
            }
            return;
        }
        for mi in 0..m {
            if !eligible[j][mi] {
                continue;
            }
            masks[mi] |= 1 << j;
            assign_search(j + 1, n, m, masks, best, eligible, eval);
            masks[mi] &= !(1 << j);
        }
    }

    let eligible: Vec<Vec<bool>> = jobs
        .iter()
        .map(|j| j.sizes.iter().map(|p| p.is_finite()).collect())
        .collect();

    let mut best = f64::INFINITY;
    let mut masks = vec![0u32; m];
    let mut eval = |masks: &[u32]| -> f64 {
        masks
            .iter()
            .enumerate()
            .map(|(mi, &set)| minflow(mi, set, &mut memo))
            .sum()
    };
    assign_search(0, n, m, &mut masks, &mut best, &eligible, &mut eval);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind};

    #[test]
    fn single_job() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(3.0, vec![2.0])
            .build()
            .unwrap();
        assert_eq!(optimal_flow(&inst), 2.0);
    }

    #[test]
    fn spt_is_optimal_for_simultaneous_release() {
        // Jobs 1, 2, 3 at t=0 on one machine: SPT flow = 1 + 3 + 6.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![3.0])
            .job(0.0, vec![1.0])
            .job(0.0, vec![2.0])
            .build()
            .unwrap();
        assert_eq!(optimal_flow(&inst), 10.0);
    }

    #[test]
    fn idling_for_a_short_job_when_it_pays() {
        // Long (p=10) at 0, short (p=1) at 0.5. Orders: long-first
        // flow = 10 + (10.5 − 0.5 + 1) = 21 → wait, compute: long
        // completes 10 (flow 10); short starts 10, completes 11, flow
        // 10.5. Total 20.5. Short-first: idle to 0.5, short completes
        // 1.5 (flow 1), long completes 11.5 (flow 11.5) → 12.5. OPT
        // must find 12.5.
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![10.0])
            .job(0.5, vec![1.0])
            .build()
            .unwrap();
        assert!((optimal_flow(&inst) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn two_machines_split() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![5.0, 5.0])
            .job(0.0, vec![5.0, 5.0])
            .build()
            .unwrap();
        assert_eq!(optimal_flow(&inst), 10.0);
    }

    #[test]
    fn unrelated_speeds_exploited() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![1.0, 100.0])
            .job(0.0, vec![100.0, 1.0])
            .build()
            .unwrap();
        assert_eq!(optimal_flow(&inst), 2.0);
    }

    #[test]
    fn restricted_assignment_respected() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![f64::INFINITY, 2.0])
            .job(0.0, vec![f64::INFINITY, 3.0])
            .build()
            .unwrap();
        // Both forced onto m1: 2 + 5 or 3 + 5 → best 2, then 2+3=5: 7.
        assert_eq!(optimal_flow(&inst), 7.0);
    }

    #[test]
    fn optimal_beats_or_matches_heuristics() {
        use crate::greedy::GreedyScheduler;
        use osr_model::Metrics;
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![4.0, 6.0])
            .job(0.5, vec![3.0, 2.0])
            .job(1.0, vec![5.0, 5.0])
            .job(1.5, vec![1.0, 2.0])
            .job(2.0, vec![2.0, 1.0])
            .build()
            .unwrap();
        let opt = optimal_flow(&inst);
        let (log, _) = GreedyScheduler::ect_spt().run(&inst);
        let greedy = Metrics::compute(&inst, &log, 2.0).flow.flow_served;
        assert!(opt <= greedy + 1e-9, "opt {opt} > greedy {greedy}");
        assert!(opt > 0.0);
    }

    #[test]
    #[should_panic(expected = "n ≤ 12")]
    fn large_instances_refused() {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for k in 0..13 {
            b = b.job(k as f64, vec![1.0]);
        }
        optimal_flow(&b.build().unwrap());
    }
}
