//! Certified lower bounds used as ratio denominators.
//!
//! Every bound here is a *true* lower bound on the relevant OPT, so
//! `ALG / bound` over-estimates the competitive ratio — measurements
//! below the theorem curve genuinely validate the theorems.

use osr_model::Instance;

use crate::srpt::srpt_flow;

/// The components of the flow-time lower bound and their maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowLowerBound {
    /// Feasible-dual objective divided by 2 (the LP is a factor-2
    /// relaxation); 0 when no dual was supplied.
    pub dual_half: f64,
    /// `Σ_j min_i p_ij` — every job must run somewhere.
    pub trivial: f64,
    /// Preemptive SRPT optimum (single-machine instances only).
    pub srpt: Option<f64>,
    /// The certified bound: max of the components.
    pub value: f64,
}

/// Combines the available certified lower bounds on the optimal
/// non-preemptive total flow-time. `dual_objective` is the §2
/// algorithm's feasible dual objective when available.
pub fn flow_lower_bound(instance: &Instance, dual_objective: Option<f64>) -> FlowLowerBound {
    let dual_half = dual_objective.map_or(0.0, |d| (d / 2.0).max(0.0));
    let trivial = instance.total_min_size();
    let srpt = if instance.machines() == 1 {
        Some(srpt_flow(instance))
    } else {
        None
    };
    let value = dual_half.max(trivial).max(srpt.unwrap_or(0.0));
    FlowLowerBound {
        dual_half,
        trivial,
        srpt,
        value,
    }
}

/// Per-job alone-cost lower bound for the §3 objective: each job, run
/// alone at the best constant speed `s* = (w/(α−1))^{1/α}` on its
/// fastest machine, costs `w·p/s* + p·s*^{α−1}`. Queueing, contention
/// and convexity only increase the true cost, and energy is
/// superadditive under overlap, so the sum lower-bounds OPT (which
/// must serve **all** jobs).
pub fn energyflow_alone_lower_bound(instance: &Instance, alpha: f64) -> f64 {
    assert!(alpha > 1.0);
    instance
        .jobs()
        .iter()
        .filter(|j| j.min_size().is_finite()) // everywhere-ineligible: servable by no schedule
        .map(|j| {
            let p = j.min_size();
            let s = (j.weight / (alpha - 1.0)).powf(1.0 / alpha);
            j.weight * p / s + p * s.powf(alpha - 1.0)
        })
        .sum()
}

/// Optimal preemptive single-machine energy via the YDS critical-
/// interval algorithm — a lower bound on the §4 single-machine OPT
/// (preemptive relaxation of the non-preemptive problem).
///
/// Classic peeling: repeatedly find the interval `[t1, t2]` maximizing
/// intensity `g = (Σ volumes of jobs with [r, d] ⊆ [t1, t2]) / (t2−t1)`,
/// charge those jobs energy `g^α · (t2−t1)`, remove them, and collapse
/// the interval out of the remaining jobs' windows. The per-iteration
/// critical-interval scan is `O(n²)` (incremental volume accumulation
/// over deadline-sorted jobs for each left endpoint).
pub fn yds_energy(instance: &Instance, alpha: f64) -> f64 {
    assert_eq!(instance.machines(), 1, "YDS bound is single-machine only");
    let jobs: Vec<(f64, f64, f64)> = instance
        .jobs()
        .iter()
        .map(|j| (j.release, j.deadline.expect("energy instance"), j.sizes[0]))
        .collect();
    yds_from_tuples(jobs, alpha)
}

/// Pooled-YDS lower bound for **multi-machine** energy instances.
///
/// Given any `m`-machine schedule with machine speeds `s_i(t)`, a single
/// pooled machine running at `Σ_i s_i(t)` can preemptively complete every
/// job's *minimum* volume `min_i p_ij` within its window, so
/// `YDS(min-volumes) ≤ Σ (Σ_i s_i)^α dt`. By the power-mean inequality
/// `(Σ s_i)^α ≤ m^{α−1} Σ s_i^α`, hence
///
/// ```text
/// OPT_m ≥ YDS(min-volumes) / m^{α−1}.
/// ```
///
/// Tighter than the per-job bound whenever windows overlap heavily.
pub fn pooled_yds_lower_bound(instance: &Instance, alpha: f64) -> f64 {
    let jobs: Vec<(f64, f64, f64)> = instance
        .jobs()
        .iter()
        .filter(|j| j.min_size().is_finite()) // see energyflow_alone_lower_bound
        .map(|j| {
            (
                j.release,
                j.deadline.expect("energy instance"),
                j.min_size(),
            )
        })
        .collect();
    let m = instance.machines() as f64;
    yds_from_tuples(jobs, alpha) / m.powf(alpha - 1.0)
}

/// Best available certified lower bound for a §4 instance: the max of
/// the per-job bound and the pooled-YDS bound (which coincides with
/// exact YDS on a single machine).
pub fn energy_lower_bound(instance: &Instance, alpha: f64) -> f64 {
    osr_core::energymin::per_job_energy_lower_bound(instance, alpha)
        .max(pooled_yds_lower_bound(instance, alpha))
}

/// YDS over raw `(release, deadline, volume)` tuples.
fn yds_from_tuples(mut jobs: Vec<(f64, f64, f64)>, alpha: f64) -> f64 {
    let mut energy = 0.0f64;

    while !jobs.is_empty() {
        // Candidate interval endpoints: all releases and deadlines.
        let mut points: Vec<f64> = Vec::with_capacity(jobs.len() * 2);
        for &(r, d, _) in &jobs {
            points.push(r);
            points.push(d);
        }
        points.sort_by(f64::total_cmp);
        points.dedup();

        // Jobs sorted by deadline for incremental accumulation.
        let mut by_deadline = jobs.clone();
        by_deadline.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut best = (0.0f64, 0.0f64, 0.0f64); // (intensity, t1, t2)
        for &t1 in points.iter() {
            // Sweep t2 rightward, accumulating volumes of jobs with
            // r ≥ t1 whose deadline has been passed.
            let mut vol = 0.0;
            let mut k = 0usize;
            for &t2 in points.iter() {
                if t2 <= t1 {
                    continue;
                }
                while k < by_deadline.len() && by_deadline[k].1 <= t2 {
                    if by_deadline[k].0 >= t1 {
                        vol += by_deadline[k].2;
                    }
                    k += 1;
                }
                let g = vol / (t2 - t1);
                if g > best.0 {
                    best = (g, t1, t2);
                }
            }
        }
        let (g, t1, t2) = best;
        if g <= 0.0 {
            break;
        }
        energy += g.powf(alpha) * (t2 - t1);
        // Remove the critical jobs; collapse [t1, t2] for the rest.
        let shrink = t2 - t1;
        jobs.retain(|&(r, d, _)| !(r >= t1 && d <= t2));
        for job in &mut jobs {
            let map = |t: f64| {
                if t <= t1 {
                    t
                } else if t >= t2 {
                    t - shrink
                } else {
                    t1
                }
            };
            job.0 = map(job.0);
            job.1 = map(job.1);
            debug_assert!(job.1 > job.0, "window must stay positive after collapse");
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind};

    #[test]
    fn flow_lb_picks_the_max() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![2.0])
            .job(0.0, vec![2.0])
            .build()
            .unwrap();
        // trivial = 4; srpt = 2 + 4 = 6; dual: pretend 20 → half 10.
        let lb = flow_lower_bound(&inst, Some(20.0));
        assert_eq!(lb.trivial, 4.0);
        assert_eq!(lb.srpt, Some(6.0));
        assert_eq!(lb.dual_half, 10.0);
        assert_eq!(lb.value, 10.0);
        // Without dual, SRPT wins.
        assert_eq!(flow_lower_bound(&inst, None).value, 6.0);
    }

    #[test]
    fn negative_dual_clamped() {
        let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![3.0, 5.0])
            .build()
            .unwrap();
        let lb = flow_lower_bound(&inst, Some(-7.0));
        assert_eq!(lb.dual_half, 0.0);
        assert_eq!(lb.value, 3.0);
        assert!(lb.srpt.is_none(), "multi-machine has no SRPT component");
    }

    #[test]
    fn yds_single_job_runs_at_density() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 4.0, vec![2.0])
            .build()
            .unwrap();
        // g = 0.5 over [0,4]: energy = 0.5²·4 = 1 (α=2).
        assert!((yds_energy(&inst, 2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn yds_two_nested_jobs() {
        // Tight inner job forces high speed only inside its window.
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 10.0, vec![2.0])
            .deadline_job(4.0, 5.0, vec![2.0])
            .build()
            .unwrap();
        let alpha = 2.0;
        let e = yds_energy(&inst, alpha);
        // Critical interval [4,5]: g = 2, energy 4. Remaining job: 2
        // volume over collapsed window length 9: g = 2/9, energy
        // (2/9)²·9 = 4/9.
        assert!((e - (4.0 + 4.0 / 9.0)).abs() < 1e-9, "e = {e}");
    }

    #[test]
    fn yds_is_below_any_feasible_energy() {
        // Compare against the AVR-style schedule (each job at its own
        // density, energies superadditive): YDS must not exceed it.
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 3.0, vec![2.0])
            .deadline_job(1.0, 4.0, vec![2.0])
            .deadline_job(2.0, 6.0, vec![1.0])
            .build()
            .unwrap();
        let alpha = 3.0;
        // AVR profile energy (feasible schedule).
        let mut prof = osr_core::energymin::SpeedProfile::new();
        for j in inst.jobs() {
            let d = j.deadline.unwrap();
            prof.add(j.release, d, j.sizes[0] / (d - j.release));
        }
        let avr = prof.energy(alpha);
        let yds = yds_energy(&inst, alpha);
        assert!(yds <= avr + 1e-9, "yds {yds} must lower-bound avr {avr}");
        assert!(yds > 0.0);
    }

    #[test]
    fn pooled_yds_matches_yds_on_single_machine() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 3.0, vec![2.0])
            .deadline_job(1.0, 4.0, vec![2.0])
            .build()
            .unwrap();
        let a = yds_energy(&inst, 2.5);
        let b = pooled_yds_lower_bound(&inst, 2.5);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn pooled_yds_divides_by_power_mean_factor() {
        // Same jobs on 2 identical machines: pooled bound = YDS/2^{α−1}.
        let single = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 2.0, vec![4.0])
            .build()
            .unwrap();
        let double = InstanceBuilder::new(2, InstanceKind::Energy)
            .deadline_job(0.0, 2.0, vec![4.0, 4.0])
            .build()
            .unwrap();
        let alpha = 3.0;
        let a = yds_energy(&single, alpha);
        let b = pooled_yds_lower_bound(&double, alpha);
        assert!((b - a / 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_lower_bound_takes_the_max_and_is_valid() {
        use osr_core::energymin::{EnergyMinParams, EnergyMinScheduler};
        let inst = InstanceBuilder::new(2, InstanceKind::Energy)
            .deadline_job(0.0, 2.0, vec![1.0, 1.0])
            .deadline_job(0.0, 2.0, vec![1.0, 1.0])
            .deadline_job(0.5, 2.5, vec![1.0, 1.0])
            .build()
            .unwrap();
        let alpha = 2.0;
        let lb = energy_lower_bound(&inst, alpha);
        let out = EnergyMinScheduler::new(EnergyMinParams::new(alpha))
            .unwrap()
            .run(&inst);
        assert!(
            lb <= out.total_energy + 1e-9,
            "LB {lb} above a feasible schedule"
        );
        assert!(lb > 0.0);
    }

    #[test]
    fn yds_disjoint_jobs_sum() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 1.0, vec![1.0])
            .deadline_job(5.0, 6.0, vec![1.0])
            .build()
            .unwrap();
        // Two unit-intensity intervals: energy 1 + 1 (α = 2).
        assert!((yds_energy(&inst, 2.0) - 2.0).abs() < 1e-9);
    }
}
