//! Preemptive SRPT on a single machine.
//!
//! Shortest-Remaining-Processing-Time is *optimal* for preemptive total
//! flow-time on one machine, and preemptive OPT lower-bounds
//! non-preemptive OPT. For `m = 1` instances this gives the tightest
//! certified denominator available to the ratio experiments.

use osr_model::Instance;

/// Total flow-time of the preemptive SRPT schedule on a single-machine
/// instance (uses `sizes[0]`). Panics if the instance has more than one
/// machine — the optimality argument is single-machine only.
pub fn srpt_flow(instance: &Instance) -> f64 {
    assert_eq!(
        instance.machines(),
        1,
        "SRPT lower bound is single-machine only"
    );
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Heap of (remaining, id) — min by remaining.
    let mut heap: BinaryHeap<Reverse<(osr_dstruct::TotalF64, u32)>> = BinaryHeap::new();
    let jobs = instance.jobs();
    let mut flow = 0.0f64;
    let mut t = 0.0f64;
    let mut next = 0usize;

    loop {
        if heap.is_empty() {
            if next >= jobs.len() {
                break;
            }
            t = t.max(jobs[next].release);
        }
        // Admit all arrivals at or before t. Jobs the machine cannot
        // process (infinite size) are served by no schedule — skip them
        // rather than poisoning the flow sum with ∞.
        while next < jobs.len() && jobs[next].release <= t {
            if jobs[next].sizes[0].is_finite() {
                heap.push(Reverse((
                    osr_dstruct::TotalF64(jobs[next].sizes[0]),
                    jobs[next].id.0,
                )));
            }
            next += 1;
        }
        let Some(Reverse((rem, id))) = heap.pop() else {
            continue;
        };
        let rem = rem.get();
        let horizon = if next < jobs.len() {
            jobs[next].release
        } else {
            f64::INFINITY
        };
        if t + rem <= horizon {
            // Runs to completion before the next arrival.
            t += rem;
            flow += t - jobs[id as usize].release;
        } else {
            // Preempted at the next arrival.
            let ran = horizon - t;
            heap.push(Reverse((osr_dstruct::TotalF64(rem - ran), id)));
            t = horizon;
        }
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::{InstanceBuilder, InstanceKind};

    fn inst(jobs: &[(f64, f64)]) -> Instance {
        let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
        for &(r, p) in jobs {
            b = b.job(r, vec![p]);
        }
        b.build().unwrap()
    }

    #[test]
    fn sequential_jobs_add_their_sizes() {
        // No overlap: flow = Σ p.
        let i = inst(&[(0.0, 2.0), (10.0, 3.0)]);
        assert_eq!(srpt_flow(&i), 5.0);
    }

    #[test]
    fn preemption_prioritizes_short_job() {
        // Long job at 0 (p=10); short (p=1) at t=1. SRPT preempts:
        // short completes at 2 (flow 1), long at 11 (flow 11) → 12.
        let i = inst(&[(0.0, 10.0), (1.0, 1.0)]);
        assert_eq!(srpt_flow(&i), 12.0);
    }

    #[test]
    fn srpt_is_below_any_nonpreemptive_order() {
        // Non-preemptive best for the same instance: run short first
        // only if we idle (flow 1 + 12 = 13) or long first (11 + 10 =
        // 21); SRPT's 12 beats both.
        let i = inst(&[(0.0, 10.0), (1.0, 1.0)]);
        assert!(srpt_flow(&i) <= 13.0);
    }

    #[test]
    fn batch_of_equal_jobs() {
        // k equal jobs at 0, size 1: flows 1..k → k(k+1)/2.
        let i = inst(&[(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]);
        assert_eq!(srpt_flow(&i), 10.0);
    }

    #[test]
    fn idle_gaps_handled() {
        let i = inst(&[(0.0, 1.0), (100.0, 1.0)]);
        assert_eq!(srpt_flow(&i), 2.0);
    }

    #[test]
    #[should_panic(expected = "single-machine")]
    fn multi_machine_panics() {
        let i = InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![1.0, 1.0])
            .build()
            .unwrap();
        srpt_flow(&i);
    }
}
