//! Adversarial constructions from the paper's lower-bound proofs.

use osr_model::{Instance, InstanceBuilder, InstanceKind, Job};

/// The Lemma 1 construction against **immediate-rejection** policies.
///
/// Phase 1 releases `⌈1/ε⌉` jobs of length `L` at time 0. The policy
/// may reject at most one of them; let `t` be when it *starts* the
/// first surviving big job.
///
/// * If `t > L²` the policy waited too long — its flow is `Θ(L²)`
///   against OPT's `Θ(L)`.
/// * Otherwise ([`lemma1_full_instance`]) the adversary releases
///   `Θ(L²)` jobs of size `1/L`, one every `1/L`, during
///   `[t, t + L]` — they all sit behind the committed big job and the
///   policy (which cannot revoke its start) pays `Ω(L³)` against OPT's
///   `Θ(L²)`.
///
/// Either way the ratio is `Ω(L) = Ω(√Δ)` with `Δ = L²`.
///
/// Returns the phase-1 instance; the caller runs the policy on it and
/// feeds the observed first big-job start time into
/// [`lemma1_full_instance`]. This two-phase protocol is sound for any
/// policy that cannot see the future: its phase-1 decisions are
/// unchanged by jobs released later.
pub fn lemma1_big_jobs(eps: f64, big_len: f64) -> Instance {
    assert!(eps > 0.0 && eps <= 1.0);
    assert!(big_len > 1.0);
    let count = (1.0 / eps).ceil() as usize;
    let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
    for _ in 0..count {
        b = b.job(0.0, vec![big_len]);
    }
    b.build().expect("valid construction")
}

/// Phase 2 of the Lemma 1 construction: big jobs plus the small-job
/// flood starting at `first_start` (the observed start of the first
/// big job in phase 1).
pub fn lemma1_full_instance(eps: f64, big_len: f64, first_start: f64) -> Instance {
    assert!(eps > 0.0 && eps <= 1.0);
    assert!(big_len > 1.0);
    let count = (1.0 / eps).ceil() as usize;
    let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
    for _ in 0..count {
        b = b.job(0.0, vec![big_len]);
    }
    let small = 1.0 / big_len;
    // Θ(L²) small jobs, one every 1/L over [first_start, first_start+L].
    let n_small = (big_len * big_len).ceil() as usize;
    for k in 0..n_small {
        // Strictly after the big job's start so the commitment stands.
        let r = first_start + (k + 1) as f64 * small;
        b = b.job(r, vec![small]);
    }
    b.build().expect("valid construction")
}

/// Flow-time of the offline strategy from the Lemma 1 proof on the
/// full instance: serve the small jobs as they arrive (the machine is
/// kept free for them), then the big jobs sequentially. An upper bound
/// on OPT's total flow-time.
pub fn lemma1_adversary_flow(eps: f64, big_len: f64, first_start: f64) -> f64 {
    let count = (1.0 / eps).ceil();
    let n_small = (big_len * big_len).ceil();
    // Small jobs: each has flow 1/L (served immediately — they arrive
    // 1/L apart and take 1/L each).
    let small_flow = n_small * (1.0 / big_len);
    // Big jobs wait until the flood ends at ≈ first_start + L + 1/L,
    // then run sequentially.
    let flood_end = first_start + big_len + 1.0 / big_len;
    let big_flow = count * flood_end + (count * (count + 1.0) / 2.0) * big_len;
    small_flow + big_flow
}

/// The long-job trap separating rejection-capable schedulers from
/// no-rejection baselines (the motivating example of §1): one job of
/// length `big_len` at time 0, then `n_small` jobs of length `small`
/// arriving every `small` time units starting just after the long job
/// would begin.
pub fn long_job_trap(big_len: f64, n_small: usize, small: f64) -> Instance {
    assert!(big_len > 0.0 && small > 0.0);
    let mut b = InstanceBuilder::new(1, InstanceKind::FlowTime);
    b = b.job(0.0, vec![big_len]);
    for k in 0..n_small {
        b = b.job(0.5 * small + k as f64 * small, vec![small]);
    }
    b.build().expect("valid construction")
}

/// Result of driving a policy through the Lemma 2 adaptive adversary.
#[derive(Debug, Clone)]
pub struct Lemma2Run {
    /// The jobs that were released, in order (ids dense).
    pub jobs: Vec<Job>,
    /// Upper bound on the adversary's (OPT's) energy: it runs every job
    /// at speed 1 with no overlap, so energy ≤ Σ_j p_j.
    pub adversary_energy: f64,
    /// Number of jobs released.
    pub rounds: usize,
}

impl Lemma2Run {
    /// The jobs as a §4 instance (useful for replays and validation).
    pub fn instance(&self) -> Instance {
        let mut b = InstanceBuilder::new(1, InstanceKind::Energy);
        for j in &self.jobs {
            b = b.deadline_job(j.release, j.deadline.unwrap(), j.sizes.clone());
        }
        b.build().expect("adversary produces valid jobs")
    }
}

/// Runs the Lemma 2 adaptive adversary against an online policy.
///
/// The policy is a callback: given the next job, it commits to a
/// `(start, completion)` execution window (single machine). Following
/// the proof: job 1 has span `[0, 3^{α+1}]` and volume `span/3`; after
/// observing `(S_j, C_j)` the adversary releases job `j+1` with
/// `r = S_j + 1`, `d = C_j`, `p = (d − r)/3`. The instance ends when
/// `α` (rounded up) jobs are out or a span drops to ≤ 1.
///
/// The proof shows OPT pays ≤ `3^{α+1}` while any algorithm pays
/// `≥ (α/3)^α` during the last span — a `(α/9)^α` ratio.
pub fn lemma2_run<F>(alpha: f64, mut policy: F) -> Lemma2Run
where
    F: FnMut(&Job) -> (f64, f64),
{
    assert!(alpha > 1.0);
    let max_jobs = alpha.ceil() as usize;
    let mut jobs: Vec<Job> = Vec::new();
    let mut r = 0.0f64;
    let mut d = 3.0f64.powf(alpha + 1.0);
    let mut adversary_energy = 0.0;

    for k in 0..max_jobs {
        let span = d - r;
        if span <= 1.0 {
            break;
        }
        let p = span / 3.0;
        let job = Job::with_deadline(k as u32, r, d, vec![p]);
        adversary_energy += p; // speed-1 execution, no overlap
        let (s, c) = policy(&job);
        jobs.push(job);
        debug_assert!(
            s >= r - 1e-9 && c <= d + 1e-9 && c > s,
            "policy returned invalid window [{s}, {c}] for span [{r}, {d}]"
        );
        // Next job nests strictly inside the observed execution.
        r = s + 1.0;
        d = c;
        if d <= r {
            break;
        }
    }

    Lemma2Run {
        rounds: jobs.len(),
        jobs,
        adversary_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_phase1_shape() {
        let inst = lemma1_big_jobs(0.25, 10.0);
        assert_eq!(inst.len(), 4);
        assert!(inst
            .jobs()
            .iter()
            .all(|j| j.release == 0.0 && j.sizes[0] == 10.0));
    }

    #[test]
    fn lemma1_full_shape_and_delta() {
        let inst = lemma1_full_instance(0.5, 10.0, 3.0);
        // 2 big + 100 small.
        assert_eq!(inst.len(), 102);
        // Δ = L² = 100: max size 10, min size 0.1.
        assert!((inst.size_ratio() - 100.0).abs() < 1e-9);
        // Small jobs arrive strictly after the first start.
        let smalls: Vec<&Job> = inst.jobs().iter().filter(|j| j.sizes[0] < 1.0).collect();
        assert!(smalls.iter().all(|j| j.release > 3.0));
        assert_eq!(smalls.len(), 100);
    }

    #[test]
    fn lemma1_adversary_flow_is_order_l_squared() {
        // For fixed eps, the adversary's flow grows like L²: dominated
        // by the big jobs waiting out the flood.
        let f10 = lemma1_adversary_flow(0.5, 10.0, 0.0);
        let f40 = lemma1_adversary_flow(0.5, 40.0, 0.0);
        // Quadrupling L should grow the cost by ≈ 4-16×, not 64×.
        assert!(f40 / f10 > 3.0 && f40 / f10 < 30.0, "growth {}", f40 / f10);
    }

    #[test]
    fn long_job_trap_shape() {
        let inst = long_job_trap(100.0, 50, 1.0);
        assert_eq!(inst.len(), 51);
        assert_eq!(inst.jobs()[0].sizes[0], 100.0);
        assert!(inst.jobs()[1].release > 0.0);
    }

    #[test]
    fn lemma2_respects_proof_parameters() {
        // Cooperative policy: run each job at minimal feasible speed
        // over its whole window.
        let run = lemma2_run(3.0, |j| (j.release, j.deadline.unwrap()));
        assert!(run.rounds >= 1 && run.rounds <= 3);
        let j0 = &run.jobs[0];
        assert_eq!(j0.release, 0.0);
        assert!((j0.deadline.unwrap() - 81.0).abs() < 1e-9); // 3^4
        assert!((j0.sizes[0] - 27.0).abs() < 1e-9);
        // Nesting: each subsequent window sits inside the previous
        // execution.
        for w in run.jobs.windows(2) {
            assert!(w[1].release > w[0].release);
            assert!(w[1].deadline.unwrap() <= w[0].deadline.unwrap() + 1e-9);
        }
        assert!(run.adversary_energy <= 81.0 + 1e-9);
        // The instance reconstruction is valid.
        assert_eq!(run.instance().len(), run.rounds);
    }

    #[test]
    fn lemma2_stops_on_small_span() {
        // A policy that always squeezes into [r, r+1.05]: spans shrink
        // fast, ending the instance early.
        let run = lemma2_run(4.0, |j| {
            let r = j.release;
            (r, (r + 1.05).min(j.deadline.unwrap()))
        });
        assert!(run.rounds < 4);
        let last = run.jobs.last().unwrap();
        assert!(last.deadline.unwrap() - last.release > 1.0);
    }

    #[test]
    fn lemma2_overlap_forced_on_algorithm() {
        // Per the proof, every released job overlaps the previous
        // execution window [S+1, C] — verify the windows nest.
        let run = lemma2_run(3.0, |j| {
            // Policy: run in the middle third at triple speed.
            let r = j.release;
            let d = j.deadline.unwrap();
            let third = (d - r) / 3.0;
            (r + third, d - third)
        });
        for w in run.jobs.windows(2) {
            let (prev_r, prev_d) = (w[0].release, w[0].deadline.unwrap());
            let (next_r, next_d) = (w[1].release, w[1].deadline.unwrap());
            assert!(
                next_r > prev_r && next_d <= prev_d + 1e-9,
                "windows must nest"
            );
        }
    }
}
