//! Seeded random workload generation.

use osr_model::{Instance, InstanceBuilder, InstanceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How release times are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Poisson process with the given rate (expected arrivals per time
    /// unit).
    Poisson {
        /// Expected arrivals per unit time.
        rate: f64,
    },
    /// Alternating bursts and silences: `burst` jobs arrive
    /// back-to-back (spacing `within`), then a gap of `gap`.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Spacing inside a burst.
        within: f64,
        /// Gap between bursts.
        gap: f64,
    },
    /// `per_batch` jobs at identical instants, batches `gap` apart.
    Batch {
        /// Jobs per batch.
        per_batch: usize,
        /// Time between batches.
        gap: f64,
    },
    /// Everything at time zero (worst-case pileup).
    AllAtOnce,
}

/// How base processing sizes are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean size.
        mean: f64,
    },
    /// Bounded Pareto on `[lo, hi]` with shape `shape` (heavy tails —
    /// the regime where Rule 1 earns its keep).
    BoundedPareto {
        /// Tail exponent (smaller = heavier).
        shape: f64,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Mixture: `short` w.p. `1−p_long`, `long` w.p. `p_long`.
    Bimodal {
        /// Short size.
        short: f64,
        /// Long size.
        long: f64,
        /// Probability of a long job.
        p_long: f64,
    },
}

/// How the unrelated-machines matrix row is derived from a base size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineModel {
    /// `p_ij = base` for all machines.
    Identical,
    /// Machine `i` has a fixed speed factor drawn once per instance
    /// from `[1, max_factor]`; `p_ij = base · factor_i`.
    RelatedSpeeds {
        /// Largest slowdown factor.
        max_factor: f64,
    },
    /// Fully unrelated: `p_ij = base · U[lo_factor, hi_factor]` iid
    /// per (job, machine).
    Unrelated {
        /// Smallest factor.
        lo_factor: f64,
        /// Largest factor.
        hi_factor: f64,
    },
    /// Restricted assignment: each job is eligible on a random subset
    /// (expected size `avg_eligible`), `p_ij = base` there, `∞`
    /// elsewhere.
    Restricted {
        /// Expected number of eligible machines (≥ 1 enforced).
        avg_eligible: f64,
    },
}

/// How job weights are drawn (§3 workloads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// All weights 1.
    Unit,
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

/// A complete flow-time / flow+energy workload description.
#[derive(Debug, Clone, Copy)]
pub struct FlowWorkload {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub machines: usize,
    /// RNG seed (same seed ⇒ identical instance).
    pub seed: u64,
    /// Arrival process.
    pub arrivals: ArrivalModel,
    /// Size distribution.
    pub sizes: SizeModel,
    /// Unrelated-machine structure.
    pub machine_model: MachineModel,
    /// Weight distribution.
    pub weights: WeightModel,
}

impl FlowWorkload {
    /// A sensible default: Poisson arrivals at 80% of aggregate service
    /// capacity, bounded-Pareto sizes, mildly unrelated machines.
    pub fn standard(n: usize, machines: usize, seed: u64) -> Self {
        // Mean bounded-Pareto(1.5, 1, 100) size ≈ 2.96; rate chosen so
        // the system is busy but stable.
        let rate = 0.8 * machines as f64 / 3.0;
        FlowWorkload {
            n,
            machines,
            seed,
            arrivals: ArrivalModel::Poisson { rate },
            sizes: SizeModel::BoundedPareto {
                shape: 1.5,
                lo: 1.0,
                hi: 100.0,
            },
            machine_model: MachineModel::Unrelated {
                lo_factor: 1.0,
                hi_factor: 4.0,
            },
            weights: WeightModel::Unit,
        }
    }

    /// Generates the instance with the given kind (flow-time or
    /// flow+energy).
    pub fn generate(&self, kind: InstanceKind) -> Instance {
        assert_ne!(
            kind,
            InstanceKind::Energy,
            "use EnergyWorkload for deadlines"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let factors = machine_factors(&mut rng, self.machines, self.machine_model);
        let mut b = InstanceBuilder::new(self.machines, kind);
        let mut t = 0.0;
        for k in 0..self.n {
            t = next_arrival(&mut rng, t, k, self.arrivals);
            let base = draw_size(&mut rng, self.sizes);
            let sizes = draw_row(&mut rng, base, &factors, self.machine_model);
            let w = draw_weight(&mut rng, self.weights);
            b = b.full_job(t, w, None, sizes);
        }
        b.build().expect("generated workload is structurally valid")
    }
}

/// A deadline workload for §4: sizes/machines as in [`FlowWorkload`],
/// deadlines at `r + slack·p_min` with `slack ~ U[min_slack, max_slack]`.
#[derive(Debug, Clone, Copy)]
pub struct EnergyWorkload {
    /// Base structure (weights ignored).
    pub base: FlowWorkload,
    /// Minimum slack factor (must exceed 1 for feasibility headroom).
    pub min_slack: f64,
    /// Maximum slack factor.
    pub max_slack: f64,
}

impl EnergyWorkload {
    /// Default deadline workload with slack in `[1.2, 3]`.
    pub fn standard(n: usize, machines: usize, seed: u64) -> Self {
        EnergyWorkload {
            base: FlowWorkload {
                sizes: SizeModel::Uniform { lo: 1.0, hi: 8.0 },
                ..FlowWorkload::standard(n, machines, seed)
            },
            min_slack: 1.2,
            max_slack: 3.0,
        }
    }

    /// Generates the §4 instance.
    pub fn generate(&self) -> Instance {
        assert!(self.min_slack > 1.0 && self.max_slack >= self.min_slack);
        let mut rng = StdRng::seed_from_u64(self.base.seed);
        let factors = machine_factors(&mut rng, self.base.machines, self.base.machine_model);
        let mut b = InstanceBuilder::new(self.base.machines, InstanceKind::Energy);
        let mut t = 0.0;
        for k in 0..self.base.n {
            t = next_arrival(&mut rng, t, k, self.base.arrivals);
            let base = draw_size(&mut rng, self.base.sizes);
            let sizes = draw_row(&mut rng, base, &factors, self.base.machine_model);
            let p_min = sizes
                .iter()
                .copied()
                .filter(|p| p.is_finite())
                .fold(f64::INFINITY, f64::min);
            let slack = rng.gen_range(self.min_slack..=self.max_slack);
            b = b.deadline_job(t, t + slack * p_min, sizes);
        }
        b.build().expect("generated workload is structurally valid")
    }
}

fn next_arrival(rng: &mut StdRng, prev: f64, k: usize, model: ArrivalModel) -> f64 {
    match model {
        ArrivalModel::Poisson { rate } => {
            assert!(rate > 0.0);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            prev - u.ln() / rate
        }
        ArrivalModel::Bursty { burst, within, gap } => {
            assert!(burst > 0);
            if k == 0 {
                0.0
            } else if k.is_multiple_of(burst) {
                prev + gap
            } else {
                prev + within
            }
        }
        ArrivalModel::Batch { per_batch, gap } => {
            assert!(per_batch > 0);
            (k / per_batch) as f64 * gap
        }
        ArrivalModel::AllAtOnce => 0.0,
    }
}

fn draw_size(rng: &mut StdRng, model: SizeModel) -> f64 {
    match model {
        SizeModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        SizeModel::Exponential { mean } => {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -mean * u.ln()
        }
        SizeModel::BoundedPareto { shape, lo, hi } => {
            // Inverse CDF of the bounded Pareto.
            let u: f64 = rng.gen_range(0.0..1.0);
            let la = lo.powf(shape);
            let ha = hi.powf(shape);
            (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / shape)
        }
        SizeModel::Bimodal {
            short,
            long,
            p_long,
        } => {
            if rng.gen_bool(p_long.clamp(0.0, 1.0)) {
                long
            } else {
                short
            }
        }
    }
}

fn draw_weight(rng: &mut StdRng, model: WeightModel) -> f64 {
    match model {
        WeightModel::Unit => 1.0,
        WeightModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
    }
}

fn machine_factors(rng: &mut StdRng, m: usize, model: MachineModel) -> Vec<f64> {
    match model {
        MachineModel::RelatedSpeeds { max_factor } => {
            (0..m).map(|_| rng.gen_range(1.0..=max_factor)).collect()
        }
        _ => vec![1.0; m],
    }
}

fn draw_row(rng: &mut StdRng, base: f64, factors: &[f64], model: MachineModel) -> Vec<f64> {
    match model {
        MachineModel::Identical => vec![base; factors.len()],
        MachineModel::RelatedSpeeds { .. } => factors.iter().map(|f| base * f).collect(),
        MachineModel::Unrelated {
            lo_factor,
            hi_factor,
        } => factors
            .iter()
            .map(|_| base * rng.gen_range(lo_factor..=hi_factor))
            .collect(),
        MachineModel::Restricted { avg_eligible } => {
            let m = factors.len();
            let p = (avg_eligible / m as f64).clamp(0.0, 1.0);
            let mut row: Vec<f64> = (0..m)
                .map(|_| if rng.gen_bool(p) { base } else { f64::INFINITY })
                .collect();
            if row.iter().all(|x| !x.is_finite()) {
                let lucky = rng.gen_range(0..m);
                row[lucky] = base;
            }
            row
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_instance() {
        let w = FlowWorkload::standard(100, 3, 42);
        let a = w.generate(InstanceKind::FlowTime);
        let b = w.generate(InstanceKind::FlowTime);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FlowWorkload::standard(100, 3, 1).generate(InstanceKind::FlowTime);
        let b = FlowWorkload::standard(100, 3, 2).generate(InstanceKind::FlowTime);
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_rate_controls_density() {
        let mut fast = FlowWorkload::standard(500, 1, 7);
        fast.arrivals = ArrivalModel::Poisson { rate: 10.0 };
        let mut slow = FlowWorkload::standard(500, 1, 7);
        slow.arrivals = ArrivalModel::Poisson { rate: 0.1 };
        let tf = fast
            .generate(InstanceKind::FlowTime)
            .jobs()
            .last()
            .unwrap()
            .release;
        let ts = slow
            .generate(InstanceKind::FlowTime)
            .jobs()
            .last()
            .unwrap()
            .release;
        assert!(ts > tf * 10.0, "slow horizon {ts} vs fast {tf}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut w = FlowWorkload::standard(2000, 1, 3);
        w.sizes = SizeModel::BoundedPareto {
            shape: 1.1,
            lo: 2.0,
            hi: 50.0,
        };
        w.machine_model = MachineModel::Identical;
        let inst = w.generate(InstanceKind::FlowTime);
        let mut seen_small = false;
        let mut seen_large = false;
        for j in inst.jobs() {
            let p = j.sizes[0];
            assert!((2.0..=50.0 + 1e-9).contains(&p), "size {p} out of bounds");
            if p < 5.0 {
                seen_small = true;
            }
            if p > 20.0 {
                seen_large = true;
            }
        }
        assert!(seen_small && seen_large, "heavy tail should span the range");
    }

    #[test]
    fn bimodal_produces_both_modes() {
        let mut w = FlowWorkload::standard(500, 1, 9);
        w.sizes = SizeModel::Bimodal {
            short: 1.0,
            long: 64.0,
            p_long: 0.2,
        };
        w.machine_model = MachineModel::Identical;
        let inst = w.generate(InstanceKind::FlowTime);
        let longs = inst.jobs().iter().filter(|j| j.sizes[0] == 64.0).count();
        assert!(longs > 40 && longs < 200, "long count {longs}");
    }

    #[test]
    fn restricted_rows_have_an_eligible_machine() {
        let mut w = FlowWorkload::standard(300, 8, 11);
        w.machine_model = MachineModel::Restricted { avg_eligible: 2.0 };
        let inst = w.generate(InstanceKind::FlowTime);
        for j in inst.jobs() {
            assert!(
                j.sizes.iter().any(|p| p.is_finite()),
                "{} has no machine",
                j.id
            );
        }
        // Restriction should actually bite on most jobs.
        let restricted = inst
            .jobs()
            .iter()
            .filter(|j| j.sizes.iter().any(|p| !p.is_finite()))
            .count();
        assert!(restricted > 200);
    }

    #[test]
    fn related_speeds_consistent_within_instance() {
        let mut w = FlowWorkload::standard(50, 4, 13);
        w.machine_model = MachineModel::RelatedSpeeds { max_factor: 5.0 };
        w.sizes = SizeModel::Uniform { lo: 2.0, hi: 2.0 };
        let inst = w.generate(InstanceKind::FlowTime);
        // Equal base sizes ⇒ each machine column is constant.
        let first = inst.jobs()[0].sizes.clone();
        for j in inst.jobs() {
            for (a, b) in j.sizes.iter().zip(&first) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn batch_arrivals_collide() {
        let mut w = FlowWorkload::standard(40, 1, 5);
        w.arrivals = ArrivalModel::Batch {
            per_batch: 10,
            gap: 7.0,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        let r: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        assert_eq!(r[0], 0.0);
        assert_eq!(r[9], 0.0);
        assert_eq!(r[10], 7.0);
        assert_eq!(r[39], 21.0);
    }

    #[test]
    fn weighted_workload_draws_weights() {
        let mut w = FlowWorkload::standard(200, 2, 3);
        w.weights = WeightModel::Uniform { lo: 1.0, hi: 9.0 };
        let inst = w.generate(InstanceKind::FlowEnergy);
        assert!(inst.jobs().iter().any(|j| j.weight > 5.0));
        assert!(inst.jobs().iter().all(|j| (1.0..=9.0).contains(&j.weight)));
    }

    #[test]
    fn energy_workload_has_feasible_deadlines() {
        let w = EnergyWorkload::standard(150, 3, 21);
        let inst = w.generate();
        for j in inst.jobs() {
            let d = j.deadline.unwrap();
            assert!(d > j.release + j.min_size(), "{} window too tight", j.id);
        }
    }

    #[test]
    fn bursty_arrivals_alternate() {
        let mut w = FlowWorkload::standard(20, 1, 5);
        w.arrivals = ArrivalModel::Bursty {
            burst: 5,
            within: 0.1,
            gap: 10.0,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        let r: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        assert!(r[4] - r[0] < 1.0);
        assert!(r[5] - r[4] >= 10.0 - 1e-9);
    }
}
