//! Seeded random workload generation — the legacy-shaped wrappers over
//! the [`crate::scenario`] framework.
//!
//! [`FlowWorkload`] is an alias of [`Scenario`] (the type it grew
//! into); [`EnergyWorkload`] adds §4 deadline slack on top. Both
//! delegate to the trait-based pipeline
//! ([`crate::scenario::generate_with`] /
//! [`crate::scenario::generate_energy_with`]) with the **same RNG draw
//! order** the pre-framework generator used, so fixed-seed experiment
//! instances are unchanged.

use osr_model::Instance;

pub use crate::scenario::{ArrivalSpec, MachineSpec, Scenario, SizeSpec, WeightSpec};

/// Back-compat name for [`Scenario`] — the struct experiments configure
/// field by field (`w.arrivals = …`) and then `generate`.
pub type FlowWorkload = Scenario;

/// A deadline workload for §4: sizes/machines as in [`FlowWorkload`],
/// deadlines at `r + slack·p̂` with `slack ~ U[min_slack, max_slack]`.
#[derive(Debug, Clone, Copy)]
pub struct EnergyWorkload {
    /// Base structure (weights ignored).
    pub base: FlowWorkload,
    /// Minimum slack factor (must exceed 1 for feasibility headroom).
    pub min_slack: f64,
    /// Maximum slack factor.
    pub max_slack: f64,
}

impl EnergyWorkload {
    /// Default deadline workload with slack in `[1.2, 3]`.
    pub fn standard(n: usize, machines: usize, seed: u64) -> Self {
        EnergyWorkload {
            base: FlowWorkload {
                sizes: SizeSpec::Uniform { lo: 1.0, hi: 8.0 },
                ..FlowWorkload::standard(n, machines, seed)
            },
            min_slack: 1.2,
            max_slack: 3.0,
        }
    }

    /// Generates the §4 instance.
    pub fn generate(&self) -> Instance {
        crate::scenario::generate_energy_with(
            self.base.n,
            self.base.machines,
            self.base.seed,
            &mut *self.base.arrivals.process(),
            &mut *self.base.sizes.model(),
            &mut *self.base.machine_model.model(),
            self.min_slack,
            self.max_slack,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_model::InstanceKind;

    #[test]
    fn same_seed_same_instance() {
        let w = FlowWorkload::standard(100, 3, 42);
        let a = w.generate(InstanceKind::FlowTime);
        let b = w.generate(InstanceKind::FlowTime);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FlowWorkload::standard(100, 3, 1).generate(InstanceKind::FlowTime);
        let b = FlowWorkload::standard(100, 3, 2).generate(InstanceKind::FlowTime);
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_rate_controls_density() {
        let mut fast = FlowWorkload::standard(500, 1, 7);
        fast.arrivals = ArrivalSpec::Poisson { rate: 10.0 };
        let mut slow = FlowWorkload::standard(500, 1, 7);
        slow.arrivals = ArrivalSpec::Poisson { rate: 0.1 };
        let tf = fast
            .generate(InstanceKind::FlowTime)
            .jobs()
            .last()
            .unwrap()
            .release;
        let ts = slow
            .generate(InstanceKind::FlowTime)
            .jobs()
            .last()
            .unwrap()
            .release;
        assert!(ts > tf * 10.0, "slow horizon {ts} vs fast {tf}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut w = FlowWorkload::standard(2000, 1, 3);
        w.sizes = SizeSpec::BoundedPareto {
            shape: 1.1,
            lo: 2.0,
            hi: 50.0,
        };
        w.machine_model = MachineSpec::Identical;
        let inst = w.generate(InstanceKind::FlowTime);
        let mut seen_small = false;
        let mut seen_large = false;
        for j in inst.jobs() {
            let p = j.sizes[0];
            assert!((2.0..=50.0 + 1e-9).contains(&p), "size {p} out of bounds");
            if p < 5.0 {
                seen_small = true;
            }
            if p > 20.0 {
                seen_large = true;
            }
        }
        assert!(seen_small && seen_large, "heavy tail should span the range");
    }

    #[test]
    fn bimodal_produces_both_modes() {
        let mut w = FlowWorkload::standard(500, 1, 9);
        w.sizes = SizeSpec::Bimodal {
            short: 1.0,
            long: 64.0,
            p_long: 0.2,
        };
        w.machine_model = MachineSpec::Identical;
        let inst = w.generate(InstanceKind::FlowTime);
        let longs = inst.jobs().iter().filter(|j| j.sizes[0] == 64.0).count();
        assert!(longs > 40 && longs < 200, "long count {longs}");
    }

    #[test]
    fn restricted_rows_have_an_eligible_machine() {
        let mut w = FlowWorkload::standard(300, 8, 11);
        w.machine_model = MachineSpec::Restricted { avg_eligible: 2.0 };
        let inst = w.generate(InstanceKind::FlowTime);
        for j in inst.jobs() {
            assert!(
                j.sizes.iter().any(|p| p.is_finite()),
                "{} has no machine",
                j.id
            );
        }
        // Restriction should actually bite on most jobs.
        let restricted = inst
            .jobs()
            .iter()
            .filter(|j| j.sizes.iter().any(|p| !p.is_finite()))
            .count();
        assert!(restricted > 200);
    }

    #[test]
    fn related_speeds_consistent_within_instance() {
        let mut w = FlowWorkload::standard(50, 4, 13);
        w.machine_model = MachineSpec::RelatedSpeeds { max_factor: 5.0 };
        w.sizes = SizeSpec::Uniform { lo: 2.0, hi: 2.0 };
        let inst = w.generate(InstanceKind::FlowTime);
        // Equal base sizes ⇒ each machine column is constant.
        let first = inst.jobs()[0].sizes.clone();
        for j in inst.jobs() {
            for (a, b) in j.sizes.iter().zip(&first) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn batch_arrivals_collide() {
        let mut w = FlowWorkload::standard(40, 1, 5);
        w.arrivals = ArrivalSpec::Batch {
            per_batch: 10,
            gap: 7.0,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        let r: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        assert_eq!(r[0], 0.0);
        assert_eq!(r[9], 0.0);
        assert_eq!(r[10], 7.0);
        assert_eq!(r[39], 21.0);
    }

    #[test]
    fn weighted_workload_draws_weights() {
        let mut w = FlowWorkload::standard(200, 2, 3);
        w.weights = WeightSpec::Uniform { lo: 1.0, hi: 9.0 };
        let inst = w.generate(InstanceKind::FlowEnergy);
        assert!(inst.jobs().iter().any(|j| j.weight > 5.0));
        assert!(inst.jobs().iter().all(|j| (1.0..=9.0).contains(&j.weight)));
    }

    #[test]
    fn energy_workload_has_feasible_deadlines() {
        let w = EnergyWorkload::standard(150, 3, 21);
        let inst = w.generate();
        for j in inst.jobs() {
            let d = j.deadline.unwrap();
            assert!(d > j.release + j.min_size(), "{} window too tight", j.id);
        }
    }

    #[test]
    fn energy_workload_guards_ineligible_rows() {
        // Affinity with a drop probability would produce ∞ deadlines;
        // the energy pipeline forces machine 0 eligible instead.
        let mut w = EnergyWorkload::standard(200, 4, 77);
        w.base.machine_model = MachineSpec::Affinity {
            groups: 2,
            drop_prob: 0.2,
        };
        let inst = w.generate();
        for j in inst.jobs() {
            assert!(j.has_eligible(), "{}", j.id);
            assert!(j.deadline.unwrap().is_finite());
        }
    }

    #[test]
    fn bursty_arrivals_alternate() {
        let mut w = FlowWorkload::standard(20, 1, 5);
        w.arrivals = ArrivalSpec::Bursty {
            burst: 5,
            within: 0.1,
            gap: 10.0,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        let r: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        assert!(r[4] - r[0] < 1.0);
        assert!(r[5] - r[4] >= 10.0 - 1e-9);
    }
}
