//! External trace import.
//!
//! Real cluster traces (Google/Alibaba-style job event tables, or any
//! CSV export) reduce, for this model, to rows of
//! `release, size [, weight [, deadline]]`. This module parses that
//! shape into an [`Instance`], with a pluggable machine model to expand
//! the scalar size into an unrelated `p_ij` row (traces almost never
//! carry per-machine times; the expansion is seeded and documented in
//! the instance, keeping runs reproducible).
//!
//! Format details:
//!
//! * whitespace- or comma-separated columns;
//! * `#`-prefixed lines and blank lines are comments;
//! * 2 columns → unweighted flow-time jobs;
//! * 3 columns → weighted jobs;
//! * 4 columns → deadline jobs (weight column still present).
//!
//! Cluster traces also carry **machine events** (add/remove/failure
//! tables). Those replay as a [`CapacityPlan`] through
//! [`parse_failure_trace`] — `time,machine,kind` rows with `kind` one
//! of `join`/`drain`/`crash` — and pair with the job trace from
//! [`TraceImport::parse`] to rerun a recorded incident.

use osr_model::{Instance, InstanceBuilder, InstanceKind, ModelError};
use osr_sim::CapacityPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scenario::MachineSpec;

/// Options controlling how a scalar trace expands to unrelated machines.
#[derive(Debug, Clone, Copy)]
pub struct TraceImport {
    /// Number of machines to expand to.
    pub machines: usize,
    /// How the scalar size becomes a `p_ij` row.
    pub machine_model: MachineSpec,
    /// Seed for the expansion.
    pub seed: u64,
}

impl TraceImport {
    /// Identical machines (sizes used as-is).
    pub fn identical(machines: usize) -> Self {
        TraceImport {
            machines,
            machine_model: MachineSpec::Identical,
            seed: 0,
        }
    }

    /// Parses trace text into an instance. The kind is inferred from
    /// the column count (see module docs); mixed column counts are an
    /// error.
    pub fn parse(&self, text: &str) -> Result<Instance, ModelError> {
        let mut rows: Vec<(f64, f64, f64, Option<f64>)> = Vec::new();
        let mut columns: Option<usize> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line
                .split(|c: char| c == ',' || c.is_whitespace())
                .filter(|s| !s.is_empty())
                .collect();
            let lineno = lineno + 1;
            if !(2..=4).contains(&fields.len()) {
                return Err(ModelError::Parse {
                    line: lineno,
                    message: format!("expected 2–4 columns, got {}", fields.len()),
                });
            }
            match columns {
                None => columns = Some(fields.len()),
                Some(c) if c != fields.len() => {
                    return Err(ModelError::Parse {
                        line: lineno,
                        message: format!("mixed column counts ({c} then {})", fields.len()),
                    })
                }
                _ => {}
            }
            let num = |s: &str| -> Result<f64, ModelError> {
                s.parse::<f64>().map_err(|_| ModelError::Parse {
                    line: lineno,
                    message: format!("bad number `{s}`"),
                })
            };
            let release = num(fields[0])?;
            let size = num(fields[1])?;
            let weight = if fields.len() >= 3 {
                num(fields[2])?
            } else {
                1.0
            };
            let deadline = if fields.len() == 4 {
                Some(num(fields[3])?)
            } else {
                None
            };
            rows.push((release, size, weight, deadline));
        }
        let kind = match columns {
            Some(4) => InstanceKind::Energy,
            Some(3) => InstanceKind::FlowEnergy,
            _ => InstanceKind::FlowTime,
        };

        // The expansion reuses the scenario framework's MachineModel
        // trait — same implementations, same seeded draw order.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut model = self.machine_model.model();
        model.init(self.machines, &mut rng);

        let mut b = InstanceBuilder::new(self.machines, kind);
        for (release, size, weight, deadline) in rows {
            let sizes = model.row(size, &mut rng);
            b = b.full_job(release, weight, deadline, sizes);
        }
        b.build()
    }
}

/// Parses a recorded failure trace into a [`CapacityPlan`] — the
/// capacity-side twin of [`TraceImport::parse`].
///
/// Format (see [`CapacityPlan::parse`], which this delegates to): one
/// event per line, `time,machine,kind` with `kind` one of `join` /
/// `drain` / `crash`; `#` comments, blank lines, and an optional
/// header line are skipped. Machine ids must index the instance the
/// plan is replayed against (`CapacityPlan::check_machines`).
pub fn parse_failure_trace(text: &str) -> Result<CapacityPlan, String> {
    CapacityPlan::parse(text)
}

/// Renders an offline instance (plus its capacity plan) as an
/// `osr serve` input script — the replay producer of the streaming
/// ingest loop. Returns the script text and the machines that must
/// start offline (`--offline`, mirroring
/// [`CapacityPlan::initial_online`]).
///
/// One line per event, in the offline batch loop's order — capacity
/// changes precede arrivals at equal instants — so piping the script
/// into `osr serve` reproduces the offline `osr run` log **byte for
/// byte** (numbers are printed with Rust's shortest-round-trip float
/// formatting, so every timestamp, weight, and size survives the text
/// round trip exactly):
///
/// ```text
/// arrive <id> @<t> w=<w> <size>...   # size `inf` = ineligible
/// join|drain|crash <machine> @<t>
/// shutdown
/// ```
///
/// Deadline instances (§4) have no serve mode; they are rejected here.
pub fn serve_script(inst: &Instance, plan: &CapacityPlan) -> Result<(String, Vec<usize>), String> {
    let m = inst.machines();
    plan.check_machines(m)?;
    let online = plan.initial_online(m);
    let offline: Vec<usize> = (0..m).filter(|&i| !online.is_online(i)).collect();

    fn event_line(e: &osr_sim::CapacityEvent) -> String {
        format!("{} {} @{}\n", e.change, e.machine.idx(), e.time)
    }

    let mut out = String::new();
    let mut evs = plan.events().iter().peekable();
    for job in inst.jobs() {
        if job.deadline.is_some() {
            return Err(format!(
                "{}: deadline jobs cannot be served (no §4 serve mode)",
                job.id
            ));
        }
        while let Some(e) = evs.peek() {
            if e.time <= job.release {
                out.push_str(&event_line(e));
                evs.next();
            } else {
                break;
            }
        }
        out.push_str(&format!(
            "arrive {} @{} w={}",
            job.id.idx(),
            job.release,
            job.weight
        ));
        for &p in &job.sizes {
            out.push(' ');
            if p.is_finite() {
                out.push_str(&format!("{p}"));
            } else {
                out.push_str("inf");
            }
        }
        out.push('\n');
    }
    for e in evs {
        out.push_str(&event_line(e));
    }
    out.push_str("shutdown\n");
    Ok((out, offline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_column_trace_is_flowtime() {
        let text = "# release size\n0 2.5\n1.5 3\n";
        let inst = TraceImport::identical(2).parse(text).unwrap();
        assert_eq!(inst.kind(), InstanceKind::FlowTime);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.jobs()[0].sizes, vec![2.5, 2.5]);
    }

    #[test]
    fn three_column_trace_is_weighted() {
        let text = "0,2,5\n1,3,1\n";
        let inst = TraceImport::identical(1).parse(text).unwrap();
        assert_eq!(inst.kind(), InstanceKind::FlowEnergy);
        assert_eq!(inst.jobs()[0].weight, 5.0);
    }

    #[test]
    fn four_column_trace_is_energy() {
        let text = "0 2 1 10\n";
        let inst = TraceImport::identical(1).parse(text).unwrap();
        assert_eq!(inst.kind(), InstanceKind::Energy);
        assert_eq!(inst.jobs()[0].deadline, Some(10.0));
    }

    #[test]
    fn unsorted_releases_are_sorted_by_builder() {
        let text = "5 1\n0 1\n";
        let inst = TraceImport::identical(1).parse(text).unwrap();
        assert_eq!(inst.jobs()[0].release, 0.0);
    }

    #[test]
    fn mixed_columns_rejected() {
        let text = "0 1\n0 1 2\n";
        assert!(TraceImport::identical(1).parse(text).is_err());
    }

    #[test]
    fn bad_numbers_located() {
        let text = "0 1\n0 abc\n";
        match TraceImport::identical(1).parse(text).unwrap_err() {
            ModelError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unrelated_expansion_is_seeded() {
        let imp = TraceImport {
            machines: 3,
            machine_model: MachineSpec::Unrelated {
                lo_factor: 1.0,
                hi_factor: 4.0,
            },
            seed: 9,
        };
        let a = imp.parse("0 2\n1 3\n").unwrap();
        let b = imp.parse("0 2\n1 3\n").unwrap();
        assert_eq!(a, b, "same seed must give the same expansion");
        // Row entries scale the base size within the factor range.
        for j in a.jobs() {
            let base = j.sizes.iter().copied().fold(f64::INFINITY, f64::min);
            for &p in &j.sizes {
                assert!(p >= base && p <= base * 4.0 + 1e-9);
            }
        }
    }

    #[test]
    fn failure_trace_replays_beside_the_job_trace() {
        let jobs = TraceImport::identical(2).parse("0 4\n0.5 4\n").unwrap();
        let plan = parse_failure_trace("time,machine,kind\n# incident\n1.0,1,crash\n3.0,1,join\n")
            .unwrap();
        assert!(plan.check_machines(jobs.machines()).is_ok());
        assert_eq!(plan.len(), 2);
        let w = plan.online_windows(1);
        assert_eq!((w[0].from, w[0].to, w[0].crash), (0.0, 1.0, true));
        assert_eq!(w[1].from, 3.0);
        assert!(parse_failure_trace("1.0,1,explode").is_err());
    }

    #[test]
    fn serve_script_orders_capacity_before_equal_time_arrivals() {
        let inst = TraceImport::identical(2)
            .parse("0 4\n1.0 4\n2.5 4\n")
            .unwrap();
        let plan = parse_failure_trace("1.0,1,crash\n3.0,1,join\n").unwrap();
        let (script, offline) = serve_script(&inst, &plan).unwrap();
        assert!(offline.is_empty());
        assert_eq!(
            script,
            "arrive 0 @0 w=1 4 4\n\
             crash 1 @1\n\
             arrive 1 @1 w=1 4 4\n\
             arrive 2 @2.5 w=1 4 4\n\
             join 1 @3\n\
             shutdown\n"
        );
    }

    #[test]
    fn serve_script_reports_offline_starts_and_rejects_deadlines() {
        let inst = TraceImport::identical(2).parse("0.5 4\n").unwrap();
        // m1's first event is a join → it starts offline.
        let plan = parse_failure_trace("2.0,1,join\n").unwrap();
        let (script, offline) = serve_script(&inst, &plan).unwrap();
        assert_eq!(offline, vec![1]);
        assert!(script.ends_with("join 1 @2\nshutdown\n"));

        let energy = TraceImport::identical(1).parse("0 2 1 10\n").unwrap();
        assert!(serve_script(&energy, &CapacityPlan::empty()).is_err());
    }

    #[test]
    fn restricted_expansion_keeps_eligibility() {
        let imp = TraceImport {
            machines: 4,
            machine_model: MachineSpec::Restricted { avg_eligible: 1.5 },
            seed: 3,
        };
        let inst = imp.parse("0 2\n0 2\n0 2\n0 2\n0 2\n").unwrap();
        for j in inst.jobs() {
            assert!(j.sizes.iter().any(|p| p.is_finite()));
        }
    }
}
