//! # osr-workload — workload generators and adaptive adversaries
//!
//! Everything the experiment harness feeds to schedulers:
//!
//! * [`gen`] — parameterized random workloads: arrival processes
//!   (Poisson, bursty, batched), size distributions (uniform,
//!   exponential, bounded Pareto, bimodal), unrelated-machine models
//!   (identical, related speeds, iid unrelated, restricted
//!   assignment), weight models and deadline slack — all seeded and
//!   deterministic;
//! * [`adversarial`] — the constructions behind the paper's lower
//!   bounds: the Lemma 1 burst trap for immediate-rejection policies
//!   (`Ω(√Δ)`), the Lemma 2 adaptive deadline chain for energy
//!   minimization (`(α/9)^α`), and the long-job trap that separates
//!   rejection-capable schedulers from no-rejection greedy baselines.
//!
//! All generators produce plain [`osr_model::Instance`] values; the
//! adaptive adversaries interact with a policy through narrow callback
//! interfaces so this crate depends only on `osr-model`.

#![warn(missing_docs)]

pub mod adversarial;
pub mod gen;
pub mod trace;

pub use gen::{ArrivalModel, EnergyWorkload, FlowWorkload, MachineModel, SizeModel, WeightModel};
pub use trace::TraceImport;
