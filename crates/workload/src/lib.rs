//! # osr-workload — composable workload scenarios and adversaries
//!
//! Everything the experiment harness feeds to schedulers:
//!
//! * [`scenario`] — the composable scenario framework: an
//!   [`ArrivalProcess`] trait (Poisson, MMPP-style bursty on/off,
//!   deterministic batch pileups, trace replay) crossed with a
//!   [`SizeModel`] trait (uniform, exponential, bounded-Pareto heavy
//!   tail, bimodal) and a [`MachineModel`] trait (identical, related
//!   speeds, iid unrelated, restricted assignment, rack-affinity sets
//!   with everywhere-ineligible jobs). The closed `Copy` spec subset
//!   ([`ArrivalSpec`] × [`SizeSpec`] × [`MachineSpec`]) is bundled into
//!   [`Scenario`] and addressable by name (`"mmpp-pareto-affinity"`,
//!   optionally with an elastic-pool churn segment:
//!   `"mmpp-pareto-affinity-churn:0.2"` — see [`ChurnSpec`]; grammar
//!   in `README.md`) — all seeded and deterministic, with capacity
//!   plans drawn from a separate seed stream so churn never perturbs
//!   the instance bytes;
//! * [`gen`] — the legacy-shaped wrappers ([`FlowWorkload`] — now an
//!   alias of [`Scenario`] — and [`EnergyWorkload`] for §4 deadline
//!   slack);
//! * [`adversarial`] — the constructions behind the paper's lower
//!   bounds: the Lemma 1 burst trap for immediate-rejection policies
//!   (`Ω(√Δ)`), the Lemma 2 adaptive deadline chain for energy
//!   minimization (`(α/9)^α`), and the long-job trap that separates
//!   rejection-capable schedulers from no-rejection greedy baselines.
//!
//! All generators produce plain [`osr_model::Instance`] values (which
//! precompute each job's `p̂` and eligibility mask at build time — see
//! `osr_model::Job::p_hat`); the adaptive adversaries interact with a
//! policy through narrow callback interfaces so this crate depends only
//! on `osr-model`.

#![warn(missing_docs)]

pub mod adversarial;
pub mod gen;
pub mod scenario;
pub mod trace;

pub use gen::{EnergyWorkload, FlowWorkload};
pub use scenario::{
    generate_energy_with, generate_with, AffinityMachines, AllAtOnceArrivals, ArrivalProcess,
    ArrivalSpec, BatchArrivals, BimodalSize, BoundedParetoSize, BurstyArrivals, ChurnSpec,
    ExponentialSize, IdenticalMachines, MachineModel, MachineSpec, MmppArrivals, PoissonArrivals,
    RelatedSpeedMachines, ReplayArrivals, RestrictedMachines, Scenario, SizeModel, SizeSpec,
    UniformSize, UnrelatedMachines, WeightSpec,
};
pub use trace::{parse_failure_trace, serve_script, TraceImport};
