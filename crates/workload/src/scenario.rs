//! The composable scenario framework: arrival × size × machine models.
//!
//! A workload scenario is the cross product of three orthogonal
//! choices, each behind its own trait:
//!
//! * [`ArrivalProcess`] — *when* jobs arrive: Poisson, MMPP-style
//!   bursty on/off, deterministic batch pileups, all-at-once, or a
//!   replayed trace of recorded release times;
//! * [`SizeModel`] — *how big* the base processing requirement is:
//!   uniform, exponential, bounded-Pareto heavy tail, bimodal;
//! * [`MachineModel`] — *how a base size becomes an unrelated `p_ij`
//!   row*: identical machines, machine-correlated related speeds, iid
//!   unrelated factors, restricted assignment, or rack-style affinity
//!   sets (`p_ij = ∞` outside the job's rack, with an optional fraction
//!   of jobs whose rack is empty — everywhere-ineligible jobs that
//!   exercise `RejectReason::Ineligible` at scale).
//!
//! Any trait implementation composes with any other through
//! [`generate_with`]. The closed, `Copy`, CLI-parseable subset of that
//! space is described by the spec enums ([`ArrivalSpec`], [`SizeSpec`],
//! [`MachineSpec`], [`WeightSpec`]), bundled into a [`Scenario`], and
//! addressable by name (`"mmpp-pareto-affinity"`; see
//! [`Scenario::named`] and the crate README for the grammar).
//!
//! ## Determinism
//!
//! Generation is a pure function of `(scenario, n, machines, seed)`:
//! one `StdRng` stream, drawn in a fixed order (machine-model init,
//! then per job: arrival → base size → row → weight). Identical seeds
//! give byte-identical instances — asserted by the
//! `proptest_scenarios` suite over the whole named grid. For the spec
//! combinations that predate this framework the draw order is
//! unchanged, so existing fixed-seed experiment tables are unaffected.

use osr_model::{Instance, InstanceBuilder, InstanceKind, MachineId};
use osr_sim::{CapacityChange, CapacityEvent, CapacityPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Spec enums — the closed, Copy, parseable grammar.
// ---------------------------------------------------------------------

/// How release times are produced (spec form; see [`ArrivalProcess`]
/// for the open trait). `spec.process()` instantiates the matching
/// process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson process with the given rate (expected arrivals per time
    /// unit).
    Poisson {
        /// Expected arrivals per unit time.
        rate: f64,
    },
    /// Deterministic alternating bursts and silences: `burst` jobs
    /// arrive back-to-back (spacing `within`), then a gap of `gap`.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Spacing inside a burst.
        within: f64,
        /// Gap between bursts.
        gap: f64,
    },
    /// MMPP-style on/off modulation: inside an *on* period arrivals are
    /// Poisson at `on_rate`; on-period lengths are random with mean
    /// `burst_mean` arrivals; *off* periods are exponential silences
    /// with mean `off_mean` time units.
    Mmpp {
        /// Poisson rate inside a burst.
        on_rate: f64,
        /// Mean number of arrivals per on-period (≥ 1).
        burst_mean: f64,
        /// Mean length of an off-period.
        off_mean: f64,
    },
    /// `per_batch` jobs at identical instants, batches `gap` apart.
    Batch {
        /// Jobs per batch.
        per_batch: usize,
        /// Time between batches.
        gap: f64,
    },
    /// Everything at time zero (worst-case pileup).
    AllAtOnce,
}

/// How base processing sizes are drawn (spec form; see the
/// [`SizeModel`] trait).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeSpec {
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean size.
        mean: f64,
    },
    /// Bounded Pareto on `[lo, hi]` with shape `shape` (heavy tails —
    /// the regime where Rule 1 earns its keep).
    BoundedPareto {
        /// Tail exponent (smaller = heavier).
        shape: f64,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Mixture: `short` w.p. `1−p_long`, `long` w.p. `p_long`.
    Bimodal {
        /// Short size.
        short: f64,
        /// Long size.
        long: f64,
        /// Probability of a long job.
        p_long: f64,
    },
}

/// How the unrelated-machines matrix row is derived from a base size
/// (spec form; see the [`MachineModel`] trait).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineSpec {
    /// `p_ij = base` for all machines.
    Identical,
    /// Machine `i` has a fixed speed factor drawn once per instance
    /// from `[1, max_factor]`; `p_ij = base · factor_i`.
    RelatedSpeeds {
        /// Largest slowdown factor.
        max_factor: f64,
    },
    /// Fully unrelated: `p_ij = base · U[lo_factor, hi_factor]` iid
    /// per (job, machine).
    Unrelated {
        /// Smallest factor.
        lo_factor: f64,
        /// Largest factor.
        hi_factor: f64,
    },
    /// Restricted assignment: each job is eligible on a random subset
    /// (expected size `avg_eligible`), `p_ij = base` there, `∞`
    /// elsewhere; at least one eligible machine is guaranteed.
    Restricted {
        /// Expected number of eligible machines (≥ 1 enforced).
        avg_eligible: f64,
    },
    /// Rack-style affinity sets: machines are partitioned round-robin
    /// into `groups` racks; each job draws one rack and is eligible
    /// only there (`p_ij = ∞` outside). With probability `drop_prob`
    /// the job's rack is empty — an everywhere-ineligible job that
    /// schedulers must reject at arrival
    /// (`RejectReason::Ineligible`).
    Affinity {
        /// Number of racks (clamped to `[1, m]` at generation).
        groups: usize,
        /// Probability of an everywhere-ineligible job.
        drop_prob: f64,
    },
}

/// How job weights are drawn (§3 workloads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightSpec {
    /// All weights 1.
    Unit,
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl WeightSpec {
    /// Draws one weight.
    pub fn draw(self, rng: &mut StdRng) -> f64 {
        match self {
            WeightSpec::Unit => 1.0,
            WeightSpec::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        }
    }
}

// ---------------------------------------------------------------------
// The traits — the open composition surface.
// ---------------------------------------------------------------------

/// A stream of release times. `next` is called once per job with the
/// job index `k` and the previous release `prev` (0.0 before the first
/// job) and must return a value `≥ prev` for `k > 0` whenever the
/// process is monotone by construction; the instance builder sorts
/// regardless, so a non-monotone process is allowed but loses the
/// online-arrival interpretation of `k`.
pub trait ArrivalProcess {
    /// Release time of job `k`, given the previous release.
    fn next(&mut self, k: usize, prev: f64, rng: &mut StdRng) -> f64;
}

/// A distribution of base processing sizes (strictly positive).
pub trait SizeModel {
    /// Draws one base size.
    fn draw(&mut self, rng: &mut StdRng) -> f64;
}

/// Expands a base size into an unrelated-machines `p_ij` row.
///
/// `init` runs once per instance (before any job) so per-instance
/// state — e.g. related-speed factors — comes from the same seeded
/// stream as everything else; `row` runs once per job.
pub trait MachineModel {
    /// Per-instance setup; draws any instance-level randomness.
    fn init(&mut self, machines: usize, rng: &mut StdRng);
    /// Expands one base size into a `p_ij` row (`∞` = ineligible).
    fn row(&mut self, base: f64, rng: &mut StdRng) -> Vec<f64>;
}

// ---------------------------------------------------------------------
// Arrival processes.
// ---------------------------------------------------------------------

/// Exponential draw with the given mean (0 when `mean <= 0`).
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Poisson arrivals at a fixed rate.
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    /// Expected arrivals per unit time.
    pub rate: f64,
}

impl ArrivalProcess for PoissonArrivals {
    fn next(&mut self, _k: usize, prev: f64, rng: &mut StdRng) -> f64 {
        assert!(self.rate > 0.0);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        prev - u.ln() / self.rate
    }
}

/// Deterministic bursts: `burst` jobs spaced `within`, then `gap`.
#[derive(Debug, Clone, Copy)]
pub struct BurstyArrivals {
    /// Jobs per burst.
    pub burst: usize,
    /// Spacing inside a burst.
    pub within: f64,
    /// Gap between bursts.
    pub gap: f64,
}

impl ArrivalProcess for BurstyArrivals {
    fn next(&mut self, k: usize, prev: f64, _rng: &mut StdRng) -> f64 {
        assert!(self.burst > 0);
        if k == 0 {
            0.0
        } else if k.is_multiple_of(self.burst) {
            prev + self.gap
        } else {
            prev + self.within
        }
    }
}

/// MMPP-style on/off bursty arrivals (see [`ArrivalSpec::Mmpp`]).
///
/// State machine: at the start of each on-period the process draws the
/// period's length (`1 + Exp(burst_mean − 1)` arrivals, so the mean is
/// `burst_mean`) and the preceding off-gap (`Exp(off_mean)`, skipped
/// for the very first burst, which starts at `t = 0`); inside an
/// on-period inter-arrival gaps are `Exp(1/on_rate)`.
#[derive(Debug, Clone, Copy)]
pub struct MmppArrivals {
    /// Poisson rate inside a burst.
    pub on_rate: f64,
    /// Mean arrivals per on-period (≥ 1).
    pub burst_mean: f64,
    /// Mean off-period length.
    pub off_mean: f64,
    remaining: usize,
}

impl MmppArrivals {
    /// A fresh process (in the off state).
    pub fn new(on_rate: f64, burst_mean: f64, off_mean: f64) -> Self {
        assert!(on_rate > 0.0, "mmpp on_rate must be positive");
        assert!(burst_mean >= 1.0, "mmpp burst_mean must be >= 1");
        assert!(off_mean >= 0.0, "mmpp off_mean must be non-negative");
        MmppArrivals {
            on_rate,
            burst_mean,
            off_mean,
            remaining: 0,
        }
    }
}

impl ArrivalProcess for MmppArrivals {
    fn next(&mut self, k: usize, prev: f64, rng: &mut StdRng) -> f64 {
        if self.remaining == 0 {
            // New on-period: its length, then the off-gap before it.
            self.remaining = 1 + exp_draw(rng, self.burst_mean - 1.0).floor() as usize;
            let gap = exp_draw(rng, self.off_mean);
            self.remaining -= 1;
            return if k == 0 { 0.0 } else { prev + gap };
        }
        self.remaining -= 1;
        prev + exp_draw(rng, 1.0 / self.on_rate)
    }
}

/// `per_batch` jobs at identical instants, batches `gap` apart.
#[derive(Debug, Clone, Copy)]
pub struct BatchArrivals {
    /// Jobs per batch.
    pub per_batch: usize,
    /// Time between batches.
    pub gap: f64,
}

impl ArrivalProcess for BatchArrivals {
    fn next(&mut self, k: usize, _prev: f64, _rng: &mut StdRng) -> f64 {
        assert!(self.per_batch > 0);
        (k / self.per_batch) as f64 * self.gap
    }
}

/// Everything at time zero.
#[derive(Debug, Clone, Copy)]
pub struct AllAtOnceArrivals;

impl ArrivalProcess for AllAtOnceArrivals {
    fn next(&mut self, _k: usize, _prev: f64, _rng: &mut StdRng) -> f64 {
        0.0
    }
}

/// Replays a recorded sequence of release times (trace replay).
///
/// Requesting more jobs than the trace holds cycles through it again,
/// shifting every repetition by the trace's span plus its mean
/// inter-arrival gap so releases stay non-decreasing.
#[derive(Debug, Clone)]
pub struct ReplayArrivals {
    times: Vec<f64>,
    period: f64,
}

impl ReplayArrivals {
    /// Builds a replay process from recorded release times (sorted
    /// internally; must be non-empty and non-negative).
    pub fn new(mut times: Vec<f64>) -> Self {
        assert!(!times.is_empty(), "replay trace must be non-empty");
        times.sort_by(|a, b| a.total_cmp(b));
        assert!(times[0] >= 0.0, "replay trace has a negative release");
        let last = *times.last().unwrap();
        let mean_gap = (last - times[0]) / times.len() as f64;
        ReplayArrivals {
            times,
            period: last + mean_gap.max(f64::MIN_POSITIVE),
        }
    }
}

impl ArrivalProcess for ReplayArrivals {
    fn next(&mut self, k: usize, _prev: f64, _rng: &mut StdRng) -> f64 {
        let cycle = (k / self.times.len()) as f64;
        self.times[k % self.times.len()] + cycle * self.period
    }
}

impl ArrivalSpec {
    /// Instantiates the process this spec denotes.
    pub fn process(self) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalSpec::Poisson { rate } => Box::new(PoissonArrivals { rate }),
            ArrivalSpec::Bursty { burst, within, gap } => {
                Box::new(BurstyArrivals { burst, within, gap })
            }
            ArrivalSpec::Mmpp {
                on_rate,
                burst_mean,
                off_mean,
            } => Box::new(MmppArrivals::new(on_rate, burst_mean, off_mean)),
            ArrivalSpec::Batch { per_batch, gap } => Box::new(BatchArrivals { per_batch, gap }),
            ArrivalSpec::AllAtOnce => Box::new(AllAtOnceArrivals),
        }
    }
}

// ---------------------------------------------------------------------
// Size models.
// ---------------------------------------------------------------------

/// Uniform sizes on `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformSize {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl SizeModel for UniformSize {
    fn draw(&mut self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Exponential sizes with a given mean.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialSize {
    /// Mean size.
    pub mean: f64,
}

impl SizeModel for ExponentialSize {
    fn draw(&mut self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }
}

/// Bounded-Pareto sizes (heavy tail).
#[derive(Debug, Clone, Copy)]
pub struct BoundedParetoSize {
    /// Tail exponent.
    pub shape: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl SizeModel for BoundedParetoSize {
    fn draw(&mut self, rng: &mut StdRng) -> f64 {
        // Inverse CDF of the bounded Pareto.
        let u: f64 = rng.gen_range(0.0..1.0);
        let la = self.lo.powf(self.shape);
        let ha = self.hi.powf(self.shape);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.shape)
    }
}

/// Two-point size mixture.
#[derive(Debug, Clone, Copy)]
pub struct BimodalSize {
    /// Short size.
    pub short: f64,
    /// Long size.
    pub long: f64,
    /// Probability of a long job.
    pub p_long: f64,
}

impl SizeModel for BimodalSize {
    fn draw(&mut self, rng: &mut StdRng) -> f64 {
        if rng.gen_bool(self.p_long.clamp(0.0, 1.0)) {
            self.long
        } else {
            self.short
        }
    }
}

impl SizeSpec {
    /// Instantiates the size model this spec denotes.
    pub fn model(self) -> Box<dyn SizeModel> {
        match self {
            SizeSpec::Uniform { lo, hi } => Box::new(UniformSize { lo, hi }),
            SizeSpec::Exponential { mean } => Box::new(ExponentialSize { mean }),
            SizeSpec::BoundedPareto { shape, lo, hi } => {
                Box::new(BoundedParetoSize { shape, lo, hi })
            }
            SizeSpec::Bimodal {
                short,
                long,
                p_long,
            } => Box::new(BimodalSize {
                short,
                long,
                p_long,
            }),
        }
    }

    /// Expected base size — used by the named scenarios to scale
    /// arrival rates to a fixed offered load.
    pub fn mean(self) -> f64 {
        match self {
            SizeSpec::Uniform { lo, hi } => (lo + hi) / 2.0,
            SizeSpec::Exponential { mean } => mean,
            SizeSpec::BoundedPareto { shape, lo, hi } => {
                // E[X] of the bounded Pareto; the α = 1 special case
                // (logarithmic) is handled separately.
                if (shape - 1.0).abs() < 1e-12 {
                    (hi / lo).ln() * lo * hi / (hi - lo)
                } else {
                    let norm = shape * lo.powf(shape) / (1.0 - (lo / hi).powf(shape));
                    norm * (lo.powf(1.0 - shape) - hi.powf(1.0 - shape)) / (shape - 1.0)
                }
            }
            SizeSpec::Bimodal {
                short,
                long,
                p_long,
            } => {
                let p = p_long.clamp(0.0, 1.0);
                short * (1.0 - p) + long * p
            }
        }
    }
}

// ---------------------------------------------------------------------
// Machine models.
// ---------------------------------------------------------------------

/// `p_ij = base` everywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdenticalMachines {
    m: usize,
}

impl MachineModel for IdenticalMachines {
    fn init(&mut self, machines: usize, _rng: &mut StdRng) {
        self.m = machines;
    }
    fn row(&mut self, base: f64, _rng: &mut StdRng) -> Vec<f64> {
        vec![base; self.m]
    }
}

/// Per-machine speed factors drawn once per instance.
#[derive(Debug, Clone)]
pub struct RelatedSpeedMachines {
    /// Largest slowdown factor.
    pub max_factor: f64,
    factors: Vec<f64>,
}

impl RelatedSpeedMachines {
    /// A model with factors in `[1, max_factor]` (drawn at `init`).
    pub fn new(max_factor: f64) -> Self {
        RelatedSpeedMachines {
            max_factor,
            factors: Vec::new(),
        }
    }
}

impl MachineModel for RelatedSpeedMachines {
    fn init(&mut self, machines: usize, rng: &mut StdRng) {
        self.factors = (0..machines)
            .map(|_| rng.gen_range(1.0..=self.max_factor))
            .collect();
    }
    fn row(&mut self, base: f64, _rng: &mut StdRng) -> Vec<f64> {
        self.factors.iter().map(|f| base * f).collect()
    }
}

/// iid per-(job, machine) factors.
#[derive(Debug, Clone, Copy)]
pub struct UnrelatedMachines {
    /// Smallest factor.
    pub lo_factor: f64,
    /// Largest factor.
    pub hi_factor: f64,
    m: usize,
}

impl UnrelatedMachines {
    /// A model with factors in `[lo_factor, hi_factor]`.
    pub fn new(lo_factor: f64, hi_factor: f64) -> Self {
        UnrelatedMachines {
            lo_factor,
            hi_factor,
            m: 0,
        }
    }
}

impl MachineModel for UnrelatedMachines {
    fn init(&mut self, machines: usize, _rng: &mut StdRng) {
        self.m = machines;
    }
    fn row(&mut self, base: f64, rng: &mut StdRng) -> Vec<f64> {
        (0..self.m)
            .map(|_| base * rng.gen_range(self.lo_factor..=self.hi_factor))
            .collect()
    }
}

/// Random eligible subsets with a guaranteed non-empty set.
#[derive(Debug, Clone, Copy)]
pub struct RestrictedMachines {
    /// Expected number of eligible machines.
    pub avg_eligible: f64,
    m: usize,
}

impl RestrictedMachines {
    /// A model averaging `avg_eligible` eligible machines per job.
    pub fn new(avg_eligible: f64) -> Self {
        RestrictedMachines { avg_eligible, m: 0 }
    }
}

impl MachineModel for RestrictedMachines {
    fn init(&mut self, machines: usize, _rng: &mut StdRng) {
        self.m = machines;
    }
    fn row(&mut self, base: f64, rng: &mut StdRng) -> Vec<f64> {
        let p = (self.avg_eligible / self.m as f64).clamp(0.0, 1.0);
        let mut row: Vec<f64> = (0..self.m)
            .map(|_| if rng.gen_bool(p) { base } else { f64::INFINITY })
            .collect();
        if row.iter().all(|x| !x.is_finite()) {
            let lucky = rng.gen_range(0..self.m);
            row[lucky] = base;
        }
        row
    }
}

/// Rack-style affinity sets (see [`MachineSpec::Affinity`]).
#[derive(Debug, Clone, Copy)]
pub struct AffinityMachines {
    /// Number of racks.
    pub groups: usize,
    /// Probability of an everywhere-ineligible job.
    pub drop_prob: f64,
    m: usize,
}

impl AffinityMachines {
    /// A model with `groups` racks and a `drop_prob` fraction of
    /// everywhere-ineligible jobs.
    pub fn new(groups: usize, drop_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "drop_prob must be a probability"
        );
        AffinityMachines {
            groups,
            drop_prob,
            m: 0,
        }
    }
}

impl MachineModel for AffinityMachines {
    fn init(&mut self, machines: usize, _rng: &mut StdRng) {
        self.m = machines;
        self.groups = self.groups.clamp(1, machines.max(1));
    }
    fn row(&mut self, base: f64, rng: &mut StdRng) -> Vec<f64> {
        if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
            // Empty rack: representable, rejected at arrival with
            // RejectReason::Ineligible by every scheduler.
            return vec![f64::INFINITY; self.m];
        }
        let g = rng.gen_range(0..self.groups);
        (0..self.m)
            .map(|i| {
                if i % self.groups == g {
                    base
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }
}

impl MachineSpec {
    /// Instantiates the machine model this spec denotes.
    pub fn model(self) -> Box<dyn MachineModel> {
        match self {
            MachineSpec::Identical => Box::new(IdenticalMachines::default()),
            MachineSpec::RelatedSpeeds { max_factor } => {
                Box::new(RelatedSpeedMachines::new(max_factor))
            }
            MachineSpec::Unrelated {
                lo_factor,
                hi_factor,
            } => Box::new(UnrelatedMachines::new(lo_factor, hi_factor)),
            MachineSpec::Restricted { avg_eligible } => {
                Box::new(RestrictedMachines::new(avg_eligible))
            }
            MachineSpec::Affinity { groups, drop_prob } => {
                Box::new(AffinityMachines::new(groups, drop_prob))
            }
        }
    }
}

// ---------------------------------------------------------------------
// The generation pipeline.
// ---------------------------------------------------------------------

/// Generates a flow-time / flow+energy instance from arbitrary trait
/// implementations — the open composition entry point. Draw order (one
/// seeded stream): machine-model `init`, then per job arrival → base
/// size → row → weight.
#[allow(clippy::too_many_arguments)]
pub fn generate_with(
    n: usize,
    machines: usize,
    seed: u64,
    kind: InstanceKind,
    arrivals: &mut dyn ArrivalProcess,
    sizes: &mut dyn SizeModel,
    machine_model: &mut dyn MachineModel,
    weights: WeightSpec,
) -> Instance {
    assert_ne!(
        kind,
        InstanceKind::Energy,
        "use generate_energy_with for deadlines"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    machine_model.init(machines, &mut rng);
    let mut b = InstanceBuilder::new(machines, kind);
    let mut t = 0.0;
    for k in 0..n {
        t = arrivals.next(k, t, &mut rng);
        let base = sizes.draw(&mut rng);
        let row = machine_model.row(base, &mut rng);
        let w = weights.draw(&mut rng);
        b = b.full_job(t, w, None, row);
    }
    b.build().expect("generated workload is structurally valid")
}

/// Deadline (§4) twin of [`generate_with`]: deadlines at
/// `r + slack · p̂` with `slack ~ U[min_slack, max_slack]`. Rows with no
/// eligible machine get machine 0 forced eligible — a deadline must be
/// finite, so everywhere-ineligible jobs are not representable here.
#[allow(clippy::too_many_arguments)]
pub fn generate_energy_with(
    n: usize,
    machines: usize,
    seed: u64,
    arrivals: &mut dyn ArrivalProcess,
    sizes: &mut dyn SizeModel,
    machine_model: &mut dyn MachineModel,
    min_slack: f64,
    max_slack: f64,
) -> Instance {
    assert!(min_slack > 1.0 && max_slack >= min_slack);
    let mut rng = StdRng::seed_from_u64(seed);
    machine_model.init(machines, &mut rng);
    let mut b = InstanceBuilder::new(machines, InstanceKind::Energy);
    let mut t = 0.0;
    for k in 0..n {
        t = arrivals.next(k, t, &mut rng);
        let base = sizes.draw(&mut rng);
        let mut row = machine_model.row(base, &mut rng);
        let mut p_min = row
            .iter()
            .copied()
            .filter(|p| p.is_finite())
            .fold(f64::INFINITY, f64::min);
        if !p_min.is_finite() {
            row[0] = base;
            p_min = base;
        }
        let slack = rng.gen_range(min_slack..=max_slack);
        b = b.deadline_job(t, t + slack * p_min, row);
    }
    b.build().expect("generated workload is structurally valid")
}

// ---------------------------------------------------------------------
// Churn: elastic-pool capacity plans.
// ---------------------------------------------------------------------

/// Seed-stream separator for churn: capacity plans draw from
/// `seed ^ CHURN_STREAM`, **never** from the instance RNG, so adding
/// churn to a scenario leaves the generated instance byte-identical.
const CHURN_STREAM: u64 = 0x9e37_79b9_7f4a_7c15;

/// Capacity churn for the elastic machine pool: machines drain, crash,
/// and rejoin at a Poisson rate over the run's horizon (spec form of
/// the `churn:<rate>` scenario-name segment; see [`Scenario::named`]).
///
/// Semantics of the generated [`CapacityPlan`]:
///
/// * event instants are a Poisson process at `rate` (expected capacity
///   events per unit time across the whole pool);
/// * each event picks a machine uniformly from `1..m` — machine 0 is
///   **spared** so the pool always retains capacity to make progress
///   and the no-lost-job invariant is non-vacuous;
/// * an online machine leaves by drain or crash (50/50), an offline
///   machine rejoins — the plan never contains no-op events, and every
///   machine starts online ([`CapacityPlan::starts_online`] is true
///   for all of `0..m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Expected capacity events per unit time across the pool.
    pub rate: f64,
}

impl ChurnSpec {
    /// Generates the deterministic capacity plan for an `machines`-wide
    /// pool over `[0, horizon)`. Same `(machines, horizon, seed)` ⇒
    /// identical plan; single-machine pools get an empty plan (there is
    /// nothing to churn once machine 0 is spared).
    pub fn plan(&self, machines: usize, horizon: f64, seed: u64) -> CapacityPlan {
        assert!(
            self.rate.is_finite() && self.rate > 0.0,
            "churn rate must be finite and positive, got {}",
            self.rate
        );
        let usable_horizon = horizon.is_finite() && horizon > 0.0;
        if machines < 2 || !usable_horizon {
            return CapacityPlan::empty();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ CHURN_STREAM);
        let mut online = vec![true; machines];
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            t += exp_draw(&mut rng, 1.0 / self.rate);
            if t >= horizon {
                break;
            }
            let i = rng.gen_range(1..machines);
            let change = if online[i] {
                if rng.gen_bool(0.5) {
                    CapacityChange::Crash
                } else {
                    CapacityChange::Drain
                }
            } else {
                CapacityChange::Join
            };
            online[i] = !online[i];
            events.push(CapacityEvent {
                time: t,
                machine: MachineId(i as u32),
                change,
            });
        }
        CapacityPlan::new(events).expect("churn events have finite non-negative times")
    }
}

/// Parses the optional fourth scenario-name segment, `churn:<rate>`.
fn parse_churn_token(tok: &str) -> Result<ChurnSpec, String> {
    let rate = tok
        .strip_prefix("churn:")
        .ok_or_else(|| format!("unknown churn token `{tok}` (want `churn:<rate>`)"))?
        .parse::<f64>()
        .map_err(|e| format!("bad churn rate in `{tok}`: {e}"))?;
    if !rate.is_finite() || rate <= 0.0 {
        return Err(format!(
            "churn rate must be finite and positive, got `{tok}`"
        ));
    }
    Ok(ChurnSpec { rate })
}

// ---------------------------------------------------------------------
// Scenario: a named, Copy bundle of spec choices.
// ---------------------------------------------------------------------

/// Arrival tokens of the scenario-name grammar (see [`Scenario::named`]).
pub const ARRIVAL_TOKENS: &[&str] = &["poisson", "mmpp", "bursty", "batch", "once"];
/// Size tokens of the scenario-name grammar.
pub const SIZE_TOKENS: &[&str] = &["uniform", "pareto", "bimodal", "exp"];
/// Machine tokens of the scenario-name grammar.
pub const MACHINE_TOKENS: &[&str] = &[
    "identical",
    "related",
    "unrelated",
    "restricted",
    "affinity",
];

/// A complete flow-time / flow+energy workload description: the spec
/// cross product plus the shape parameters `(n, machines, seed)`.
///
/// This is the type formerly named `FlowWorkload` (that name survives
/// as an alias); the fields are the spec enums, so experiments override
/// individual axes with struct-field assignment as before.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub machines: usize,
    /// RNG seed (same seed ⇒ identical instance).
    pub seed: u64,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Size distribution.
    pub sizes: SizeSpec,
    /// Unrelated-machine structure.
    pub machine_model: MachineSpec,
    /// Weight distribution.
    pub weights: WeightSpec,
    /// Optional capacity churn (elastic machine pool); `None` is the
    /// paper's static-pool model. Churn never perturbs the instance
    /// RNG stream: with or without it, `generate` is byte-identical.
    pub churn: Option<ChurnSpec>,
}

impl Scenario {
    /// A sensible default: Poisson arrivals at 80% of aggregate service
    /// capacity, bounded-Pareto sizes, mildly unrelated machines.
    pub fn standard(n: usize, machines: usize, seed: u64) -> Self {
        // Mean bounded-Pareto(1.5, 1, 100) size ≈ 2.96; rate chosen so
        // the system is busy but stable.
        let rate = 0.8 * machines as f64 / 3.0;
        Scenario {
            n,
            machines,
            seed,
            arrivals: ArrivalSpec::Poisson { rate },
            sizes: SizeSpec::BoundedPareto {
                shape: 1.5,
                lo: 1.0,
                hi: 100.0,
            },
            machine_model: MachineSpec::Unrelated {
                lo_factor: 1.0,
                hi_factor: 4.0,
            },
            weights: WeightSpec::Unit,
            churn: None,
        }
    }

    /// Resolves a scenario name of the form
    /// `<arrivals>-<sizes>-<machines>[-churn:<rate>]` (tokens:
    /// [`ARRIVAL_TOKENS`] × [`SIZE_TOKENS`] × [`MACHINE_TOKENS`], plus
    /// an optional capacity-churn segment) into a concrete scenario
    /// with canonical parameters scaled to `(n, machines)` so the
    /// offered load sits at ~80% of aggregate capacity regardless of
    /// the size distribution. See the crate README for the full
    /// grammar.
    pub fn named(name: &str, n: usize, machines: usize, seed: u64) -> Result<Self, String> {
        let parts: Vec<&str> = name.split('-').collect();
        let ([a, s, m], churn) = match parts[..] {
            [a, s, m] => ([a, s, m], None),
            [a, s, m, c] => ([a, s, m], Some(parse_churn_token(c)?)),
            _ => {
                return Err(format!(
                    "scenario `{name}` must be <arrivals>-<sizes>-<machines>[-churn:<rate>] \
                     (e.g. `mmpp-pareto-affinity` or `poisson-exp-related-churn:0.2`)"
                ))
            }
        };
        let sizes = match s {
            "uniform" => SizeSpec::Uniform { lo: 1.0, hi: 8.0 },
            "pareto" => SizeSpec::BoundedPareto {
                shape: 1.5,
                lo: 1.0,
                hi: 100.0,
            },
            "bimodal" => SizeSpec::Bimodal {
                short: 1.0,
                long: 64.0,
                p_long: 0.1,
            },
            "exp" => SizeSpec::Exponential { mean: 4.0 },
            other => Err(format!(
                "unknown size token `{other}` (want one of {SIZE_TOKENS:?})"
            ))?,
        };
        let rate = 0.8 * machines as f64 / sizes.mean();
        let arrivals = match a {
            "poisson" => ArrivalSpec::Poisson { rate },
            "mmpp" => ArrivalSpec::Mmpp {
                on_rate: 4.0 * rate,
                burst_mean: 32.0,
                off_mean: 16.0 / rate,
            },
            "bursty" => ArrivalSpec::Bursty {
                burst: 32,
                within: 0.01,
                gap: 16.0 / rate,
            },
            "batch" => ArrivalSpec::Batch {
                per_batch: (n / 16).max(4),
                gap: (n / 16).max(4) as f64 / rate,
            },
            "once" => ArrivalSpec::AllAtOnce,
            other => Err(format!(
                "unknown arrival token `{other}` (want one of {ARRIVAL_TOKENS:?})"
            ))?,
        };
        let machine_model = match m {
            "identical" => MachineSpec::Identical,
            "related" => MachineSpec::RelatedSpeeds { max_factor: 4.0 },
            "unrelated" => MachineSpec::Unrelated {
                lo_factor: 1.0,
                hi_factor: 4.0,
            },
            "restricted" => MachineSpec::Restricted { avg_eligible: 3.0 },
            "affinity" => MachineSpec::Affinity {
                groups: 4,
                drop_prob: 0.02,
            },
            other => Err(format!(
                "unknown machine token `{other}` (want one of {MACHINE_TOKENS:?})"
            ))?,
        };
        Ok(Scenario {
            n,
            machines,
            seed,
            arrivals,
            sizes,
            machine_model,
            weights: WeightSpec::Unit,
            churn,
        })
    }

    /// Every name the grammar admits (the full
    /// `|ARRIVAL| × |SIZE| × |MACHINE|` cross product).
    pub fn all_names() -> Vec<String> {
        let mut out = Vec::new();
        for a in ARRIVAL_TOKENS {
            for s in SIZE_TOKENS {
                for m in MACHINE_TOKENS {
                    out.push(format!("{a}-{s}-{m}"));
                }
            }
        }
        out
    }

    /// Generates the instance with the given kind (flow-time or
    /// flow+energy).
    pub fn generate(&self, kind: InstanceKind) -> Instance {
        generate_with(
            self.n,
            self.machines,
            self.seed,
            kind,
            &mut *self.arrivals.process(),
            &mut *self.sizes.model(),
            &mut *self.machine_model.model(),
            self.weights,
        )
    }

    /// The capacity plan for a generated instance: empty for the
    /// static-pool model, otherwise the [`ChurnSpec`] plan over a
    /// horizon covering the arrival span plus the ideal drain-out time
    /// (`Σ p̂_j / m`), so churn also hits the post-arrival phase of
    /// `once`/`batch` scenarios. Deterministic in `(scenario, inst)`,
    /// and drawn from a seed stream separate from the instance's.
    pub fn capacity_plan(&self, inst: &Instance) -> CapacityPlan {
        let Some(churn) = self.churn else {
            return CapacityPlan::empty();
        };
        let last = inst.jobs().last().map_or(0.0, |j| j.release);
        let work: f64 = inst
            .jobs()
            .iter()
            .map(|j| j.min_size())
            .filter(|p| p.is_finite())
            .sum();
        let horizon = last + work / inst.machines().max(1) as f64;
        churn.plan(inst.machines(), horizon, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmpp_arrivals_cluster() {
        let sc = Scenario {
            arrivals: ArrivalSpec::Mmpp {
                on_rate: 50.0,
                burst_mean: 16.0,
                off_mean: 40.0,
            },
            machine_model: MachineSpec::Identical,
            ..Scenario::standard(400, 1, 7)
        };
        let inst = sc.generate(InstanceKind::FlowTime);
        let r: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        // Bursty on/off: a meaningful share of gaps tiny (in-burst),
        // a meaningful share large (off periods).
        let gaps: Vec<f64> = r.windows(2).map(|w| w[1] - w[0]).collect();
        let tiny = gaps.iter().filter(|g| **g < 0.2).count();
        let big = gaps.iter().filter(|g| **g > 5.0).count();
        assert!(tiny > gaps.len() / 2, "tiny {tiny}/{}", gaps.len());
        assert!(big > 3, "big {big}");
    }

    #[test]
    fn replay_arrivals_cycle_monotonically() {
        let mut rep = ReplayArrivals::new(vec![0.0, 1.0, 5.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let ts: Vec<f64> = (0..9).map(|k| rep.next(k, 0.0, &mut rng)).collect();
        assert_eq!(&ts[..3], &[0.0, 1.0, 5.0]);
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "{ts:?}");
        }
        // Second cycle mirrors the first, shifted by one period.
        assert!((ts[3] - ts[0] - (ts[4] - ts[1])).abs() < 1e-12);
    }

    #[test]
    fn affinity_respects_racks_and_drops() {
        let sc = Scenario {
            machine_model: MachineSpec::Affinity {
                groups: 4,
                drop_prob: 0.1,
            },
            ..Scenario::standard(400, 8, 23)
        };
        let inst = sc.generate(InstanceKind::FlowTime);
        let mut dropped = 0;
        for j in inst.jobs() {
            if !j.has_eligible() {
                dropped += 1;
                continue;
            }
            // Eligible machines all in one rack (i % 4 constant), and
            // with m = 8, groups = 4 each rack has exactly 2 machines.
            let elig: Vec<usize> = (0..8).filter(|&i| j.sizes[i].is_finite()).collect();
            assert_eq!(elig.len(), 2, "{elig:?}");
            assert_eq!(elig[0] % 4, elig[1] % 4);
        }
        assert!((10..100).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn named_grammar_covers_the_grid() {
        for name in Scenario::all_names() {
            let sc = Scenario::named(&name, 60, 6, 5).unwrap();
            let inst = sc.generate(InstanceKind::FlowTime);
            assert_eq!(inst.len(), 60, "{name}");
            assert_eq!(inst.machines(), 6, "{name}");
        }
        assert_eq!(Scenario::all_names().len(), 100);
    }

    #[test]
    fn named_rejects_bad_names() {
        assert!(Scenario::named("poisson-pareto", 10, 2, 1).is_err());
        assert!(Scenario::named("warp-pareto-identical", 10, 2, 1).is_err());
        assert!(Scenario::named("poisson-cubic-identical", 10, 2, 1).is_err());
        assert!(Scenario::named("poisson-pareto-quantum", 10, 2, 1).is_err());
        assert!(Scenario::named("poisson-pareto-identical-storm:0.2", 10, 2, 1).is_err());
        assert!(Scenario::named("poisson-pareto-identical-churn:x", 10, 2, 1).is_err());
        assert!(Scenario::named("poisson-pareto-identical-churn:-1", 10, 2, 1).is_err());
        assert!(Scenario::named("poisson-pareto-identical-churn:0", 10, 2, 1).is_err());
        assert!(Scenario::named("poisson-pareto-identical-churn:0.2-extra", 10, 2, 1).is_err());
    }

    #[test]
    fn churn_token_parses_and_defaults_off() {
        let plain = Scenario::named("poisson-pareto-identical", 60, 6, 5).unwrap();
        assert_eq!(plain.churn, None);
        let churny = Scenario::named("poisson-pareto-identical-churn:0.25", 60, 6, 5).unwrap();
        assert_eq!(churny.churn, Some(ChurnSpec { rate: 0.25 }));
        // Without churn the plan is the static pool.
        let inst = plain.generate(InstanceKind::FlowTime);
        assert!(plain.capacity_plan(&inst).is_empty());
    }

    #[test]
    fn churn_leaves_instance_bytes_unchanged() {
        for name in ["poisson-pareto-unrelated", "once-bimodal-affinity"] {
            let plain = Scenario::named(name, 80, 6, 11).unwrap();
            let churny = Scenario::named(&format!("{name}-churn:0.5"), 80, 6, 11).unwrap();
            assert_eq!(
                plain.generate(InstanceKind::FlowTime),
                churny.generate(InstanceKind::FlowTime),
                "{name}: churn must not perturb the instance RNG stream"
            );
        }
    }

    #[test]
    fn churn_plan_is_deterministic_and_consistent() {
        let sc = Scenario::named("poisson-exp-related-churn:0.4", 120, 8, 17).unwrap();
        let inst = sc.generate(InstanceKind::FlowTime);
        let plan = sc.capacity_plan(&inst);
        assert_eq!(plan, sc.capacity_plan(&inst), "same inputs, same plan");
        assert!(!plan.is_empty(), "rate 0.4 over this horizon must churn");
        // Machine 0 is spared; events replay without no-ops from the
        // all-online start.
        let mut online = vec![true; inst.machines()];
        for e in plan.events() {
            let i = e.machine.idx();
            assert_ne!(i, 0, "machine 0 must be spared");
            match e.change {
                osr_sim::CapacityChange::Join => assert!(!online[i], "join while online"),
                _ => assert!(online[i], "drain/crash while offline"),
            }
            online[i] = !online[i];
        }
        for i in 0..inst.machines() {
            assert!(plan.starts_online(i), "every machine starts online");
        }
    }

    #[test]
    fn churn_plan_single_machine_is_empty() {
        let spec = ChurnSpec { rate: 5.0 };
        assert!(spec.plan(1, 100.0, 3).is_empty());
        assert!(spec.plan(4, 0.0, 3).is_empty());
    }

    #[test]
    fn custom_trait_impls_compose_through_generate_with() {
        // A hand-rolled arrival process (fixed cadence) crossed with
        // the stock size/machine models — the open extension point.
        struct EveryHalf;
        impl ArrivalProcess for EveryHalf {
            fn next(&mut self, k: usize, _prev: f64, _rng: &mut StdRng) -> f64 {
                k as f64 * 0.5
            }
        }
        let inst = generate_with(
            10,
            2,
            1,
            InstanceKind::FlowTime,
            &mut EveryHalf,
            &mut *SizeSpec::Uniform { lo: 1.0, hi: 2.0 }.model(),
            &mut *MachineSpec::Identical.model(),
            WeightSpec::Unit,
        );
        assert_eq!(inst.jobs()[4].release, 2.0);
    }

    #[test]
    fn pareto_mean_matches_empirical() {
        let spec = SizeSpec::BoundedPareto {
            shape: 1.5,
            lo: 1.0,
            hi: 100.0,
        };
        let mut model = spec.model();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| model.draw(&mut rng)).sum::<f64>() / n as f64;
        let analytic = spec.mean();
        assert!(
            (emp - analytic).abs() / analytic < 0.05,
            "empirical {emp} vs analytic {analytic}"
        );
    }
}
