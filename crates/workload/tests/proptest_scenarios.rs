//! Generator determinism and serialization round-trips over the whole
//! scenario grammar.
//!
//! Two properties the CI determinism diffs and the experiment tables
//! lean on:
//!
//! 1. **seed determinism** — for every `<arrivals>-<sizes>-<machines>`
//!    combination the grammar admits, the same `(name, n, m, seed)`
//!    yields a *byte-identical* instance (checked both structurally and
//!    through the textual serialization the harness artifacts use);
//! 2. **io round-trip** — restricted-assignment and affinity instances
//!    (rows containing `inf`, including everywhere-ineligible jobs)
//!    survive `osr_model::io` serialization exactly, with the cached
//!    `p̂`/eligibility mask reconstructed consistently on parse.

use osr_model::{io, InstanceKind};
use osr_workload::Scenario;
use proptest::prelude::*;

/// A uniformly chosen name from the full scenario grammar.
fn scenario_name() -> impl Strategy<Value = String> {
    (0usize..Scenario::all_names().len()).prop_map(|k| Scenario::all_names().swap_remove(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn identical_seeds_yield_byte_identical_instances(
        name in scenario_name(),
        n in 20usize..=120,
        m in 2usize..=12,
        seed in any::<u64>(),
    ) {
        let a = Scenario::named(&name, n, m, seed).unwrap();
        let b = Scenario::named(&name, n, m, seed).unwrap();
        let ia = a.generate(InstanceKind::FlowTime);
        let ib = b.generate(InstanceKind::FlowTime);
        prop_assert_eq!(&ia, &ib, "{} diverged structurally", name);
        // Byte-identical through the artifact serialization too.
        prop_assert_eq!(
            io::instance_to_string(&ia),
            io::instance_to_string(&ib),
            "{} diverged textually", name
        );
        // And a different seed genuinely changes the instance (the RNG
        // is actually consulted; AllAtOnce+Identical+Bimodal instances
        // can collide by chance, so only the randomized axes assert).
        if name.starts_with("poisson") || name.starts_with("mmpp") {
            let other = Scenario::named(&name, n, m, seed ^ 0x9E37).unwrap();
            prop_assert_ne!(&ia, &other.generate(InstanceKind::FlowTime));
        }
    }

    #[test]
    fn restricted_instances_round_trip_through_io(
        avg in 1.0f64..4.0,
        n in 10usize..=100,
        m in 2usize..=16,
        seed in any::<u64>(),
    ) {
        let mut w = Scenario::standard(n, m, seed);
        w.machine_model = osr_workload::MachineSpec::Restricted { avg_eligible: avg };
        let inst = w.generate(InstanceKind::FlowTime);
        let back = io::instance_from_str(&io::instance_to_string(&inst)).unwrap();
        prop_assert_eq!(&inst, &back);
        // The derived caches must be identical after the round trip
        // (the parser rebuilds them; validate() would reject drift).
        for (a, b) in inst.jobs().iter().zip(back.jobs()) {
            prop_assert_eq!(a.p_hat().to_bits(), b.p_hat().to_bits());
            prop_assert_eq!(a.elig(), b.elig());
        }
    }

    #[test]
    fn affinity_instances_round_trip_including_ineligible_jobs(
        groups in 1usize..=6,
        n in 20usize..=100,
        m in 2usize..=12,
        seed in any::<u64>(),
    ) {
        let mut w = Scenario::standard(n, m, seed);
        w.machine_model = osr_workload::MachineSpec::Affinity {
            groups,
            drop_prob: 0.15,
        };
        let inst = w.generate(InstanceKind::FlowTime);
        let back = io::instance_from_str(&io::instance_to_string(&inst)).unwrap();
        prop_assert_eq!(&inst, &back);
        // Everywhere-ineligible jobs (all-`inf` rows) are representable
        // input and must survive the trip bit for bit.
        for (a, b) in inst.jobs().iter().zip(back.jobs()) {
            prop_assert_eq!(a.has_eligible(), b.has_eligible());
            prop_assert_eq!(a.eligible_count(), b.eligible_count());
        }
    }
}
