//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the API subset the `osr-bench` experiment harness uses:
//! `par_iter()` / `into_par_iter()` on slices, `Vec`, and `Range<usize>`,
//! a `map(...).collect::<Vec<_>>()` pipeline, and
//! [`ThreadPoolBuilder::build_global`] for `--jobs` control.
//!
//! Execution model: each `collect` statically partitions the items into
//! one contiguous chunk per worker and runs the chunks on
//! `std::thread::scope` threads. **Results are always returned in input
//! order**, whatever the worker count — the determinism contract the
//! experiment tables rely on (`--jobs N` output is byte-identical to
//! `--jobs 1`). Static partitioning (no work stealing) is a fine trade
//! for the harness: replicates within one experiment cost roughly the
//! same, so stealing would buy little.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = unset (use available parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Worker count the next parallel call will use.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Error from [`ThreadPoolBuilder::build_global`]; mirrors upstream's
/// "already initialized" failure mode, though this shim never errors.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global worker count, mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (auto) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 means auto.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Unlike upstream this may be
    /// called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Order-preserving parallel map over owned items.
fn par_map_vec<T, O, F>(items: Vec<T>, f: &F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Static partition into contiguous chunks, one per worker, so the
    // concatenated results are in input order.
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    let chunk_results: Vec<Vec<O>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    });
    chunk_results.into_iter().flatten().collect()
}

/// An unindexed parallel iterator holding its items eagerly.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Maps every item through `f` (lazily; runs at `collect`).
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Upstream tuning knob; a no-op under static partitioning.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Runs the pipeline across the global worker count and collects
    /// results **in input order**.
    pub fn collect<O, C>(self) -> C
    where
        O: Send,
        F: Fn(T) -> O + Sync,
        C: FromIterator<O>,
    {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Parallel iterator over the items.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over borrowed items.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type produced.
    type Item: Send;
    /// Parallel iterator over the borrowed items.
    fn par_iter(&'data self) -> IntoParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> IntoParIter<&'data T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> IntoParIter<&'data T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// One-stop imports mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let xs = vec![1u64, 2, 3, 4, 5];
        let sq: Vec<u64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(sq, vec![1, 4, 9, 16, 25]);
        assert_eq!(xs.len(), 5);
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let serial: Vec<usize> = {
            crate::ThreadPoolBuilder::new()
                .num_threads(1)
                .build_global()
                .unwrap();
            (0..257usize).into_par_iter().map(|i| i * 3 + 1).collect()
        };
        let parallel: Vec<usize> = {
            crate::ThreadPoolBuilder::new()
                .num_threads(8)
                .build_global()
                .unwrap();
            (0..257usize).into_par_iter().map(|i| i * 3 + 1).collect()
        };
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
