//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements exactly the API subset the workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of `f64`, `usize`,
//!   `u64`, `i64`, `u32`, `i32`;
//! * [`Rng::gen_bool`].
//!
//! The generator is **not** the upstream ChaCha12 — it is xoshiro256++
//! seeded through SplitMix64, which is deterministic, fast, and
//! statistically more than adequate for workload generation. Streams
//! therefore differ from upstream `rand` for the same seed, which only
//! shifts which concrete instances the fixed experiment seeds denote.
//! Determinism (same seed → same stream, forever) is what the
//! experiment tables rely on, and that this shim guarantees.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0,1]");
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform `f64` in `[0, 1)` from 53 random mantissa bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans the
                // workspace uses (all far below 2^32) — irrelevant here.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_ranges!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = next_f64(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + next_f64(rng) * (hi - lo)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; see crate docs for the stream caveat).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&y));
            let k = rng.gen_range(0usize..7);
            assert!(k < 7);
            let n = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
