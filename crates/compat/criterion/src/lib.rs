//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the API subset the workspace's benches use — benchmark
//! groups, `bench_with_input`/`bench_function`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros —
//! on top of a small but honest measurement loop:
//!
//! 1. warm up, then calibrate an iteration count so one sample takes
//!    roughly `target_sample_time`;
//! 2. collect `sample_size` samples of mean-ns-per-iteration;
//! 3. report `[min median max]`, plus throughput when configured.
//!
//! Environment knobs (used by the `bench_summary` binary in
//! `osr-bench`):
//!
//! * `OSR_BENCH_QUICK=1` — 5 samples of ~5 ms instead of the default
//!   sample budget; seconds per suite instead of minutes.
//! * `OSR_BENCH_JSON=<path>` — append one JSON line per benchmark:
//!   `{"group":…,"bench":…,"median_ns":…,"min_ns":…,"max_ns":…,"samples":…}`.
//!
//! The binary also understands the arguments `cargo bench`/`cargo test`
//! pass (`--bench`, `--test`, a filter substring); `--test` runs every
//! benchmark body once without timing.

#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and run context.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
    filter: Option<String>,
    test_mode: bool,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("OSR_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        Criterion {
            sample_size: if quick { 5 } else { 20 },
            target_sample_time: if quick {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(40)
            },
            filter: None,
            test_mode: false,
            json_path: std::env::var("OSR_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments (filter substring, `--test`).
    /// Called by [`criterion_main!`]; follows `cargo bench` conventions.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                "--test" => self.test_mode = true,
                "--quick" => {
                    self.sample_size = 5;
                    self.target_sample_time = Duration::from_millis(5);
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            c: self,
        }
    }

    fn run_one<F>(&mut self, group: &str, bench: &str, throughput: Option<&Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{group}/{bench}");
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            f(&mut b);
            println!("{full}: ok (test mode)");
            return;
        }

        // Calibrate: grow the per-sample iteration count until one
        // sample takes at least target_sample_time.
        let mut iters: u64 = 1;
        loop {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= self.target_sample_time || iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16.0
            } else {
                let need =
                    self.target_sample_time.as_nanos() as f64 / b.elapsed.as_nanos().max(1) as f64;
                need.clamp(1.2, 16.0)
            };
            iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        let min = samples_ns[0];
        let max = *samples_ns.last().unwrap();
        let median = median_of_sorted(&samples_ns);

        let mut line = format!(
            "{full:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let eps = *n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {eps:.0} elem/s"));
        }
        if let Some(Throughput::Bytes(n)) = throughput {
            let bps = *n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {bps:.0} B/s"));
        }
        println!("{line}");

        if let Some(path) = &self.json_path {
            let json = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{median},\"min_ns\":{min},\"max_ns\":{max},\"samples\":{}}}\n",
                escape(group),
                escape(bench),
                samples_ns.len()
            );
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("OSR_BENCH_JSON {path}: {e}"));
            file.write_all(json.as_bytes()).expect("write bench json");
        }
    }
}

fn median_of_sorted(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let throughput = self.throughput.clone();
        self.c
            .run_one(&self.name, &id.0, throughput.as_ref(), |b| f(b, input));
    }

    /// Benchmarks `f` under the given name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let throughput = self.throughput.clone();
        self.c
            .run_one(&self.name, &name, throughput.as_ref(), |b| f(b));
    }

    /// Ends the group (upstream parity; nothing to finalize here).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-iteration throughput declaration.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark targets, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(3);
        c.target_sample_time = Duration::from_micros(200);
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            ..Default::default()
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("sum", |b| {
            ran = true;
            b.iter(|| 1u64);
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("treap", 1000).0, "treap/1000");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median_of_sorted(&[1.0, 3.0, 5.0]), 3.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
    }
}
