//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the API subset the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::boxed`];
//! * range strategies (`0..10`, `0.0..1.0`, `1..=3`), tuple strategies
//!   (2- to 4-ary), [`Just`], [`arbitrary::any`], `prop_oneof!`, and
//!   [`collection::vec`];
//! * the [`proptest!`] test-harness macro with `#![proptest_config]`,
//!   plus `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the generated inputs in the panic message via the `Debug`
//! formatting of the assertion), and case generation is seeded
//! deterministically from the test name — a failure reproduces exactly
//! on re-run, which is the property CI needs most.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from a test-name hash and case index.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a over a string — seeds each test's RNG from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A source of values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len());
        self.options[k].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_strategies!(usize, u64, u32, i64, i32, u16, i16, u8, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u64, i64, u32, i32, u16, i16, u8, i8, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite full-range doubles; NaN/inf excluded on purpose —
            // the workspace's numeric code treats them as input errors.
            let x = rng.next_f64() * 2.0 - 1.0;
            x * 1e9
        }
    }
}

/// `prop::collection` support.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the options used here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each `proptest!` test generates.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the no-shrink shim's
            // tier-1 wall clock in check while still exercising the
            // differential properties thoroughly.
            Config { cases: 64 }
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The property-test harness macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test items of the form
/// `#[test] fn name(pat in strategy, …) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] test items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::new(base ^ (case as u64).wrapping_mul(0xA24BAED4963EE407));
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        Small(i32),
        Big(i32),
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3i32..17, y in 0.25f64..0.75, n in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0i32..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for x in xs {
                prop_assert!((0..10).contains(&x));
            }
        }

        #[test]
        fn oneof_and_map_compose(t in prop_oneof![
            (0i32..10).prop_map(Tag::Small),
            (100i32..110).prop_map(Tag::Big),
        ]) {
            match t {
                Tag::Small(v) => prop_assert!((0..10).contains(&v)),
                Tag::Big(v) => prop_assert!((100..110).contains(&v)),
            }
        }

        #[test]
        fn tuples_and_any(pair in (1usize..=3, any::<u64>())) {
            prop_assert!((1..=3).contains(&pair.0));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(99);
        let mut b = crate::TestRng::new(99);
        let s = 0i32..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
